//! The gallery store: a directory of immutable segments plus a manifest.
//!
//! ```text
//! gallery/
//!   MANIFEST          which segments are live, which entries are dead
//!   seg-00000000.fpseg
//!   seg-00000001.fpseg
//! ```
//!
//! # Parity contract
//!
//! Opening a store yields an index **byte-identical** to fresh in-memory
//! enrollment of the live entries in live order (segment order, then
//! entry order within a segment, tombstones skipped): same candidate
//! lists, same RUNFP chain. The argument: per-entry stage-1 and stage-2
//! scores are pure functions of `(probe, entry, config)`, segments
//! persist entries in index-native form (bit-exact prepared tables,
//! packed code words, popcounts, buckets), and the open path remaps ids
//! densely in the same order fresh enrollment would assign them — so
//! every array the search kernels read is bitwise equal to the
//! fresh-enrollment one. `study check-store` enforces this end to end.
//!
//! # Fast open
//!
//! A compacted store (one segment, no tombstones) needs no remapping, so
//! [`GalleryStore::open_index`] takes a lazy path: it preads only the
//! header, META, SPANS, ARENA, and BUCKETS sections (CRC-verified), and
//! defers the TABLES section — by far the largest — entirely. Stage 1
//! never touches prepared tables; stage 2 demand-loads each shortlisted
//! entry's table record by offset (from SPANS) with a per-record CRC
//! check. The shared [`decode_table_record`] guarantees a demand-loaded
//! table is bit-identical to the eagerly decoded one, so search results
//! (and the RUNFP chain) are unchanged; `check_segment` validates every
//! per-record CRC up front, so a segment that passes fsck can only fail a
//! lazy load if the file rots *after* open (reported by panic, the only
//! channel available mid-search). Multi-segment or tombstoned stores use
//! the eager whole-file path.

use std::collections::BTreeMap;
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fp_index::{CandidateIndex, CodeArena, IndexConfig, ShardedIndex, TableLoader};
use fp_match::{PairTableMatcher, PreparedPairTable};
use fp_telemetry::{Counter, DurationHistogram, Telemetry};
use serde::Serialize;

use crate::error::StoreError;
use crate::fmt::crc32;
use crate::manifest::{Manifest, SegmentMeta, MANIFEST_NAME};
use crate::segment::{
    decode_arena, decode_buckets_flat, decode_meta, decode_segment, decode_spans,
    decode_table_record, encode_segment, inspect_segment, parse_header, DecodedSegment,
    EntrySource, SegmentInspect, SegmentSource, SECTIONS_START,
};

fn corrupt(what: &'static str, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        what,
        detail: detail.into(),
    }
}

/// Pre-registered instruments for the store (all inert by default).
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    /// `store.segments.written` — segment files written (append + compact).
    segments_written: Counter,
    /// `store.segments.loaded` — segment files decoded on open paths.
    segments_loaded: Counter,
    /// `store.load.bytes` — segment bytes read and decoded.
    load_bytes: Counter,
    /// `store.tombstones` — tombstones appended.
    tombstones: Counter,
    /// `store.load.seconds` — wall time per open (index assembly included).
    load_time: DurationHistogram,
    /// `store.save.seconds` — wall time per segment append.
    save_time: DurationHistogram,
    /// `store.compact.runs` — compactions that actually rewrote segments.
    compactions: Counter,
    /// `store.compact.seconds` — wall time per compaction.
    compact_time: DurationHistogram,
    /// Handle for flight-recorder spans around load/save/compact.
    telemetry: Telemetry,
}

impl StoreMetrics {
    fn new(telemetry: &Telemetry) -> StoreMetrics {
        StoreMetrics {
            segments_written: telemetry.counter("store.segments.written"),
            segments_loaded: telemetry.counter("store.segments.loaded"),
            load_bytes: telemetry.counter("store.load.bytes"),
            tombstones: telemetry.counter("store.tombstones"),
            load_time: telemetry.duration("store.load.seconds"),
            save_time: telemetry.duration("store.save.seconds"),
            compactions: telemetry.counter("store.compact.runs"),
            compact_time: telemetry.duration("store.compact.seconds"),
            telemetry: telemetry.clone(),
        }
    }
}

/// What a [`GalleryStore::compact`] run did.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CompactStats {
    /// Segment files before / after (after is 0 when every entry was
    /// tombstoned, else 1).
    pub segments_before: usize,
    /// Segment files after compaction.
    pub segments_after: usize,
    /// Tombstoned entries physically reclaimed.
    pub entries_dropped: usize,
    /// Total segment bytes before.
    pub bytes_before: u64,
    /// Total segment bytes after.
    pub bytes_after: u64,
}

/// One segment file's health in a [`GalleryInspect`].
#[derive(Debug, Clone, Serialize)]
pub struct SegmentFileInspect {
    /// Segment sequence number.
    pub seq: u32,
    /// File name inside the gallery directory.
    pub file: String,
    /// Entry count the manifest records for this segment.
    pub manifest_entry_count: u32,
    /// Tombstones pointing into this segment.
    pub tombstones: u32,
    /// Structural summary decoded from the file itself.
    pub segment: SegmentInspect,
}

/// Full structural summary of a gallery directory
/// (`study gallery inspect`).
#[derive(Debug, Clone, Serialize)]
pub struct GalleryInspect {
    /// Next segment sequence number the manifest will hand out.
    pub next_seq: u32,
    /// Live (non-tombstoned) entries.
    pub live_entries: u64,
    /// Total tombstones across all segments.
    pub tombstone_count: u64,
    /// Per-segment detail.
    pub segments: Vec<SegmentFileInspect>,
}

impl GalleryInspect {
    /// Whether every CRC in every segment checks out.
    pub fn all_crc_ok(&self) -> bool {
        self.segments
            .iter()
            .all(|s| s.segment.header_crc_ok && s.segment.sections.iter().all(|sec| sec.crc_ok))
    }
}

/// A persistent on-disk gallery: immutable segments + tombstone manifest.
#[derive(Debug)]
pub struct GalleryStore {
    dir: PathBuf,
    manifest: Manifest,
    metrics: StoreMetrics,
}

/// The survivors of every live segment, concatenated in live order with
/// densely remapped ids — exactly the arrays a fresh enrollment of the
/// survivors would have produced.
struct LoadedGallery {
    config: IndexConfig,
    entries: Vec<(PreparedPairTable, u32)>,
    words: Vec<u64>,
    ones: Vec<u32>,
    spans: Vec<(u32, u32)>,
    buckets: Vec<(u64, Vec<u32>)>,
    bytes_read: u64,
    segments_read: u64,
}

impl GalleryStore {
    /// Creates a fresh gallery directory (the directory itself may exist;
    /// a manifest must not).
    pub fn create(dir: impl Into<PathBuf>) -> Result<GalleryStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_NAME).exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a gallery manifest", dir.display()),
            )));
        }
        let manifest = Manifest::default();
        manifest.save(&dir)?;
        Ok(GalleryStore {
            dir,
            manifest,
            metrics: StoreMetrics::default(),
        })
    }

    /// Opens an existing gallery directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<GalleryStore, StoreError> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        Ok(GalleryStore {
            dir,
            manifest,
            metrics: StoreMetrics::default(),
        })
    }

    /// Opens the gallery at `dir`, creating an empty one if no manifest
    /// exists yet.
    pub fn open_or_create(dir: impl Into<PathBuf>) -> Result<GalleryStore, StoreError> {
        let dir = dir.into();
        if dir.join(MANIFEST_NAME).exists() {
            GalleryStore::open(dir)
        } else {
            GalleryStore::create(dir)
        }
    }

    /// Registers the store's instruments (`store.*`) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.metrics = StoreMetrics::new(telemetry);
        self
    }

    /// The gallery directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live segments, seq ascending.
    pub fn segments(&self) -> Vec<SegmentMeta> {
        self.manifest.segments.clone()
    }

    /// Live (non-tombstoned) entries across all segments.
    pub fn live_len(&self) -> usize {
        self.manifest.live_len()
    }

    /// Tombstones currently outstanding.
    pub fn tombstone_count(&self) -> usize {
        self.manifest.tombstones.len()
    }

    /// Persists the full state of `index` as one new immutable segment
    /// and registers it in the manifest. Returns the segment's sequence
    /// number.
    pub fn append_index(
        &mut self,
        index: &CandidateIndex<PairTableMatcher>,
    ) -> Result<u32, StoreError> {
        let start = Instant::now();
        let seq = self.manifest.next_seq;
        let _span = self.metrics.telemetry.trace_span(
            "store.save",
            &[
                ("seq", seq.to_string()),
                ("entries", index.len().to_string()),
            ],
        );

        let arena = index.arena();
        let words = arena.raw_words();
        let ones = arena.raw_ones();
        let buckets = index.store_buckets();
        let mut entries = Vec::with_capacity(index.len());
        let mut word_off = 0usize;
        let mut ones_off = 0usize;
        for ((table, pair_count), (cylinders, words_per)) in
            index.store_entries().zip(arena.raw_spans())
        {
            let word_len = cylinders as usize * words_per as usize;
            entries.push(EntrySource {
                table,
                pair_count,
                words: &words[word_off..word_off + word_len],
                ones: &ones[ones_off..ones_off + cylinders as usize],
                words_per,
            });
            word_off += word_len;
            ones_off += cylinders as usize;
        }
        let image = encode_segment(&SegmentSource {
            config: *index.config(),
            entries,
            buckets: &buckets,
        });

        self.write_segment_file(seq, &image)?;
        self.manifest.segments.push(SegmentMeta {
            seq,
            entry_count: index.len() as u32,
        });
        self.manifest.next_seq += 1;
        self.manifest.save(&self.dir)?;
        self.metrics.segments_written.incr();
        self.metrics.save_time.record(start.elapsed());
        Ok(seq)
    }

    fn write_segment_file(&self, seq: u32, image: &[u8]) -> Result<(), StoreError> {
        let path = Manifest::segment_path(&self.dir, seq);
        let tmp = path.with_extension("fpseg.tmp");
        fs::write(&tmp, image)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Marks entry `index` of segment `seq` dead. Returns `false` if it
    /// was already tombstoned. The segment file is untouched — the entry
    /// is reclaimed physically by [`compact`](Self::compact).
    pub fn tombstone(&mut self, seq: u32, index: u32) -> Result<bool, StoreError> {
        let Some(seg) = self.manifest.segments.iter().find(|s| s.seq == seq) else {
            return Err(corrupt(
                "manifest",
                format!("tombstone targets unknown segment {seq}"),
            ));
        };
        if index >= seg.entry_count {
            return Err(corrupt(
                "manifest",
                format!(
                    "tombstone index {index} out of range for segment {seq} ({} entries)",
                    seg.entry_count
                ),
            ));
        }
        if !self.manifest.tombstones.insert((seq, index)) {
            return Ok(false);
        }
        self.manifest.save(&self.dir)?;
        self.metrics.tombstones.incr();
        Ok(true)
    }

    fn read_segment(&self, seq: u32) -> Result<(Vec<u8>, DecodedSegment), StoreError> {
        let bytes = fs::read(Manifest::segment_path(&self.dir, seq))?;
        let decoded = decode_segment(&bytes)?;
        Ok((bytes, decoded))
    }

    /// Decodes every live segment and concatenates the survivors in live
    /// order with dense ids.
    fn load(&self) -> Result<LoadedGallery, StoreError> {
        let mut config: Option<IndexConfig> = None;
        let mut entries = Vec::new();
        let mut words = Vec::new();
        let mut ones = Vec::new();
        let mut spans = Vec::new();
        let mut merged: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut bytes_read = 0u64;
        let mut next_id = 0u32;

        for seg in &self.manifest.segments {
            let (bytes, decoded) = self.read_segment(seg.seq)?;
            bytes_read += bytes.len() as u64;
            if decoded.entries.len() != seg.entry_count as usize {
                return Err(corrupt(
                    "manifest",
                    format!(
                        "segment {} packs {} entries, manifest declares {}",
                        seg.seq,
                        decoded.entries.len(),
                        seg.entry_count
                    ),
                ));
            }
            match config {
                None => config = Some(decoded.config),
                Some(ref first) if *first != decoded.config => {
                    return Err(corrupt(
                        "segment",
                        format!("segment {} config differs from the gallery's", seg.seq),
                    ));
                }
                Some(_) => {}
            }

            // Dense remap in live order: tombstoned entries get no id.
            let mut remap = vec![None; decoded.entries.len()];
            for (at, entry) in decoded.entries.iter().enumerate() {
                if self.manifest.tombstones.contains(&(seg.seq, at as u32)) {
                    continue;
                }
                remap[at] = Some(next_id);
                next_id += 1;
                let word_len = entry.cylinders as usize * entry.words_per as usize;
                words.extend_from_slice(&decoded.words[entry.word_off..entry.word_off + word_len]);
                ones.extend_from_slice(
                    &decoded.ones[entry.ones_off..entry.ones_off + entry.cylinders as usize],
                );
                spans.push((entry.cylinders, entry.words_per));
                entries.push((entry.table.clone(), entry.pair_count));
            }
            // Segments are processed in live order and ids assigned in the
            // same order, so appending each bucket's surviving remapped
            // ids preserves the ascending-id invariant fresh enrollment
            // would have produced.
            for (key, ids) in &decoded.buckets {
                let survivors: Vec<u32> = ids.iter().filter_map(|&id| remap[id as usize]).collect();
                if !survivors.is_empty() {
                    merged.entry(*key).or_default().extend(survivors);
                }
            }
        }

        Ok(LoadedGallery {
            config: config.unwrap_or_default(),
            entries,
            words,
            ones,
            spans,
            buckets: merged.into_iter().collect(),
            bytes_read,
            segments_read: self.manifest.segments.len() as u64,
        })
    }

    fn record_load(&self, segments_read: u64, bytes_read: u64, start: Instant) {
        self.metrics.segments_loaded.add(segments_read);
        self.metrics.load_bytes.add(bytes_read);
        self.metrics.load_time.record(start.elapsed());
    }

    /// Assembles the live view as one in-memory [`CandidateIndex`] —
    /// candidate lists and RUNFP chain byte-identical to fresh enrollment
    /// of the survivors in live order. An empty store opens as an empty
    /// index with the default config.
    ///
    /// A compacted store (exactly one segment, no tombstones) opens
    /// through the lazy fast path, deferring the TABLES section to
    /// demand-time per-record loads (see the module docs for the parity
    /// argument and failure policy).
    pub fn open_index(&self) -> Result<CandidateIndex<PairTableMatcher>, StoreError> {
        let start = Instant::now();
        let _span = self.metrics.telemetry.trace_span(
            "store.load",
            &[
                ("segments", self.manifest.segments.len().to_string()),
                ("live", self.live_len().to_string()),
            ],
        );
        if let [seg] = self.manifest.segments.as_slice() {
            if self.manifest.tombstones.is_empty() {
                let (index, bytes_read) = self.open_index_lazy(*seg)?;
                self.record_load(1, bytes_read, start);
                return Ok(index);
            }
        }
        let loaded = self.load()?;
        let (segments_read, bytes_read) = (loaded.segments_read, loaded.bytes_read);
        let arena = CodeArena::from_raw_parts(loaded.words, loaded.ones, &loaded.spans)
            .map_err(|detail| corrupt("segment", detail))?;
        let index = CandidateIndex::from_store_parts(
            PairTableMatcher::default(),
            loaded.config,
            loaded.entries,
            arena,
            loaded.buckets,
        )
        .map_err(|err| corrupt("segment", format!("stored config invalid: {err}")))?;
        self.record_load(segments_read, bytes_read, start);
        Ok(index)
    }

    /// The fast open path for a compacted store: preads and CRC-verifies
    /// only the header + META + SPANS + ARENA + BUCKETS sections (a few
    /// percent of the file at study scale) and installs a
    /// [`TableLoader`] that demand-loads individual TABLES records by
    /// span offset, each verified against its per-record CRC from SPANS.
    /// Returns the index and the bytes actually read eagerly.
    fn open_index_lazy(
        &self,
        seg: SegmentMeta,
    ) -> Result<(CandidateIndex<PairTableMatcher>, u64), StoreError> {
        let path = Manifest::segment_path(&self.dir, seg.seq);
        let file = fs::File::open(&path)?;
        let file_len = file.metadata()?.len();

        let mut head = vec![0u8; SECTIONS_START.min(file_len as usize)];
        file.read_exact_at(&mut head, 0)?;
        let frame = parse_header(&head, file_len, true)?;
        if frame.entry_count != seg.entry_count {
            return Err(corrupt(
                "manifest",
                format!(
                    "segment {} packs {} entries, manifest declares {}",
                    seg.seq, frame.entry_count, seg.entry_count
                ),
            ));
        }
        let entry_count = frame.entry_count as usize;

        // Sections tile the file in order META, SPANS, TABLES, ARENA,
        // BUCKETS (parse_header validated the tiling), so the two eager
        // runs — META+SPANS and ARENA+BUCKETS — are each one contiguous
        // pread.
        let read_run = |lo: usize, hi: usize| -> Result<Vec<Vec<u8>>, StoreError> {
            let base = frame.sections[lo].0;
            let len: u64 = frame.sections[lo..=hi].iter().map(|&(_, len)| len).sum();
            let mut run = vec![0u8; len as usize];
            file.read_exact_at(&mut run, base)?;
            let mut out = Vec::with_capacity(hi - lo + 1);
            let mut cursor = 0usize;
            for k in lo..=hi {
                let len = frame.sections[k].1 as usize;
                let payload = run[cursor..cursor + len].to_vec();
                cursor += len;
                if crc32(&payload) != frame.crcs[k] {
                    return Err(StoreError::CrcMismatch {
                        what: "segment",
                        section: ["meta", "spans", "tables", "arena", "buckets"][k],
                    });
                }
                out.push(payload);
            }
            Ok(out)
        };
        let mut meta_spans = read_run(0, 1)?;
        let spans_payload = meta_spans.pop().unwrap();
        let meta_payload = meta_spans.pop().unwrap();
        let mut arena_buckets = read_run(3, 4)?;
        let buckets_payload = arena_buckets.pop().unwrap();
        let arena_payload = arena_buckets.pop().unwrap();
        let bytes_read = (head.len()
            + meta_payload.len()
            + spans_payload.len()
            + arena_payload.len()
            + buckets_payload.len()) as u64;

        let config = decode_meta(&meta_payload)?;
        let spans = decode_spans(&spans_payload, entry_count)?;
        let (words, ones) = decode_arena(&arena_payload, &spans)?;
        let buckets = decode_buckets_flat(&buckets_payload, entry_count)?;

        let code_spans: Vec<(u32, u32)> =
            spans.iter().map(|s| (s.cylinders, s.words_per)).collect();
        let arena = CodeArena::from_raw_parts(words, ones, &code_spans)
            .map_err(|detail| corrupt("segment", detail))?;
        let pair_counts: Vec<u32> = spans.iter().map(|s| s.pair_count).collect();

        // (record offset, record length, stored CRC) per entry, offsets
        // absolute in the file. The sum telescopes to the TABLES length —
        // enforced so a rotten span table cannot direct preads past the
        // section.
        let tables_end = frame.sections[2].0 + frame.sections[2].1;
        let mut records = Vec::with_capacity(entry_count);
        let mut rec_off = frame.sections[2].0;
        for span in &spans {
            let end = rec_off
                .checked_add(span.table_bytes)
                .filter(|&e| e <= tables_end)
                .ok_or(StoreError::Truncated {
                    what: "segment",
                    context: "tables",
                })?;
            records.push((rec_off, span.table_bytes as usize, span.table_crc));
            rec_off = end;
        }
        if rec_off != tables_end {
            return Err(corrupt(
                "segment",
                format!("tables: {} trailing bytes", tables_end - rec_off),
            ));
        }

        let seq = seg.seq;
        let shared = Arc::new((file, records, path));
        let loader = TableLoader::new(move |id: u32| {
            let (file, records, path) = &*shared;
            let (off, len, crc) = records[id as usize];
            let mut record = vec![0u8; len];
            file.read_exact_at(&mut record, off).unwrap_or_else(|err| {
                panic!(
                    "segment {seq} ({}): entry {id} table read failed after open: {err}",
                    path.display()
                )
            });
            if crc32(&record) != crc {
                panic!(
                    "segment {seq} ({}): entry {id} table CRC mismatch after open \
                     (file changed under a live index)",
                    path.display()
                );
            }
            decode_table_record(&record, id as usize).unwrap_or_else(|err| {
                panic!(
                    "segment {seq} ({}): entry {id} table corrupt after open: {err}",
                    path.display()
                )
            })
        });

        let index = CandidateIndex::from_store_parts_lazy(
            PairTableMatcher::default(),
            config,
            pair_counts,
            loader,
            arena,
            buckets,
        )
        .map_err(|err| corrupt("segment", format!("stored config invalid: {err}")))?;
        Ok((index, bytes_read))
    }

    /// Assembles the live view as a [`ShardedIndex`] over `shard_count`
    /// shards — the survivors are dealt round-robin by dense id, exactly
    /// as sequential [`ShardedIndex::enroll`] calls would have.
    pub fn open_sharded(
        &self,
        shard_count: usize,
    ) -> Result<ShardedIndex<PairTableMatcher>, StoreError> {
        assert!(shard_count >= 1, "need at least one shard");
        let start = Instant::now();
        let _span = self.metrics.telemetry.trace_span(
            "store.load",
            &[
                ("segments", self.manifest.segments.len().to_string()),
                ("live", self.live_len().to_string()),
                ("shards", shard_count.to_string()),
            ],
        );
        let loaded = self.load()?;
        let (segments_read, bytes_read) = (loaded.segments_read, loaded.bytes_read);

        struct ShardParts {
            entries: Vec<(PreparedPairTable, u32)>,
            words: Vec<u64>,
            ones: Vec<u32>,
            spans: Vec<(u32, u32)>,
            buckets: Vec<(u64, Vec<u32>)>,
        }
        let mut parts: Vec<ShardParts> = (0..shard_count)
            .map(|_| ShardParts {
                entries: Vec::new(),
                words: Vec::new(),
                ones: Vec::new(),
                spans: Vec::new(),
                buckets: Vec::new(),
            })
            .collect();

        let mut word_off = 0usize;
        let mut ones_off = 0usize;
        for (global, (entry, span)) in loaded.entries.into_iter().zip(&loaded.spans).enumerate() {
            let shard = &mut parts[global % shard_count];
            let (cylinders, words_per) = *span;
            let word_len = cylinders as usize * words_per as usize;
            shard
                .words
                .extend_from_slice(&loaded.words[word_off..word_off + word_len]);
            shard
                .ones
                .extend_from_slice(&loaded.ones[ones_off..ones_off + cylinders as usize]);
            shard.spans.push(*span);
            shard.entries.push(entry);
            word_off += word_len;
            ones_off += cylinders as usize;
        }
        for (key, ids) in &loaded.buckets {
            for (k, part) in parts.iter_mut().enumerate() {
                let local: Vec<u32> = ids
                    .iter()
                    .filter(|&&id| id as usize % shard_count == k)
                    .map(|&id| id / shard_count as u32)
                    .collect();
                if !local.is_empty() {
                    part.buckets.push((*key, local));
                }
            }
        }

        let shards = parts
            .into_iter()
            .map(|p| {
                let arena = CodeArena::from_raw_parts(p.words, p.ones, &p.spans)
                    .map_err(|detail| corrupt("segment", detail))?;
                CandidateIndex::from_store_parts(
                    PairTableMatcher::default(),
                    loaded.config,
                    p.entries,
                    arena,
                    p.buckets,
                )
                .map_err(|err| corrupt("segment", format!("stored config invalid: {err}")))
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        self.record_load(segments_read, bytes_read, start);
        Ok(ShardedIndex::from_shards(shards))
    }

    /// Merges every live segment's survivors into one fresh segment,
    /// drops the tombstones, and deletes the old segment files. A no-op
    /// when the store already has at most one segment and no tombstones.
    /// The live view (and its search behavior) is unchanged.
    pub fn compact(&mut self) -> Result<CompactStats, StoreError> {
        let start = Instant::now();
        let bytes_before = self.segment_bytes()?;
        let segments_before = self.manifest.segments.len();
        let entries_dropped = self.manifest.tombstones.len();
        if segments_before <= 1 && entries_dropped == 0 {
            return Ok(CompactStats {
                segments_before,
                segments_after: segments_before,
                entries_dropped: 0,
                bytes_before,
                bytes_after: bytes_before,
            });
        }
        let _span = self.metrics.telemetry.trace_span(
            "store.compact",
            &[
                ("segments", segments_before.to_string()),
                ("tombstones", entries_dropped.to_string()),
            ],
        );

        // Decode everything, then re-encode the survivors with densely
        // remapped bucket ids — no template re-preparation anywhere.
        let loaded = self.load()?;
        let old_seqs: Vec<u32> = self.manifest.segments.iter().map(|s| s.seq).collect();
        let survivors = loaded.entries.len();
        let new_seq = self.manifest.next_seq;
        let mut bytes_after = 0u64;

        if survivors > 0 {
            let mut entries = Vec::with_capacity(survivors);
            let mut word_off = 0usize;
            let mut ones_off = 0usize;
            for ((table, pair_count), (cylinders, words_per)) in
                loaded.entries.iter().zip(&loaded.spans)
            {
                let word_len = *cylinders as usize * *words_per as usize;
                entries.push(EntrySource {
                    table,
                    pair_count: *pair_count,
                    words: &loaded.words[word_off..word_off + word_len],
                    ones: &loaded.ones[ones_off..ones_off + *cylinders as usize],
                    words_per: *words_per,
                });
                word_off += word_len;
                ones_off += *cylinders as usize;
            }
            let image = encode_segment(&SegmentSource {
                config: loaded.config,
                entries,
                buckets: &loaded.buckets,
            });
            bytes_after = image.len() as u64;
            self.write_segment_file(new_seq, &image)?;
            self.metrics.segments_written.incr();
        }

        self.manifest = Manifest {
            next_seq: new_seq + 1,
            segments: if survivors > 0 {
                vec![SegmentMeta {
                    seq: new_seq,
                    entry_count: survivors as u32,
                }]
            } else {
                Vec::new()
            },
            tombstones: Default::default(),
        };
        self.manifest.save(&self.dir)?;
        for seq in old_seqs {
            fs::remove_file(Manifest::segment_path(&self.dir, seq))?;
        }

        self.metrics.compactions.incr();
        self.metrics.compact_time.record(start.elapsed());
        Ok(CompactStats {
            segments_before,
            segments_after: self.manifest.segments.len(),
            entries_dropped,
            bytes_before,
            bytes_after,
        })
    }

    fn segment_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for seg in &self.manifest.segments {
            total += fs::metadata(Manifest::segment_path(&self.dir, seg.seq))?.len();
        }
        Ok(total)
    }

    /// Structural summary of the whole gallery: per-segment versions,
    /// entry counts, section sizes and CRC status. Framing damage is a
    /// typed error; mere checksum rot is *reported*, per section.
    pub fn inspect(&self) -> Result<GalleryInspect, StoreError> {
        let mut segments = Vec::with_capacity(self.manifest.segments.len());
        for seg in &self.manifest.segments {
            let bytes = fs::read(Manifest::segment_path(&self.dir, seg.seq))?;
            let tombstones = self
                .manifest
                .tombstones
                .range((seg.seq, 0)..=(seg.seq, u32::MAX))
                .count() as u32;
            segments.push(SegmentFileInspect {
                seq: seg.seq,
                file: Manifest::segment_file(seg.seq),
                manifest_entry_count: seg.entry_count,
                tombstones,
                segment: inspect_segment(&bytes)?,
            });
        }
        Ok(GalleryInspect {
            next_seq: self.manifest.next_seq,
            live_entries: self.live_len() as u64,
            tombstone_count: self.tombstone_count() as u64,
            segments,
        })
    }
}
