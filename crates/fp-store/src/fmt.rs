//! Little-endian encode/decode primitives shared by segments and
//! manifests.
//!
//! Same conventions as `fp-serve`'s wire format: every multi-byte scalar
//! is little-endian, floats travel as raw IEEE-754 bits (`to_bits` /
//! `from_bits`, never a lossy text round-trip), and integrity is CRC32
//! (IEEE, reflected, polynomial `0xEDB8_8320`). The decoder is a
//! bounds-checked cursor: every read that would run past the buffer
//! returns [`StoreError::Truncated`] instead of slicing out of range, and
//! declared element counts are multiplied with overflow checks *before*
//! any allocation so a hostile header cannot request an absurd reserve.

use crate::error::StoreError;

/// Eight lookup tables for slice-by-8: `CRC_TABLES[0]` is the classic
/// byte-at-a-time table; `CRC_TABLES[t][i]` advances byte `i` through
/// `t` extra zero bytes, letting the hot loop fold 8 input bytes per
/// iteration. Identical output to the byte-wise algorithm for every
/// input — only the walk order through the same polynomial differs.
const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32 (IEEE, slice-by-8) of `bytes`. Check value: `crc32(b"123456789")
/// == 0xCBF4_3926`. Segments checksum every byte of a multi-megabyte
/// file on open, so this is a measured hot path (`store/open_10k`).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
///
/// `what` labels the artifact being decoded (`"segment"` /
/// `"manifest"`) so every truncation error names its file kind.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Dec<'a> {
        Dec { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(StoreError::Truncated {
                what: self.what,
                context,
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    pub(crate) fn f64_bits(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Validates that `count` elements of `elem_bytes` each actually fit
    /// in the remaining buffer, with overflow-checked arithmetic, and
    /// returns `count as usize`. Call this *before* allocating — it
    /// converts a hostile 2^60 element count into a typed
    /// [`StoreError::Truncated`] instead of an OOM reserve.
    pub(crate) fn checked_count(
        &self,
        count: u64,
        elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, StoreError> {
        let truncated = StoreError::Truncated {
            what: self.what,
            context,
        };
        let count: usize = count.try_into().map_err(|_| truncated)?;
        let bytes = count.checked_mul(elem_bytes).ok_or(StoreError::Truncated {
            what: self.what,
            context,
        })?;
        if bytes > self.remaining() {
            return Err(StoreError::Truncated {
                what: self.what,
                context,
            });
        }
        Ok(count)
    }

    /// Bulk-decodes `count` little-endian `u64`s.
    pub(crate) fn u64_slice(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<u64>, StoreError> {
        let raw = self.take(
            count.checked_mul(8).ok_or(StoreError::Truncated {
                what: self.what,
                context,
            })?,
            context,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-decodes `count` little-endian `u32`s.
    pub(crate) fn u32_slice(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<u32>, StoreError> {
        let raw = self.take(
            count.checked_mul(4).ok_or(StoreError::Truncated {
                what: self.what,
                context,
            })?,
            context,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Raw bytes (the kinds array).
    pub(crate) fn bytes(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<&'a [u8], StoreError> {
        self.take(count, context)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the cursor consumed the buffer exactly. Trailing garbage in
    /// a checksummed section means the declared structure disagrees with
    /// the section length — corrupt, not ignorable.
    pub(crate) fn finish(self, context: &'static str) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Corrupt {
                what: self.what,
                detail: format!("{context}: {} trailing bytes", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slice_by_8_agrees_with_the_byte_wise_reference() {
        let reference = |bytes: &[u8]| -> u32 {
            !bytes.iter().fold(0xFFFF_FFFFu32, |crc, &b| {
                (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize]
            })
        };
        // Lengths straddling every remainder class of the 8-byte chunking.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn decoder_rejects_overrun_and_overflowing_counts() {
        let bytes = [1u8, 2, 3, 4];
        let mut dec = Dec::new(&bytes, "segment");
        assert_eq!(dec.u32("x").unwrap(), u32::from_le_bytes(bytes));
        assert!(matches!(
            dec.bytes(1, "x"),
            Err(StoreError::Truncated {
                what: "segment",
                ..
            })
        ));

        let dec = Dec::new(&bytes, "segment");
        assert!(dec.checked_count(u64::MAX, 8, "hostile").is_err());
        assert!(dec.checked_count(2, usize::MAX, "hostile").is_err());
        assert!(dec.checked_count(1, 4, "ok").is_ok());
        assert!(dec.checked_count(2, 4, "too many").is_err());
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let bytes = [0u8; 6];
        let mut dec = Dec::new(&bytes, "manifest");
        dec.u32("x").unwrap();
        assert!(matches!(
            dec.finish("tail"),
            Err(StoreError::Corrupt {
                what: "manifest",
                ..
            })
        ));
    }
}
