//! The shard server: one process, one [`CandidateIndex`], one TCP listener.
//!
//! Concurrency model (wire v3/v4): each connection gets a **reader thread**
//! that decodes frames and dispatches them — tagged with their request id
//! — into a bounded, server-wide **worker pool**. Workers execute requests
//! against the `RwLock`-guarded index (stage-1/stage-2 under the read
//! lock, enrollment under the write lock) and write each response back
//! under the request's id, in whatever order the work completes; a client
//! may therefore keep many requests in flight on one connection (see
//! `crate::mux` for the client half).
//!
//! # Admission control
//!
//! Admission is decided by a queue-depth counter against a configured
//! watermark: a request arriving while `watermark` jobs are already
//! queued (not yet picked up by a worker) is shed immediately with a
//! typed [`code::OVERLOADED`] error frame instead of letting the queue
//! (and every caller's latency) grow without bound.
//! Nothing is ever dropped silently — every offered request is either
//! accepted (and answered by a worker) or shed (and answered with
//! `OVERLOADED` by the reader), and the `serve.offered` /
//! `serve.accepted` / `serve.overloaded` counters account for exactly
//! that: offered = accepted + overloaded. [`Frame::Shutdown`] bypasses the
//! queue entirely — overload must never make a server unstoppable.
//!
//! # Distributed tracing
//!
//! A v4 request may carry a sampled [`TraceContext`]. The worker that
//! dispatches it opens a `server.request` span back-dated to the admission
//! timestamp (recording the coordinator's issuing span id as the
//! `remote_parent` attribute), records a retroactive `server.queue_wait`
//! child covering admission→dispatch, and adopts the request span via
//! [`fp_telemetry::TraceCtx::adopted`] so every span the index opens nests
//! under it. Stage responses to sampled requests echo the
//! queue-wait/work split as [`ServerTiming`]; a [`Frame::Trace`] drain
//! hands the retained spans to the coordinator for merging. Each response
//! is encoded at the version its request arrived in, so v3 peers never see
//! any of this.
//!
//! # Config adoption
//!
//! The first [`Frame::EnrollBatch`] carries the coordinator's
//! [`IndexConfig`]; an **empty** shard adopts it wholesale. Once enrolled,
//! any batch carrying a *different* config is rejected with
//! [`code::CONFIG_MISMATCH`] — stage-1 scores depend on the tuning, and a
//! shard silently scoring under different parameters would break the
//! byte-identical guarantee in the quietest possible way.

use std::collections::HashSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardBackend};
use fp_match::PreparableMatcher;
use fp_telemetry::{Counter, Telemetry, TraceCtx, ValueHistogram, REMOTE_PARENT_ATTR};

use crate::wire::{
    code, read_frame_versioned, write_frame_at, Frame, ServerTiming, TraceContext, WireError,
    MIN_VERSION,
};

/// How long the accept loop and idle connections sleep between stop-flag
/// polls. Bounds shutdown latency.
const POLL: Duration = Duration::from_millis(100);

/// Read deadline once a frame has started arriving. Loopback frames land in
/// microseconds; this only bounds how long a half-written frame from a
/// dying peer can pin a connection thread.
const FRAME_DEADLINE: Duration = Duration::from_secs(10);

/// Default worker-pool size when [`ShardServer::with_pool`] is not called.
pub const DEFAULT_WORKERS: usize = 4;

/// Default admission-queue capacity (the overload watermark).
pub const DEFAULT_QUEUE: usize = 64;

/// Admission-control instruments. The invariant the overload fault test
/// pins down: `offered == accepted + overloaded`, always.
struct Admission {
    offered: Counter,
    accepted: Counter,
    overloaded: Counter,
    /// Queue depth observed at each admission decision (before enqueue).
    queue_depth: ValueHistogram,
    /// Jobs currently queued but not yet picked up by a worker.
    depth: AtomicUsize,
}

impl Admission {
    fn new(telemetry: &Telemetry) -> Admission {
        Admission {
            offered: telemetry.counter("serve.offered"),
            accepted: telemetry.counter("serve.accepted"),
            overloaded: telemetry.counter("serve.overloaded"),
            queue_depth: telemetry.value("serve.queue.depth"),
            depth: AtomicUsize::new(0),
        }
    }
}

struct State<M: PreparableMatcher> {
    matcher: M,
    index: RwLock<CandidateIndex<M>>,
    stop: Arc<AtomicBool>,
    /// Instruments the [`Frame::Stats`] snapshot is taken from; inert
    /// unless [`ShardServer::with_telemetry`] was called.
    telemetry: Telemetry,
    admission: Admission,
    /// Fault-injection hook: XORed into every reported
    /// [`Frame::FingerprintOk`] value. Zero (the default) is a no-op; the
    /// loopback e2e suite sets it non-zero to prove a drifting shard is
    /// caught by the coordinator's mirror comparison.
    skew: Arc<AtomicU64>,
    /// Fault-injection hook: milliseconds every stage-1/re-rank request
    /// sleeps before touching the index. Zero (the default) is a no-op;
    /// the soak suite sets it non-zero to prove correctness holds when a
    /// shard answers slowly and out of order.
    delay_ms: Arc<AtomicU64>,
    /// Live connection-reader threads, as maintained by the accept loop's
    /// reaping pass (the churn test watches this to prove handles don't
    /// accumulate).
    connections: Arc<AtomicUsize>,
}

/// One unit of work: a decoded request, the id to answer under, and the
/// connection plumbing to answer through.
struct Job<M: PreparableMatcher> {
    request_id: u32,
    request: Frame,
    /// Protocol version the request arrived in; the response is encoded at
    /// the same version (per-frame version echo = negotiation).
    version: u16,
    /// Trace context the request carried, if any (v4, sampled sender).
    trace: Option<TraceContext>,
    /// Admission timestamp on the telemetry trace clock (0 when disabled);
    /// the worker back-dates the request span to it and derives the
    /// `server.queue_wait` span from it.
    admitted_ns: u64,
    writer: Arc<Mutex<TcpStream>>,
    /// Ids in flight on the job's connection; the worker clears its id
    /// *before* writing the response (once the client has the response it
    /// may legally reuse the id).
    in_flight: Arc<Mutex<HashSet<u32>>>,
    state: Arc<State<M>>,
}

/// A TCP server exposing one gallery shard over the wire protocol.
///
/// `study serve-shard` wraps this in a binary; tests drive it in-process
/// via [`ShardServer::spawn`].
pub struct ShardServer<M: PreparableMatcher> {
    listener: TcpListener,
    state: Arc<State<M>>,
    workers: usize,
    queue: usize,
}

/// Handle to a server running on a background thread (see
/// [`ShardServer::spawn`]).
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Asks the accept loop and every connection thread to wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops the server and waits for the accept loop to exit.
    pub fn join(self) {
        self.stop();
        let _ = self.thread.join();
    }
}

impl<M> ShardServer<M>
where
    M: PreparableMatcher + Clone + Send + Sync + 'static,
    M::Prepared: Send + Sync,
{
    /// Binds a listener (use port 0 for an OS-assigned port) around an
    /// empty index with the default config; the first enroll batch brings
    /// the coordinator's config.
    pub fn bind(matcher: M, addr: impl ToSocketAddrs) -> std::io::Result<ShardServer<M>> {
        let listener = TcpListener::bind(addr)?;
        Ok(ShardServer {
            listener,
            state: Arc::new(State {
                index: RwLock::new(CandidateIndex::new(matcher.clone())),
                matcher,
                stop: Arc::new(AtomicBool::new(false)),
                telemetry: Telemetry::disabled(),
                admission: Admission::new(&Telemetry::disabled()),
                skew: Arc::new(AtomicU64::new(0)),
                delay_ms: Arc::new(AtomicU64::new(0)),
                connections: Arc::new(AtomicUsize::new(0)),
            }),
            workers: DEFAULT_WORKERS,
            queue: DEFAULT_QUEUE,
        })
    }

    /// Attaches a telemetry handle: the index registers its `index.*`
    /// instruments on it, admission control its `serve.*` instruments, and
    /// [`Frame::Stats`] answers with a snapshot of it. Must be called
    /// before [`run`](Self::run)/[`spawn`](Self::spawn) (while the server
    /// is still a builder).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        let state =
            Arc::get_mut(&mut self.state).expect("with_telemetry must be called before spawn/run");
        state.telemetry = telemetry.clone();
        state.admission = Admission::new(telemetry);
        let mut index = state.index.write().expect("index lock poisoned");
        *index = CandidateIndex::new(state.matcher.clone()).with_telemetry(telemetry);
        drop(index);
        self
    }

    /// Installs a pre-built index in place of the empty one — the
    /// `--gallery-dir` path: `study serve-shard` opens a persisted
    /// gallery via `fp-store` and serves it without a single enroll
    /// round-trip. The index re-registers its instruments on the
    /// already-attached telemetry, so call this *after*
    /// [`with_telemetry`](Self::with_telemetry) (and, like every builder
    /// method, before [`run`](Self::run)/[`spawn`](Self::spawn)).
    pub fn with_index(mut self, index: CandidateIndex<M>) -> Self {
        let state =
            Arc::get_mut(&mut self.state).expect("with_index must be called before spawn/run");
        let telemetry = state.telemetry.clone();
        let mut slot = state.index.write().expect("index lock poisoned");
        *slot = index.with_telemetry(&telemetry);
        drop(slot);
        self
    }

    /// Sizes the worker pool: `workers` threads executing requests,
    /// `queue` slots of admission buffer (the overload watermark — a
    /// request arriving with the queue full is shed with a typed
    /// [`code::OVERLOADED`] frame). Both are clamped to at least 1.
    pub fn with_pool(mut self, workers: usize, queue: usize) -> Self {
        self.workers = workers.max(1);
        self.queue = queue.max(1);
        self
    }

    /// Fault-injection handle for tests: any non-zero word stored here is
    /// XORed into every [`Frame::FingerprintOk`] value this server reports,
    /// simulating a shard whose recorded chain disagrees with what it
    /// actually served (bit rot, version skew, a forged score).
    pub fn skew_fingerprint(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.state.skew)
    }

    /// Fault-injection handle for tests: any non-zero value stored here
    /// makes every stage-1 and re-rank request sleep that many
    /// milliseconds before touching the index — a deterministically slow
    /// shard, for proving multiplexed correctness under skewed completion
    /// order.
    pub fn delay_stage(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.state.delay_ms)
    }

    /// Live connection-thread count, as seen by the accept loop's reaping
    /// pass. A churn of short-lived connections must return this to 0.
    pub fn tracked_connections(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.state.connections)
    }

    /// The bound address (the port to advertise when bound to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a [`Frame::Shutdown`] arrives (or [`ServerHandle::stop`]
    /// flips the flag). Blocking; each connection gets a reader thread and
    /// all connections share the bounded worker pool.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;

        // The worker pool, shared by every connection. The channel itself
        // is unbounded; boundedness comes from the admission check in
        // `serve_connection` (shedding keeps the bookkeeping exact, which
        // a full `sync_channel` could not).
        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job<M>>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<_> = (0..self.workers)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(job_rx))
            })
            .collect();

        let watermark = self.queue;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let job_tx = job_tx.clone();
                    conns.push(std::thread::spawn(move || {
                        serve_connection(stream, state, job_tx, watermark)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
            // Reap finished connection readers so a long-lived server does
            // not accumulate one dead JoinHandle per connection it ever
            // served.
            let mut i = 0;
            while i < conns.len() {
                if conns[i].is_finished() {
                    let _ = conns.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            self.state.connections.store(conns.len(), Ordering::Relaxed);
        }
        for conn in conns {
            let _ = conn.join();
        }
        self.state.connections.store(0, Ordering::Relaxed);
        // Readers are gone; dropping the last sender lets the workers
        // drain whatever was queued and exit.
        drop(job_tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a stop/join
    /// handle. Used by in-process tests; the `serve-shard` binary calls
    /// [`run`](Self::run) directly.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::clone(&self.state.stop);
        let thread = std::thread::spawn(move || {
            let _ = self.run();
        });
        ServerHandle { stop, thread }
    }
}

/// Pops jobs until every sender is gone (server shutdown), executing each
/// and answering under its request id. The `Mutex<Receiver>` is the
/// standard shared-consumer pattern: the lock is held across the blocking
/// `recv`, so idle workers queue on the mutex instead of the channel.
fn worker_loop<M>(job_rx: Arc<Mutex<Receiver<Job<M>>>>)
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    loop {
        let job = match job_rx.lock().expect("job queue lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: server is done
        };
        job.state.admission.depth.fetch_sub(1, Ordering::Relaxed);
        let telemetry = job.state.telemetry.clone();
        let dispatched_ns = telemetry.trace_now_ns();
        let queue_wait_ns = dispatched_ns.saturating_sub(job.admitted_ns);
        // A sampled trace context opens the adoption seam: the request gets
        // a root span back-dated to admission (carrying the coordinator's
        // issuing span id as `remote_parent`, which is what lets the merge
        // stitch the two process-local trees), plus a retroactive
        // `server.queue_wait` child covering admission→dispatch.
        let sampled = telemetry.is_enabled() && job.trace.is_some_and(|t| t.sampled);
        let span = sampled.then(|| {
            let ctx = job.trace.expect("sampled implies a context");
            let mut span = telemetry.detached_span(
                "server.request",
                &[
                    ("trace_id", ctx.trace_id.to_string()),
                    (REMOTE_PARENT_ATTR, ctx.parent_span_id.to_string()),
                    ("kind", job.request.kind().to_string()),
                ],
            );
            span.set_parent(None); // a root of this process's local tree
            span.set_start_ns(job.admitted_ns);
            let mut queue_wait = telemetry.detached_span("server.queue_wait", &[]);
            queue_wait.set_parent(span.id());
            queue_wait.set_start_ns(job.admitted_ns);
            queue_wait.finish();
            span
        });
        // Adopt the request span so the spans the index opens while
        // handling the request nest under it.
        let adopted = span
            .as_ref()
            .and_then(|s| s.id())
            .map(TraceCtx::adopted)
            .unwrap_or_default();
        let ctx_guard = telemetry.in_ctx(&adopted);
        let response = handle_request(job.request, &job.state);
        drop(ctx_guard);
        let work_ns = telemetry.trace_now_ns().saturating_sub(dispatched_ns);
        if let Some(span) = span {
            span.finish();
        }
        // Echo the queue-wait/work split on sampled stage responses; the
        // version-aware encoder drops the section for v3 peers.
        let timing = Some(ServerTiming {
            queue_wait_ns,
            work_ns,
        });
        let response = match response {
            Frame::StageOneOk { scores, .. } if sampled => Frame::StageOneOk { scores, timing },
            Frame::RerankOk { candidates, .. } if sampled => Frame::RerankOk { candidates, timing },
            other => other,
        };
        // Release the id before the response can reach the client: once
        // the client sees the answer it may legally reuse the id.
        job.in_flight
            .lock()
            .expect("in-flight set poisoned")
            .remove(&job.request_id);
        let mut writer = job.writer.lock().expect("connection writer poisoned");
        if write_frame_at(&mut *writer, job.version, job.request_id, &response).is_ok() {
            let _ = writer.flush();
        }
    }
}

/// Reads frames off one client connection until it closes, errors, or the
/// server stops, dispatching each into the worker pool (or shedding it
/// with [`code::OVERLOADED`] when the pool's queue is at the watermark).
/// Peeks with a short read deadline so the stop flag is honoured on idle
/// connections, then reads whole frames under a longer deadline.
fn serve_connection<M>(
    stream: TcpStream,
    state: Arc<State<M>>,
    job_tx: Sender<Job<M>>,
    watermark: usize,
) where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let in_flight: Arc<Mutex<HashSet<u32>>> = Arc::new(Mutex::new(HashSet::new()));
    let answer = |version: u16, id: u32, frame: &Frame| -> bool {
        let mut w = writer.lock().expect("connection writer poisoned");
        let ok = write_frame_at(&mut *w, version, id, frame).is_ok();
        let _ = w.flush();
        ok
    };
    let mut stream = stream;
    let mut peek = [0u8; 1];
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        let _ = stream.set_read_timeout(Some(POLL));
        match stream.peek(&mut peek) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(FRAME_DEADLINE));
        let (request_id, request, version) = match read_frame_versioned(&mut stream) {
            Ok((id, frame, _bytes, version)) => (id, frame, version),
            Err(WireError::Io(_)) | Err(WireError::Truncated { .. }) => return,
            Err(e) => {
                // Decodable-but-invalid bytes: answer with a typed error,
                // at the lowest supported version (the peer's version may
                // never have been read, and error frames carry no
                // version-gated sections). Framing may be out of sync
                // afterwards, so close.
                let _ = answer(
                    MIN_VERSION,
                    0,
                    &Frame::Error {
                        code: code::BAD_REQUEST,
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        // Shutdown is handled inline: it must work even when the pool is
        // saturated, and it ends this connection anyway.
        if matches!(request, Frame::Shutdown) {
            let _ = answer(version, request_id, &Frame::ShutdownOk);
            state.stop.store(true, Ordering::Relaxed);
            return;
        }
        // A request id already in flight on this connection cannot be
        // dispatched — its response would be indistinguishable from the
        // first one's. Typed error, connection stays up.
        if !in_flight
            .lock()
            .expect("in-flight set poisoned")
            .insert(request_id)
        {
            let _ = answer(
                version,
                request_id,
                &Frame::Error {
                    code: code::BAD_REQUEST,
                    detail: format!("request id {request_id} is already in flight"),
                },
            );
            continue;
        }
        state.admission.offered.incr();
        let depth_before = state.admission.depth.fetch_add(1, Ordering::Relaxed);
        state.admission.queue_depth.record(depth_before as u64);
        if depth_before >= watermark {
            // Admission control: shed *now*, loudly, with a typed frame —
            // the caller learns within its deadline instead of queueing
            // into the dark.
            state.admission.depth.fetch_sub(1, Ordering::Relaxed);
            state.admission.overloaded.incr();
            in_flight
                .lock()
                .expect("in-flight set poisoned")
                .remove(&request_id);
            let _ = answer(
                version,
                request_id,
                &Frame::Error {
                    code: code::OVERLOADED,
                    detail: format!("admission queue at watermark ({watermark}); retry later"),
                },
            );
            continue;
        }
        // Counted *before* the send so any later snapshot — including one
        // taken by the worker answering this very request — already sees
        // it: offered == accepted + overloaded holds at every quiescent
        // point.
        state.admission.accepted.incr();
        let job = Job {
            request_id,
            version,
            trace: request_trace(&request),
            admitted_ns: state.telemetry.trace_now_ns(),
            request,
            writer: Arc::clone(&writer),
            in_flight: Arc::clone(&in_flight),
            state: Arc::clone(&state),
        };
        if job_tx.send(job).is_err() {
            return; // server is down
        }
    }
}

fn handle_request<M>(request: Frame, state: &State<M>) -> Frame
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    match request {
        Frame::EnrollBatch {
            config,
            templates,
            trace: _,
        } => enroll(config, templates, state),
        Frame::StageOne { probe, trace: _ } => {
            stage_delay(state);
            let index = state.index.read().expect("index lock poisoned");
            match index.stage_one(&probe) {
                Ok(scores) => Frame::StageOneOk {
                    scores,
                    timing: None,
                },
                Err(e) => Frame::Error {
                    code: code::INTERNAL,
                    detail: e.to_string(),
                },
            }
        }
        Frame::Rerank {
            probe,
            selected,
            trace: _,
        } => {
            stage_delay(state);
            let index = state.index.read().expect("index lock poisoned");
            let len = index.len() as u32;
            if let Some(&bad) = selected.iter().find(|&&id| id >= len) {
                return Frame::Error {
                    code: code::BAD_REQUEST,
                    detail: format!("re-rank id {bad} out of range (shard holds {len})"),
                };
            }
            match index.stage_two(&probe, &selected) {
                Ok(candidates) => Frame::RerankOk {
                    candidates,
                    timing: None,
                },
                Err(e) => Frame::Error {
                    code: code::INTERNAL,
                    detail: e.to_string(),
                },
            }
        }
        Frame::Health => Frame::HealthOk {
            shard_len: state.index.read().expect("index lock poisoned").len() as u32,
        },
        Frame::Fingerprint => {
            let snapshot = state
                .index
                .read()
                .expect("index lock poisoned")
                .part_fingerprint();
            Frame::FingerprintOk {
                value: snapshot.value ^ state.skew.load(Ordering::Relaxed),
                searches: snapshot.searches,
            }
        }
        Frame::Stats => {
            let snapshot = state.telemetry.snapshot();
            Frame::StatsOk {
                counters: snapshot.counters.into_iter().collect(),
                durations: snapshot.durations.into_iter().collect(),
                values: snapshot.values.into_iter().collect(),
            }
        }
        Frame::Trace { since_span_id } => {
            // Read the clock while building the response: the coordinator
            // brackets the RPC with its own clock reads and estimates the
            // offset between the two trace epochs from the midpoint.
            let now_ns = state.telemetry.trace_now_ns();
            let snapshot = state.telemetry.trace_snapshot();
            let spans = snapshot
                .spans
                .into_iter()
                .filter(|s| s.id >= since_span_id)
                .collect();
            Frame::TraceOk {
                now_ns,
                dropped_spans: snapshot.dropped_spans,
                spans,
            }
        }
        Frame::Shutdown => Frame::ShutdownOk,
        // Response frames arriving as requests are a client bug.
        other => Frame::Error {
            code: code::BAD_REQUEST,
            detail: format!("frame '{}' is not a request", other.kind()),
        },
    }
}

/// The trace context a request frame carried, if any.
fn request_trace(request: &Frame) -> Option<TraceContext> {
    match request {
        Frame::EnrollBatch { trace, .. }
        | Frame::StageOne { trace, .. }
        | Frame::Rerank { trace, .. } => *trace,
        _ => None,
    }
}

/// Applies the injected-slowness fault hook (no-op when unset).
fn stage_delay<M: PreparableMatcher>(state: &State<M>) {
    let ms = state.delay_ms.load(Ordering::Relaxed);
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

fn enroll<M>(config: IndexConfig, templates: Vec<Template>, state: &State<M>) -> Frame
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    let mut index = state.index.write().expect("index lock poisoned");
    if index.is_empty() {
        if *index.config() != config {
            // Rebuilding on config adoption resets the part-fingerprint
            // chain too — correct, since the new chain must start from the
            // adopted config's base. Re-attach the telemetry handle the
            // rebuild would otherwise lose. The wire config is untrusted:
            // a structurally invalid one is a typed error frame, never a
            // server panic.
            let rebuilt = match CandidateIndex::try_with_config(state.matcher.clone(), config) {
                Ok(rebuilt) => rebuilt,
                Err(err) => {
                    return Frame::Error {
                        code: code::CONFIG_MISMATCH,
                        detail: format!("coordinator sent invalid config: {err}"),
                    }
                }
            };
            *index = rebuilt.with_telemetry(&state.telemetry);
        }
    } else if *index.config() != config {
        return Frame::Error {
            code: code::CONFIG_MISMATCH,
            detail: format!(
                "shard enrolled under {:?}, coordinator sent {:?}",
                index.config(),
                config
            ),
        };
    }
    index.enroll_all(&templates);
    Frame::EnrollOk {
        enrolled: templates.len() as u32,
        shard_len: index.len() as u32,
    }
}
