//! Study configuration.

use fp_match::ScoreCalibration;
use serde::{Deserialize, Serialize};

/// Number of devices (paper Table 1).
pub const DEVICE_COUNT: usize = 5;

/// The paper's cohort size.
pub const PAPER_SUBJECTS: usize = 494;

/// The paper's impostor sample size per (gallery device, probe device)
/// cell: 120,855 DMI scores over 5 same-device cells = 24,171 per cell (and
/// the DDMI total of 483,420 is exactly 20 of these cells, confirming
/// uniform per-cell sampling).
pub const PAPER_IMPOSTORS_PER_CELL: usize = 24_171;

/// Configuration of a study run. Construct via [`StudyConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Root seed; every artifact of the study is a pure function of it.
    pub seed: u64,
    /// Number of participants.
    pub subjects: usize,
    /// Impostor comparisons sampled per (gallery device, probe device)
    /// cell. Scaled from the paper's 24,171 when the cohort is smaller.
    pub impostors_per_cell: usize,
    /// Calibration map applied to raw matcher scores.
    pub calibration: ScoreCalibration,
    /// Fixed FMR for the Table 5 FNMR matrix (paper: 0.01%).
    pub table5_fmr: f64,
    /// Fixed FMR for the Table 6 quality-restricted FNMR matrix (paper:
    /// 0.1%).
    pub table6_fmr: f64,
    /// Maximum shard count of the `ext-scaling` shard ladder (powers of two
    /// up to this value run over the top gallery rung). 0 disables the
    /// ladder — the default, since the unsharded rungs already cover the
    /// accuracy story.
    pub shards: usize,
    /// Number of `serve-shard` child processes the `ext-scaling` remote
    /// rung spawns over loopback (cross-process sharding via `fp-serve`).
    /// 0 disables the rung — the default; spawning children only makes
    /// sense under the `study` binary (or an explicit
    /// `FP_SERVE_SHARD_EXE`), not arbitrary library callers.
    pub remote_shards: usize,
}

impl StudyConfig {
    /// Starts building a config with the given defaults.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::default()
    }

    /// The paper's design: 494 subjects, 24,171 impostor pairs per cell.
    pub fn paper_scale() -> StudyConfig {
        StudyConfig::builder()
            .subjects(PAPER_SUBJECTS)
            .impostors_per_cell(PAPER_IMPOSTORS_PER_CELL)
            .build()
    }

    /// Expected number of DMG scores (same-device genuine, live-scan only:
    /// the paper counts 494 x 4 = 1,976).
    pub fn expected_dmg(&self) -> usize {
        self.subjects * 4
    }

    /// Expected number of DDMG scores (cross-device genuine: 20 ordered
    /// device pairs; the paper counts 494 x 20 = 9,880).
    pub fn expected_ddmg(&self) -> usize {
        self.subjects * 20
    }

    /// Expected number of DMI scores (same-device impostor, 5 cells).
    pub fn expected_dmi(&self) -> usize {
        self.impostors_per_cell * DEVICE_COUNT
    }

    /// Expected number of DDMI scores (cross-device impostor, 20 cells).
    pub fn expected_ddmi(&self) -> usize {
        self.impostors_per_cell * DEVICE_COUNT * (DEVICE_COUNT - 1)
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig::builder().build()
    }
}

/// Builder for [`StudyConfig`].
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    seed: u64,
    subjects: usize,
    impostors_per_cell: Option<usize>,
    calibration: ScoreCalibration,
    table5_fmr: f64,
    table6_fmr: f64,
    shards: usize,
    remote_shards: usize,
}

impl Default for StudyConfigBuilder {
    fn default() -> Self {
        StudyConfigBuilder {
            seed: 2013,
            subjects: 120,
            impostors_per_cell: None,
            calibration: ScoreCalibration::default(),
            table5_fmr: 1e-4,
            table6_fmr: 1e-3,
            shards: 0,
            remote_shards: 0,
        }
    }
}

impl StudyConfigBuilder {
    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cohort size.
    pub fn subjects(mut self, subjects: usize) -> Self {
        self.subjects = subjects;
        self
    }

    /// Sets the impostor sample per cell explicitly (otherwise scaled from
    /// the paper's density).
    pub fn impostors_per_cell(mut self, n: usize) -> Self {
        self.impostors_per_cell = Some(n);
        self
    }

    /// Sets the score calibration map.
    pub fn calibration(mut self, calibration: ScoreCalibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Sets the maximum shard count of the `ext-scaling` shard ladder.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the number of `serve-shard` child processes of the
    /// `ext-scaling` remote rung.
    pub fn remote_shards(mut self, remote_shards: usize) -> Self {
        self.remote_shards = remote_shards;
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> StudyConfig {
        let impostors_per_cell = self.impostors_per_cell.unwrap_or_else(|| {
            // Scale the paper's per-cell sample with the number of ordered
            // subject pairs, but keep at least a usable floor.
            let pairs = self
                .subjects
                .saturating_mul(self.subjects.saturating_sub(1));
            let paper_pairs = PAPER_SUBJECTS * (PAPER_SUBJECTS - 1);
            ((PAPER_IMPOSTORS_PER_CELL as u128 * pairs as u128 / paper_pairs as u128) as usize)
                .max(200.min(pairs))
        });
        StudyConfig {
            seed: self.seed,
            subjects: self.subjects,
            impostors_per_cell,
            calibration: self.calibration,
            table5_fmr: self.table5_fmr,
            table6_fmr: self.table6_fmr,
            shards: self.shards,
            remote_shards: self.remote_shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_reproduces_table3_counts() {
        let c = StudyConfig::paper_scale();
        assert_eq!(c.expected_dmg(), 1_976);
        assert_eq!(c.expected_ddmg(), 9_880);
        assert_eq!(c.expected_dmi(), 120_855);
        assert_eq!(c.expected_ddmi(), 483_420);
    }

    #[test]
    fn impostor_sampling_scales_with_cohort() {
        let small = StudyConfig::builder().subjects(50).build();
        let large = StudyConfig::builder().subjects(200).build();
        assert!(small.impostors_per_cell < large.impostors_per_cell);
        assert!(small.impostors_per_cell > 0);
    }

    #[test]
    fn builder_overrides_stick() {
        let c = StudyConfig::builder()
            .seed(9)
            .subjects(42)
            .impostors_per_cell(777)
            .shards(8)
            .remote_shards(2)
            .build();
        assert_eq!(c.seed, 9);
        assert_eq!(c.subjects, 42);
        assert_eq!(c.impostors_per_cell, 777);
        assert_eq!(c.shards, 8);
        assert_eq!(c.remote_shards, 2);
    }

    #[test]
    fn default_config_is_runnable() {
        let c = StudyConfig::default();
        assert!(c.subjects > 0);
        assert!(c.impostors_per_cell > 0);
        assert!(c.table5_fmr < c.table6_fmr);
    }
}
