//! Persistent on-disk gallery segments for the 1:N candidate index.
//!
//! Enrolling a large gallery is the expensive step of every study run:
//! each template is prepared into a pair table, its cylinder codes
//! extracted and packed, its geometric features hashed. All of that work
//! is a pure function of the template and the [`fp_index::IndexConfig`] —
//! so `fp-store` does it **once**, persists the results in index-native
//! form, and reopens a gallery by parsing instead of re-enrolling
//! (milliseconds instead of minutes; see the `store/` benches).
//!
//! The design is a miniature LSM tree:
//!
//! - **Segments** ([`segment`]) are immutable, versioned, CRC'd files
//!   packing a batch of entries (pair tables, code arena slices,
//!   popcounts, buckets). Every byte is covered by a checksum; hostile or
//!   rotten files surface as typed [`StoreError`]s, never panics and
//!   never a silently different gallery.
//! - **The manifest** ([`manifest`]) lists the live segments and a
//!   tombstone set. Deletion appends a tombstone; re-enrollment writes a
//!   new segment; neither touches existing files.
//! - **Compaction** ([`GalleryStore::compact`]) merges survivors into one
//!   fresh segment and reclaims tombstoned space — pure byte shuffling,
//!   no re-preparation.
//!
//! The headline invariant, enforced end to end by `study check-store`:
//! search over an opened store (sharded or not, before or after churn
//! and compaction) is **byte-identical** — candidate lists and RUNFP
//! chain — to fresh in-memory enrollment of the live entries in live
//! order.

pub mod error;
mod fmt;
pub mod gallery;
pub mod manifest;
pub mod segment;

pub use error::StoreError;
pub use gallery::{CompactStats, GalleryInspect, GalleryStore, SegmentFileInspect};
pub use manifest::{check_manifest, SegmentMeta};
pub use segment::{
    check_segment, inspect_segment, SectionInspect, SegmentInspect, SEGMENT_VERSION,
};

#[cfg(test)]
mod tests {
    use fp_core::geometry::{Direction, Point};
    use fp_core::minutia::{Minutia, MinutiaKind};
    use fp_core::rng::SeedTree;
    use fp_core::template::Template;
    use fp_index::{CandidateIndex, IndexConfig};
    use fp_match::PairTableMatcher;
    use rand::Rng;

    use crate::GalleryStore;

    /// Deterministic synthetic template, same builder idiom as the
    /// fp-serve wire tests.
    fn synthetic_template(seed: &SeedTree, n: usize) -> Template {
        let mut rng = seed.rng();
        let mut minutiae = Vec::<Minutia>::new();
        while minutiae.len() < n {
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
                continue;
            }
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                if rng.gen::<bool>() {
                    MinutiaKind::RidgeEnding
                } else {
                    MinutiaKind::Bifurcation
                },
                rng.gen::<f64>(),
            ));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .expect("synthetic template")
    }

    fn gallery(seed: &SeedTree, n: usize) -> Vec<Template> {
        (0..n)
            .map(|i| synthetic_template(&seed.child(&[i as u64]), 28))
            .collect()
    }

    fn enroll(config: IndexConfig, templates: &[Template]) -> CandidateIndex<PairTableMatcher> {
        let mut index = CandidateIndex::with_config(PairTableMatcher::default(), config);
        for t in templates {
            index.enroll(t);
        }
        index
    }

    fn assert_same_results(
        fresh: &CandidateIndex<PairTableMatcher>,
        opened: &CandidateIndex<PairTableMatcher>,
        probes: &[Template],
    ) {
        for probe in probes {
            let a = fresh.search(probe);
            let b = opened.search(probe);
            assert_eq!(a.candidates().len(), b.candidates().len());
            for (x, y) in a.candidates().iter().zip(b.candidates()) {
                assert_eq!(x.id, y.id);
                assert_eq!(
                    x.score.value().to_bits(),
                    y.score.value().to_bits(),
                    "score must be bitwise equal"
                );
            }
        }
        assert_eq!(
            fresh.run_fingerprint().hex(),
            opened.run_fingerprint().hex(),
            "RUNFP chains must match"
        );
    }

    #[test]
    fn save_open_churn_compact_stays_byte_identical_to_fresh_enrollment() {
        let seed = SeedTree::new(0xF9_57);
        let config = IndexConfig {
            shortlist: 8,
            ..IndexConfig::default()
        };
        let pool = gallery(&seed.child(&[1]), 30);
        let probes = gallery(&seed.child(&[2]), 6);

        let dir = std::env::temp_dir().join(format!("fp-store-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = GalleryStore::create(&dir).unwrap();

        // Two segments: 18 + 12 entries.
        let seg_a = store.append_index(&enroll(config, &pool[..18])).unwrap();
        store.append_index(&enroll(config, &pool[18..])).unwrap();
        assert_eq!(store.live_len(), 30);

        // Round trip: open == fresh enrollment of all 30.
        let fresh = enroll(config, &pool);
        let opened = GalleryStore::open(&dir).unwrap().open_index().unwrap();
        assert_eq!(opened.len(), 30);
        assert_same_results(&fresh, &opened, &probes);

        // Sharded open, both shard counts.
        for shards in [2usize, 3] {
            let sharded = store.open_sharded(shards).unwrap();
            let fresh = enroll(config, &pool);
            for probe in &probes {
                let a = fresh.search(probe);
                let b = sharded.search(probe);
                assert_eq!(
                    a.candidates()
                        .iter()
                        .map(|c| (c.id, c.score.value().to_bits()))
                        .collect::<Vec<_>>(),
                    b.candidates()
                        .iter()
                        .map(|c| (c.id, c.score.value().to_bits()))
                        .collect::<Vec<_>>()
                );
            }
            assert_eq!(
                fresh.run_fingerprint().hex(),
                sharded.run_fingerprint().hex()
            );
        }

        // Churn: tombstone every 5th entry of segment A, re-enroll two
        // replacements as a third segment.
        for at in (0..18u32).step_by(5) {
            assert!(store.tombstone(seg_a, at).unwrap());
            assert!(
                !store.tombstone(seg_a, at).unwrap(),
                "double tombstone is a no-op"
            );
        }
        let replacements = gallery(&seed.child(&[3]), 2);
        store.append_index(&enroll(config, &replacements)).unwrap();

        // The live view: segment A survivors, all of segment B, then the
        // replacements — in that order.
        let mut live: Vec<Template> = pool[..18]
            .iter()
            .enumerate()
            .filter(|(at, _)| at % 5 != 0)
            .map(|(_, t)| t.clone())
            .collect();
        live.extend_from_slice(&pool[18..]);
        live.extend_from_slice(&replacements);
        let fresh = enroll(config, &live);
        let opened = store.open_index().unwrap();
        assert_eq!(opened.len(), live.len());
        assert_same_results(&fresh, &opened, &probes);

        // Compact: one segment, zero tombstones, same live view.
        let stats = store.compact().unwrap();
        assert_eq!(stats.segments_before, 3);
        assert_eq!(stats.segments_after, 1);
        assert_eq!(stats.entries_dropped, 4);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(store.live_len(), live.len());
        assert_eq!(store.tombstone_count(), 0);
        let fresh = enroll(config, &live);
        let opened = store.open_index().unwrap();
        assert_same_results(&fresh, &opened, &probes);

        // Compacting again is a no-op.
        let stats = store.compact().unwrap();
        assert_eq!(stats.segments_before, 1);
        assert_eq!(stats.segments_after, 1);
        assert_eq!(stats.entries_dropped, 0);

        // Inspection: every checksum good, counts as expected.
        let inspect = store.inspect().unwrap();
        assert!(inspect.all_crc_ok());
        assert_eq!(inspect.live_entries, live.len() as u64);
        assert_eq!(inspect.tombstone_count, 0);
        assert_eq!(inspect.segments.len(), 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_fully_tombstoned_stores_open_cleanly() {
        let dir = std::env::temp_dir().join(format!("fp-store-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = GalleryStore::create(&dir).unwrap();
        assert_eq!(store.open_index().unwrap().len(), 0);

        let seed = SeedTree::new(0xE0_11);
        let config = IndexConfig::default();
        let pool = gallery(&seed.child(&[1]), 3);
        let seq = store.append_index(&enroll(config, &pool)).unwrap();
        for at in 0..3 {
            store.tombstone(seq, at).unwrap();
        }
        assert_eq!(store.live_len(), 0);
        assert_eq!(store.open_index().unwrap().len(), 0);
        let stats = store.compact().unwrap();
        assert_eq!(stats.segments_after, 0);
        assert_eq!(store.open_index().unwrap().len(), 0);

        // create() refuses to clobber an existing gallery.
        assert!(GalleryStore::create(&dir).is_err());
        assert!(GalleryStore::open_or_create(&dir).is_ok());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
