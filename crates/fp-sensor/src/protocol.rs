//! The study's capture protocol.
//!
//! Each participant provided two sets of fingerprints on every live-scan
//! device plus one ink ten-print card (whose rolled and plain impressions
//! give the two D4 samples used by the intra-device analyses). Ink capture
//! happened last so it would not degrade live-scan quality — the order is
//! encoded here for fidelity even though the simulation has no carry-over
//! effect between devices.

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::rng::SeedTree;
use fp_synth::metrics::SynthMetrics;
use fp_synth::population::Subject;
use fp_telemetry::Telemetry;

use crate::acquisition::{Acquisition, Impression};
use crate::device::{Device, DEVICES};
use crate::metrics::CaptureMetrics;

/// Number of capture sessions per device per participant.
pub const SESSIONS_PER_DEVICE: u8 = 2;

/// The fixed capture protocol of the study.
#[derive(Debug, Clone, Default)]
pub struct CaptureProtocol {
    acquisition: Acquisition,
    metrics: CaptureMetrics,
    synth_metrics: SynthMetrics,
}

impl CaptureProtocol {
    /// Creates the protocol engine.
    pub fn new() -> Self {
        CaptureProtocol::default()
    }

    /// Creates a protocol engine that records per-device impression counts,
    /// acquisition loss tallies and master-synthesis work into `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        CaptureProtocol {
            acquisition: Acquisition,
            metrics: CaptureMetrics::new(telemetry),
            synth_metrics: SynthMetrics::new(telemetry),
        }
    }

    /// The device capture order used in the study: all live-scan devices in
    /// index order, ink cards last.
    pub fn device_order() -> [DeviceId; 5] {
        [
            DeviceId(0),
            DeviceId(1),
            DeviceId(2),
            DeviceId(3),
            DeviceId(4), // ink last, to not affect live-scan quality
        ]
    }

    /// Captures one `(device, session)` impression of `finger` for
    /// `subject`. Deterministic in the subject's seed.
    pub fn capture(
        &self,
        subject: &Subject,
        finger: Finger,
        device: DeviceId,
        session: SessionId,
    ) -> Impression {
        let master = subject.master_print_metered(finger, &self.synth_metrics);
        let dev: &Device = Device::by_id(device);
        // Habituation grows with the subject's position in the protocol:
        // later devices and the second session see a more practiced user.
        let order_pos = Self::device_order()
            .iter()
            .position(|d| *d == device)
            .expect("device is in the protocol") as f64;
        let habituation =
            ((order_pos * SESSIONS_PER_DEVICE as f64 + session.0 as f64) / 10.0).min(1.0);
        // Ink cards: the finger is inked and rolled once, and both D4
        // samples of the study are *scans of that one card* — so session 1
        // is a re-digitization of the session-0 impression (scanner noise
        // only), not a fresh capture. Live-scan devices get a fresh
        // presentation and fresh sensor noise every session.
        if dev.is_ink() && session.0 > 0 {
            let base = self.capture(subject, finger, device, SessionId(0));
            let rescan_seed =
                subject
                    .seed()
                    .child(&[0xAC, device.0 as u64, session.0 as u64, finger.index(), 2]);
            let rescan = base.rescanned(session, &rescan_seed);
            self.metrics
                .record_impression(device, rescan.template().len());
            return rescan;
        }
        let setup_seed: SeedTree =
            subject
                .seed()
                .child(&[0xAC, device.0 as u64, session.0 as u64, finger.index(), 0]);
        let noise_seed: SeedTree =
            subject
                .seed()
                .child(&[0xAC, device.0 as u64, session.0 as u64, finger.index(), 1]);
        let impression = self.acquisition.capture_with_seeds_metered(
            &master,
            &subject.skin(),
            dev,
            subject.id(),
            finger,
            session,
            habituation,
            &setup_seed,
            &noise_seed,
            &self.metrics,
        );
        self.metrics
            .record_impression(device, impression.template().len());
        impression
    }

    /// Captures the full protocol for one finger of one subject: both
    /// sessions on every device, in protocol order.
    pub fn capture_all(&self, subject: &Subject, finger: Finger) -> Vec<Impression> {
        let mut out = Vec::with_capacity(DEVICES.len() * SESSIONS_PER_DEVICE as usize);
        for device in Self::device_order() {
            for session in 0..SESSIONS_PER_DEVICE {
                out.push(self.capture(subject, finger, device, SessionId(session)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_synth::population::{Population, PopulationConfig};

    fn subject() -> Subject {
        Population::generate(&PopulationConfig::new(123, 1)).subjects()[0].clone()
    }

    #[test]
    fn protocol_produces_ten_impressions_per_finger() {
        let s = subject();
        let imps = CaptureProtocol::new().capture_all(&s, Finger::RIGHT_INDEX);
        assert_eq!(imps.len(), 10);
        for device in DeviceId::ALL {
            for session in 0..SESSIONS_PER_DEVICE {
                assert!(
                    imps.iter()
                        .any(|i| i.device() == device && i.session() == SessionId(session)),
                    "missing {device} session {session}"
                );
            }
        }
    }

    #[test]
    fn ink_is_captured_last() {
        assert_eq!(
            *CaptureProtocol::device_order().last().unwrap(),
            DeviceId(4)
        );
    }

    #[test]
    fn capture_is_reproducible() {
        let s = subject();
        let p = CaptureProtocol::new();
        let a = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(1), SessionId(0));
        let b = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(1), SessionId(0));
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_differ() {
        let s = subject();
        let p = CaptureProtocol::new();
        let a = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0));
        let b = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(1));
        assert_ne!(a.template(), b.template());
    }

    #[test]
    fn devices_differ() {
        let s = subject();
        let p = CaptureProtocol::new();
        let a = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0));
        let b = p.capture(&s, Finger::RIGHT_INDEX, DeviceId(2), SessionId(0));
        assert_ne!(a.template(), b.template());
    }
}
