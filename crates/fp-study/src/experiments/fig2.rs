//! **Figure 2/3 (same-device panel)** — DMG vs DMI score distributions for
//! the Cross Match Guardian R2 (D0).
//!
//! The paper's landmark observations: no impostor score exceeds 7, a few
//! genuine scores fall below 7, and the genuine mass sits far to the right.
//! (The published Figure 3 caption reports the DMI bin counts for score
//! ranges 0–1, 1–2 and 2–3; we report the same bins.)

use fp_core::ids::DeviceId;
use fp_stats::histogram::Histogram;
use serde_json::json;

use crate::report::Report;
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let device = DeviceId(0);
    let genuine = data.scores.genuine_values(device, device);
    let impostor = data.scores.impostor_cell(device, device);

    // Unit-width bins (the paper's captions quote per-unit bin counts),
    // with the range capped at 60 so extreme top scores land in the
    // overflow bin instead of growing the rendered report without bound.
    let hi = (genuine.iter().cloned().fold(10.0, f64::max).ceil() + 1.0).min(60.0);
    let bins = hi as usize;
    let g_hist = Histogram::from_values(0.0, hi, bins, genuine.iter().copied());
    let i_hist = Histogram::from_values(0.0, hi, bins, impostor.iter().copied());

    let impostor_max = impostor.iter().cloned().fold(0.0, f64::max);
    let genuine_below_7 = genuine.iter().filter(|&&s| s < 7.0).count();

    let mut body = String::from("DMG (genuine, same device D0):\n");
    body.push_str(&g_hist.render_ascii(40));
    body.push_str("\nDMI (impostor, same device D0):\n");
    body.push_str(&i_hist.render_ascii(40));
    body.push_str(&format!(
        "\nDMI counts: 0-1: {}, 1-2: {}, 2-3: {} (paper caption: 18,721 / 5,121 / 296)\n\
         impostor max: {impostor_max:.2} (paper: never above 7)\n\
         genuine below 7: {genuine_below_7} of {}\n",
        i_hist.count(0),
        i_hist.count(1),
        i_hist.count(2),
        genuine.len(),
    ));

    Report::new(
        "fig2",
        "DMG vs DMI score distributions, Cross Match Guardian R2 (paper Figures 2-3)",
        body,
        json!({
            "device": "D0",
            "genuine_histogram": (0..g_hist.bins()).map(|i| g_hist.count(i)).collect::<Vec<_>>(),
            "impostor_histogram": (0..i_hist.bins()).map(|i| i_hist.count(i)).collect::<Vec<_>>(),
            "impostor_max": impostor_max,
            "genuine_below_7": genuine_below_7,
            "genuine_count": genuine.len(),
            "impostor_count": impostor.len(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn impostor_mass_sits_left_of_genuine_mass() {
        let data = testdata::small();
        let r = run(data);
        let imax = r.values["impostor_max"].as_f64().unwrap();
        let genuine = data.scores.genuine_values(DeviceId(0), DeviceId(0));
        let gmean = genuine.iter().sum::<f64>() / genuine.len() as f64;
        assert!(
            gmean > imax,
            "genuine mean {gmean} below impostor max {imax}"
        );
    }

    #[test]
    fn histograms_conserve_counts() {
        let data = testdata::small();
        let r = run(data);
        let g_total: u64 = r.values["genuine_histogram"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .sum();
        // Overflow bin may hold the rest; total binned <= count.
        assert!(g_total <= r.values["genuine_count"].as_u64().unwrap());
    }
}
