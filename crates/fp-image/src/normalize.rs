//! Mean/variance pixel normalization (Hong, Wan & Jain 1998) — the first
//! stage of the classic enhancement chain: bring every image to a common
//! brightness and contrast before orientation estimation, so scanner gain
//! differences (very relevant to cross-device work) don't leak into the
//! features.

use crate::image::GrayImage;

/// Normalizes `img` to the desired mean `m0` and variance `v0`:
///
/// ```text
/// I'(x,y) = m0 ± sqrt(v0 * (I(x,y) - m)^2 / v)
/// ```
///
/// with `+` where the pixel is above the image mean. Constant images map to
/// the flat `m0` image.
pub fn normalize(img: &GrayImage, m0: f32, v0: f32) -> GrayImage {
    let (mean, var) = img.block_stats(0, 0, img.width(), img.height());
    let mut out = img.clone();
    if var <= f32::EPSILON {
        for v in out.data_mut() {
            *v = m0;
        }
        return out;
    }
    for v in out.data_mut() {
        let dev = (v0 * (*v - mean) * (*v - mean) / var).sqrt();
        *v = if *v > mean { m0 + dev } else { m0 - dev };
    }
    out
}

/// Normalizes to the conventional mid-grey target (mean 0.5, variance
/// 0.04 on a `[0, 1]` scale).
pub fn normalize_default(img: &GrayImage) -> GrayImage {
    normalize(img, 0.5, 0.04)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> GrayImage {
        let mut img = GrayImage::filled(32, 32, 0.0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, (x + y) as f32 / 64.0 * 0.3 + 0.6);
            }
        }
        img
    }

    #[test]
    fn output_hits_target_statistics() {
        let out = normalize(&gradient_image(), 0.5, 0.04);
        let (mean, var) = out.block_stats(0, 0, 32, 32);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert!((var - 0.04).abs() < 0.01, "var = {var}");
    }

    #[test]
    fn relative_ordering_is_preserved() {
        let img = gradient_image();
        let out = normalize(&img, 0.5, 0.04);
        // Brighter-than-mean stays brighter-than-mean.
        let (mean_in, _) = img.block_stats(0, 0, 32, 32);
        let (mean_out, _) = out.block_stats(0, 0, 32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let above_in = img.at(x, y) > mean_in;
                let above_out = out.at(x, y) > mean_out;
                if (img.at(x, y) - mean_in).abs() > 1e-3 {
                    assert_eq!(above_in, above_out, "pixel ({x},{y}) flipped sides");
                }
            }
        }
    }

    #[test]
    fn constant_image_becomes_flat_target() {
        let img = GrayImage::filled(8, 8, 0.9).unwrap();
        let out = normalize(&img, 0.5, 0.04);
        assert!(out.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn default_targets_mid_grey() {
        let out = normalize_default(&gradient_image());
        let (mean, _) = out.block_stats(0, 0, 32, 32);
        assert!((mean - 0.5).abs() < 0.02);
    }
}
