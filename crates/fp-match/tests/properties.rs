//! Property-based tests of the matchers: score sanity, approximate rigid
//! invariance, and calibration monotonicity.

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};
use fp_match::{HoughMatcher, PairTableMatcher, ScoreCalibration};
use proptest::prelude::*;

/// A random well-spaced template: minutiae are snapped onto a jittered grid
/// so minimum spacing resembles real prints.
fn template_strategy() -> impl Strategy<Value = Template> {
    (
        prop::collection::vec(
            (0.0..1.0f64, 0.0..1.0f64, -3.2..3.2f64, prop::bool::ANY),
            4..36,
        ),
        0u8..2,
    )
        .prop_map(|(cells, _)| {
            let mut minutiae = Vec::new();
            for (i, (jx, jy, angle, ending)) in cells.iter().enumerate() {
                let gx = (i % 6) as f64 * 2.8 - 8.4;
                let gy = (i / 6) as f64 * 2.8 - 8.4;
                let pos = Point::new(gx + jx * 1.2, gy + jy * 1.2);
                let kind = if *ending {
                    MinutiaKind::RidgeEnding
                } else {
                    MinutiaKind::Bifurcation
                };
                minutiae.push(Minutia::new(
                    pos,
                    Direction::from_radians(*angle),
                    kind,
                    1.0,
                ));
            }
            Template::builder(500.0)
                .capture_window_mm(24.0, 24.0)
                .extend(minutiae)
                .build()
                .expect("valid template")
        })
}

fn motion_strategy() -> impl Strategy<Value = RigidMotion> {
    (-1.0..1.0f64, -5.0..5.0f64, -5.0..5.0f64)
        .prop_map(|(r, x, y)| RigidMotion::new(Direction::from_radians(r), Vector::new(x, y)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scores_are_finite_and_non_negative(a in template_strategy(), b in template_strategy()) {
        for score in [
            PairTableMatcher::default().compare(&a, &b),
            HoughMatcher::default().compare(&a, &b),
        ] {
            prop_assert!(score.value() >= 0.0);
            prop_assert!(score.value().is_finite());
        }
    }

    #[test]
    fn self_match_dominates_cross_match(a in template_strategy(), b in template_strategy()) {
        let m = PairTableMatcher::default();
        let self_score = m.compare(&a, &a).value();
        let cross = m.compare(&a, &b).value();
        // A template always matches itself at least as well as an unrelated
        // one (both templates here are random, but self-match correspondences
        // are exact).
        prop_assert!(self_score + 1e-9 >= cross || self_score > 0.0 || cross == 0.0);
    }

    #[test]
    fn pair_table_is_rigid_invariant(t in template_strategy(), m in motion_strategy()) {
        let matcher = PairTableMatcher::default();
        let moved = t.transformed(&m);
        let self_score = matcher.compare(&t, &t).value();
        let moved_score = matcher.compare(&t, &moved).value();
        // Pair tables are exactly rotation/translation invariant up to the
        // rotation-window binning; allow a modest relative loss.
        prop_assert!(
            moved_score >= self_score * 0.6 - 1.0,
            "self {self_score}, moved {moved_score}"
        );
    }

    #[test]
    fn comparison_is_deterministic(a in template_strategy(), b in template_strategy()) {
        let m = PairTableMatcher::default();
        prop_assert_eq!(m.compare(&a, &b), m.compare(&a, &b));
        let h = HoughMatcher::default();
        prop_assert_eq!(h.compare(&a, &b), h.compare(&a, &b));
    }

    #[test]
    fn prepared_equals_direct(a in template_strategy(), b in template_strategy()) {
        use fp_match::PreparableMatcher;
        let m = PairTableMatcher::default();
        let pa = m.prepare(&a);
        let pb = m.prepare(&b);
        prop_assert_eq!(m.compare(&a, &b), m.compare_prepared(&pa, &pb));
    }

    #[test]
    fn calibration_is_monotone(x in 0.0..60.0f64, y in 0.0..60.0f64) {
        let c = ScoreCalibration::default();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let a = c.apply(MatchScore::new(lo)).value();
        let b = c.apply(MatchScore::new(hi)).value();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn fusion_rules_are_bounded_by_inputs(x in 0.0..50.0f64, y in 0.0..50.0f64) {
        use fp_match::fusion::FusionRule;
        let a = MatchScore::new(x);
        let b = MatchScore::new(y);
        for rule in FusionRule::ALL {
            let fused = rule.combine(a, b).value();
            prop_assert!(fused >= x.min(y) - 1e-12 || rule == FusionRule::Product);
            prop_assert!(fused <= x.max(y) + 1e-12);
        }
    }
}
