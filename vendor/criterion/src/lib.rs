//! Offline vendored stand-in for the `criterion` crate.
//!
//! Keeps the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `Bencher::iter`, `black_box`) but
//! replaces the statistical engine with a simple median-of-samples timer
//! that prints one line per benchmark. No HTML reports, no outlier
//! analysis — but results are *retained*: every measured bench lands in a
//! process-global collector, and `--save PATH` writes them as a versioned
//! `BENCH_*.json` snapshot (`{"version":1,"host":...,"benches":[{"bench",
//! "median_ns","p95_ns","iters"}]}`) that `bench-diff` can compare across
//! commits. Positional CLI arguments filter benches by substring, exactly
//! like real criterion; `--bench` and other harness flags are ignored.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub use std::hint::black_box;

/// One measured benchmark, as retained in the collector and written by
/// `--save`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full bench name (`group/bench`).
    pub bench: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration (noise estimate).
    pub p95_ns: f64,
    /// Iterations per timed sample.
    pub iters: u64,
}

struct Config {
    save: Option<String>,
    filters: Vec<String>,
}

static CONFIG: OnceLock<Config> = OnceLock::new();
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Parses the bench binary's CLI: `--save PATH` requests a snapshot,
/// positional arguments become substring filters, `--bench` and any other
/// flag the harness passes are ignored. Called by `criterion_main!`; must
/// run before the first benchmark.
pub fn init_from_args() {
    let mut save = None;
    let mut filters = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--save" => save = args.next(),
            other if other.starts_with('-') => {}
            other => filters.push(other.to_string()),
        }
    }
    let _ = CONFIG.set(Config { save, filters });
}

fn active_config() -> &'static Config {
    static DEFAULT: Config = Config {
        save: None,
        filters: Vec::new(),
    };
    CONFIG.get().unwrap_or(&DEFAULT)
}

/// Writes the collected records to the `--save` path (if any) and prints a
/// confirmation. Called by `criterion_main!` after all groups ran.
pub fn finalize() {
    let cfg = active_config();
    let Some(path) = &cfg.save else { return };
    let records = RESULTS.lock().expect("bench collector poisoned");
    let host = std::env::var("HOSTNAME")
        .or_else(|_| std::env::var("HOST"))
        .unwrap_or_else(|_| "unknown".to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"host\": {},\n", json_string(&host)));
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": {}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"iters\": {}}}{}\n",
            json_string(&r.bench),
            r.median_ns,
            r.p95_ns,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("saved {} bench records to {path}", records.len()),
        Err(e) => {
            eprintln!("failed to write bench snapshot {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Criterion
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
    /// 95th-percentile nanoseconds per iteration, filled by `iter`.
    p95_ns: f64,
    /// Iterations per timed sample, filled by `iter`.
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the median time per call across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate cost with a single call.
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));

        // Pick iterations per sample targeting ~20ms, capped for slow bodies.
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = samples[samples.len() / 2];
        // Nearest-rank p95: the sample at ceil(0.95 * n) - 1.
        let rank = ((samples.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
        self.p95_ns = samples[rank.min(samples.len() - 1)];
        self.iters = iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let cfg = active_config();
    if !cfg.filters.is_empty() && !cfg.filters.iter().any(|pat| name.contains(pat.as_str())) {
        return;
    }
    let mut bencher = Bencher {
        sample_size,
        result_ns: f64::NAN,
        p95_ns: f64::NAN,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.result_ns.is_nan() {
        println!("{name:<60} (no measurement: Bencher::iter not called)");
    } else {
        println!("{name:<60} {}", format_ns(bencher.result_ns));
        RESULTS
            .lock()
            .expect("bench collector poisoned")
            .push(BenchRecord {
                bench: name.to_string(),
                median_ns: bencher.result_ns,
                p95_ns: bencher.p95_ns,
                iters: bencher.iters,
            });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`: parses `--save`/filters, runs the listed
/// groups, then writes the snapshot if one was requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn measured_benches_land_in_the_collector() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("collector");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        let records = RESULTS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.bench == "collector/noop")
            .expect("record retained");
        assert!(r.median_ns.is_finite() && r.median_ns >= 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.iters >= 1);
    }

    #[test]
    fn json_strings_escape_quotes_and_control_chars() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
