//! Special functions: erf/erfc and normal tail probabilities, including
//! log-space evaluation for extreme tails.
//!
//! The Kendall tests in the paper's Table 4 have z-statistics around 33,
//! whose two-sided normal p-values (~1e-242) underflow any direct
//! `exp`-based computation path that isn't careful. We therefore expose both
//! a standard double-precision `erfc` and `ln_erfc`, the natural log of the
//! complementary error function, valid for large arguments via the
//! asymptotic series.

use std::f64::consts::PI;

/// Complementary error function, accurate to ~1.2e-7 relative error
/// (Numerical Recipes rational Chebyshev approximation), with exact values
/// at 0 and correct symmetry `erfc(-x) = 2 - erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.5 * x);
    let poly = -1.26551223
        + t * (1.00002368
            + t * (0.37409196
                + t * (0.09678418
                    + t * (-0.18628806
                        + t * (0.27886807
                            + t * (-1.13520398
                                + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277))))))));
    t * (-x * x + poly).exp()
}

/// Error function, `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Natural logarithm of `erfc(x)`, valid for all `x` and accurate deep into
/// the tail where `erfc` itself underflows.
///
/// For `x > 8` uses the asymptotic expansion
/// `erfc(x) = exp(-x²) / (x√π) · Σ_k (-1)^k (2k-1)!! / (2x²)^k`.
pub fn ln_erfc(x: f64) -> f64 {
    if x <= 8.0 {
        let v = erfc(x);
        if v > 0.0 {
            return v.ln();
        }
    }
    // Asymptotic series; for x > 8 the first few terms give full double
    // precision of the log.
    let inv2x2 = 1.0 / (2.0 * x * x);
    let mut term = 1.0;
    let mut series = 1.0;
    for k in 1..=6u32 {
        term *= -((2 * k - 1) as f64) * inv2x2;
        series += term;
    }
    -x * x - (x * PI.sqrt()).ln() + series.ln()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Two-sided normal tail probability `P(|Z| ≥ |z|)` as a (possibly
/// underflowing) `f64`.
pub fn two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Base-10 logarithm of the two-sided normal tail probability; representable
/// even when [`two_sided_p`] underflows to zero.
pub fn two_sided_log10_p(z: f64) -> f64 {
    ln_erfc(z.abs() / std::f64::consts::SQRT_2) / std::f64::consts::LN_10
}

/// Formats a p-value given its base-10 log, matching the paper's Table 4
/// notation (e.g. `5.42e-242`). Values above 1e-3 are printed plainly.
pub fn format_p(log10_p: f64) -> String {
    if log10_p >= -3.0 {
        format!("{:.3}", 10f64.powf(log10_p))
    } else {
        let exponent = log10_p.floor();
        let mantissa = 10f64.powf(log10_p - exponent);
        format!("{:.2}e{}", mantissa, exponent as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (3.0, 2.209e-5),
        ];
        for (x, expected) in cases {
            let got = erfc(x);
            assert!(
                (got - expected).abs() < 2e-6 * (1.0 + expected),
                "erfc({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.7, 1.5, 3.0] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn ln_erfc_agrees_with_erfc_in_overlap() {
        for x in [0.5, 1.0, 2.0, 4.0, 6.0, 7.9] {
            let direct = erfc(x).ln();
            let logged = ln_erfc(x);
            assert!(
                (direct - logged).abs() < 1e-5 * direct.abs().max(1.0),
                "x={x}: direct {direct}, logged {logged}"
            );
        }
    }

    #[test]
    fn ln_erfc_tracks_asymptotic_in_deep_tail() {
        // erfc(23.5) ≈ exp(-552.2)/(23.5*sqrt(pi)): check the log against the
        // leading term within the series correction.
        let x = 23.5_f64;
        let leading = -x * x - (x * PI.sqrt()).ln();
        let got = ln_erfc(x);
        assert!((got - leading).abs() < 0.01, "got {got}, leading {leading}");
    }

    #[test]
    fn paper_scale_p_value_is_reachable() {
        // z ≈ 33.2 (Kendall tau = 1 at n = 494) must give p ≈ 1e-242, the
        // magnitude on the diagonal of the paper's Table 4.
        let log10 = two_sided_log10_p(33.2);
        assert!(
            (-243.0..=-240.0).contains(&log10),
            "log10 p = {log10}, expected ≈ -242"
        );
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn format_p_matches_paper_notation() {
        assert_eq!(format_p(-241.266), "5.42e-242");
        assert_eq!(format_p(-0.2204), "0.602");
    }

    #[test]
    fn two_sided_p_is_consistent_with_log_version() {
        for z in [0.5, 1.0, 2.5, 5.0] {
            let p = two_sided_p(z);
            let lp = two_sided_log10_p(z);
            assert!((p.log10() - lp).abs() < 1e-5, "z={z}");
        }
    }
}
