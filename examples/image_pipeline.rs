//! The full raster pipeline, end to end: synthesize a fingerprint image
//! from a master print, run the classic extraction chain (orientation
//! estimation, segmentation, Gabor enhancement, binarization, thinning,
//! crossing-number extraction), and match the extracted template against
//! the master's ground-truth template.
//!
//! Writes `fingerprint.pgm` (the rendered print) and `enhanced.pgm` to the
//! working directory so the stages can be inspected with any image viewer.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use fingerprint_interop::prelude::*;
use fp_core::geometry::Rect;
use fp_core::rng::SeedTree;
use fp_image::binarize::adaptive_binarize;
use fp_image::enhance::gabor_enhance;
use fp_image::extract::{extract_minutiae, ExtractConfig};
use fp_image::morphology::clean_skeleton;
use fp_image::orientation::estimate_orientation;
use fp_image::pgm::write_pgm;
use fp_image::render::{render_master, RenderConfig};
use fp_image::segment::segment;
use fp_image::thin::zhang_suen;
use fp_synth::master::MasterPrint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic finger.
    let master = MasterPrint::generate(&SeedTree::new(99), fp_core::ids::Digit::Index, 1.0);
    println!(
        "master print: {} class, {} ground-truth minutiae",
        master.class(),
        master.minutiae().len()
    );

    // 2. Render the central 16 x 20 mm at 500 dpi.
    let window = Rect::centred(Point::ORIGIN, 16.0, 20.0)?;
    let render_config = RenderConfig::default();
    let image = render_master(&master, window, &render_config, &SeedTree::new(7));
    println!("rendered {} x {} px", image.width(), image.height());
    write_pgm(&image, std::fs::File::create("fingerprint.pgm")?)?;

    // 3. The classic extraction chain.
    let block = 16;
    let field = estimate_orientation(&image, block);
    println!(
        "orientation field: mean coherence {:.2}",
        field.mean_coherence()
    );
    let mask = segment(&image, block, 0.25).eroded();
    println!("foreground fraction: {:.2}", mask.foreground_fraction());
    let enhanced = gabor_enhance(&image, &field, &mask, 9.0);
    write_pgm(&enhanced, std::fs::File::create("enhanced.pgm")?)?;
    let binary = adaptive_binarize(&enhanced, &mask, 6);
    let skeleton = clean_skeleton(&zhang_suen(&binary), 5, 6);
    let extracted = extract_minutiae(&skeleton, &mask, window, &ExtractConfig::default())?;
    println!("extracted {} minutiae from the image", extracted.len());

    // 4. Match the extracted template against the ground truth.
    let ground_truth = Template::builder(500.0)
        .capture_window(window)
        .extend(
            master
                .minutiae()
                .iter()
                .filter(|m| window.contains(&m.pos))
                .copied(),
        )
        .build()?;
    let matcher = PairTableMatcher::default();
    let calibration = fp_match::ScoreCalibration::default();
    let genuine = calibration.apply(matcher.compare(&ground_truth, &extracted));

    // And against a different finger for contrast.
    let other = MasterPrint::generate(&SeedTree::new(100), fp_core::ids::Digit::Index, 1.0);
    let other_template = Template::builder(500.0)
        .capture_window(window)
        .extend(
            other
                .minutiae()
                .iter()
                .filter(|m| window.contains(&m.pos))
                .copied(),
        )
        .build()?;
    let impostor = calibration.apply(matcher.compare(&other_template, &extracted));

    println!(
        "\nmatch scores for the image-extracted template:\n  \
         vs its own master:      {:.1}\n  \
         vs a different finger:  {:.1}",
        genuine.value(),
        impostor.value()
    );
    println!("\nwrote fingerprint.pgm and enhanced.pgm");
    Ok(())
}
