//! The study driver: regenerates every table and figure of Lugini et al.
//! (DSN 2013) on the synthetic substrate.
//!
//! ```sh
//! study all                         # every experiment at the default scale
//! study table5 --subjects 494      # one experiment at paper scale
//! study ext-scaling --subjects 1000 # 1:N search ladder: 1k/5k/10k galleries
//! study all --json results.json    # machine-readable output (incl. telemetry)
//! study all --metrics metrics.json # telemetry snapshot to its own file
//! study --all --trace trace.json   # flight-recorder timeline (chrome://tracing)
//! study all --events events.jsonl  # structured event log (JSON Lines)
//! study devices                    # print the device table (paper Table 1)
//! study metrics                    # explain the telemetry instruments
//! study verify --subjects 150      # check the paper's findings hold
//! study ext-scaling --remote-shards 2 # 1:N over serve-shard child processes
//! study serve-shard                # one gallery shard behind a TCP socket
//! study load --subjects 200        # concurrent-load harness over serve-shards
//! study check-scaling results.json # gate an ext-scaling JSON (recall/audits)
//! study check-serve results.json   # gate the cross-process parity rung
//! study check-load load.json       # gate the load harness (parity/ledger/tails)
//! study load --slowlog slow.jsonl   # tail-latency exemplars (running p99)
//! study check-dist-trace --remote-shards 2 # distributed-tracing gate
//! study check-telemetry results.json # gate a study JSON's telemetry section
//! study fingerprint results.json   # print/save the run-fingerprint manifest
//! study check-fingerprint results.json [--deep] # gate fingerprint parity
//! study render --seed 7 --out print.pgm   # render a synthetic print (PGM)
//! study gallery build store/ --subjects 200 # persist a synthetic gallery
//! study gallery inspect store/ --json i.json # per-segment sizes and CRCs
//! study gallery compact store/              # reclaim tombstoned entries
//! study serve-shard --gallery-dir store/    # serve a persisted gallery
//! study check-store --remote-shards 1       # store-parity gate (open/churn/compact)
//! ```

use std::process::ExitCode;

use fp_sensor::DEVICES;
use fp_study::config::StudyConfig;
use fp_study::experiments;
use fp_study::scores::StudyData;
use fp_telemetry::{Level, Telemetry};

struct Args {
    experiment: String,
    /// Positional input path (`check-scaling RESULTS.json`), or the
    /// action word of `gallery <build|inspect|compact> DIR`.
    path: Option<String>,
    /// `--gallery-dir PATH` (serve-shard, check-store) or the positional
    /// DIR of `gallery <action> DIR`.
    gallery_dir: Option<String>,
    subjects: Option<usize>,
    seed: Option<u64>,
    shards: Option<usize>,
    remote_shards: Option<usize>,
    port: Option<u16>,
    json: Option<String>,
    out: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    events: Option<String>,
    /// `load --slowlog PATH` / `check-dist-trace --slowlog PATH`: write
    /// tail-latency exemplars as JSON Lines.
    slowlog: Option<String>,
    /// `serve-shard --delay-ms N`: sleep N ms at the top of each stage
    /// handler (fault injection for the distributed-tracing gate).
    delay_ms: Option<u64>,
    /// `check-fingerprint --deep`: stricter audit of the manifest.
    deep: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1).peekable();
    // `study --trace t.json` / `study --all ...` run every experiment: a
    // leading flag means the experiment name was omitted.
    let experiment = match args.peek() {
        Some(first) if !first.starts_with('-') => args.next().expect("peeked"),
        _ => "all".to_string(),
    };
    let mut parsed = Args {
        experiment,
        path: None,
        gallery_dir: None,
        subjects: None,
        seed: None,
        shards: None,
        remote_shards: None,
        port: None,
        json: None,
        out: None,
        metrics: None,
        trace: None,
        events: None,
        slowlog: None,
        delay_ms: None,
        deep: false,
    };
    if matches!(
        parsed.experiment.as_str(),
        "check-scaling"
            | "check-telemetry"
            | "check-serve"
            | "check-load"
            | "check-fingerprint"
            | "fingerprint"
    ) {
        if let Some(next) = args.peek() {
            if !next.starts_with('-') {
                parsed.path = Some(args.next().expect("peeked"));
            }
        }
    }
    if parsed.experiment == "gallery" {
        // `gallery <build|inspect|compact> DIR`: the action word lands in
        // `path`, the directory in `gallery_dir`.
        for slot in [&mut parsed.path, &mut parsed.gallery_dir] {
            if let Some(next) = args.peek() {
                if !next.starts_with('-') {
                    *slot = Some(args.next().expect("peeked"));
                }
            }
        }
    }
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--all" => parsed.experiment = "all".to_string(),
            "--subjects" => {
                let v = args.next().ok_or("--subjects needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --subjects: {v}"))?;
                if n < 2 {
                    return Err(format!(
                        "--subjects must be at least 2 (genuine and impostor pairs both need subjects), got {n}"
                    ));
                }
                parsed.subjects = Some(n);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = Some(v.parse().map_err(|_| format!("bad --seed: {v}"))?);
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards: {v}"))?;
                if n < 1 {
                    return Err(format!("--shards must be at least 1, got {n}"));
                }
                parsed.shards = Some(n);
            }
            "--remote-shards" => {
                let v = args.next().ok_or("--remote-shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --remote-shards: {v}"))?;
                if n < 1 {
                    return Err(format!("--remote-shards must be at least 1, got {n}"));
                }
                parsed.remote_shards = Some(n);
            }
            "--port" => {
                let v = args.next().ok_or("--port needs a value")?;
                parsed.port = Some(v.parse().map_err(|_| format!("bad --port: {v}"))?);
            }
            "--json" => {
                parsed.json = Some(args.next().ok_or("--json needs a path")?);
            }
            "--out" => {
                parsed.out = Some(args.next().ok_or("--out needs a path")?);
            }
            "--metrics" => {
                parsed.metrics = Some(args.next().ok_or("--metrics needs a path")?);
            }
            "--trace" => {
                parsed.trace = Some(args.next().ok_or("--trace needs a path")?);
            }
            "--events" => {
                parsed.events = Some(args.next().ok_or("--events needs a path")?);
            }
            "--slowlog" => {
                parsed.slowlog = Some(args.next().ok_or("--slowlog needs a path")?);
            }
            "--delay-ms" => {
                let v = args.next().ok_or("--delay-ms needs a value")?;
                parsed.delay_ms = Some(v.parse().map_err(|_| format!("bad --delay-ms: {v}"))?);
            }
            "--gallery-dir" => {
                parsed.gallery_dir = Some(args.next().ok_or("--gallery-dir needs a path")?);
            }
            "--deep" => parsed.deep = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(parsed)
}

fn print_devices() {
    println!("devices (paper Table 1):");
    println!(
        "{:<6}{:<42}{:>8}{:>12}{:>14}",
        "id", "model", "dpi", "image px", "capture mm"
    );
    for d in &DEVICES {
        println!(
            "{:<6}{:<42}{:>8}{:>12}{:>14}",
            d.id.to_string(),
            d.model,
            d.resolution_dpi,
            format!("{}x{}", d.image_px.0, d.image_px.1),
            format!("{}x{}", d.capture_mm.0, d.capture_mm.1),
        );
    }
}

fn print_metrics_help() {
    println!("telemetry instruments (enabled for every experiment run):");
    println!();
    println!("  export: `--json PATH` embeds a \"telemetry\" section in the results;");
    println!("  `--metrics PATH` writes the snapshot alone. `--trace PATH` writes the");
    println!("  flight recorder as Chrome trace-event JSON (open in chrome://tracing");
    println!("  or https://ui.perfetto.dev); `--events PATH` writes the structured");
    println!("  event log as JSON Lines. `study all` also prints a one-screen summary");
    println!("  to stderr. Counters and work-size histograms are pure functions of");
    println!("  the seed (identical across same-seed runs); durations, gauges, stage");
    println!("  timings and trace timestamps vary with the machine.");
    println!();
    println!("  counters (deterministic work tallies)");
    println!("    synth.masters                     master prints synthesized");
    println!("    sensor.d<d>.impressions           impressions captured per device");
    println!("    sensor.minutiae.dropped/vignetted/clipped/spurious");
    println!("                                      acquisition gain/loss channels");
    println!("    match.{{pairtable,hough,mcc}}.comparisons   matcher invocations");
    println!("    scores.comparisons.genuine/impostor        study comparisons");
    println!("    index.enrolled/searches/hamming_ops/bucket_hits  1:N index work");
    println!("      (hamming_ops counts packed-u64 word comparisons, not entries;");
    println!("       sharded runs add per-shard index.shard<k>.* labels whose work");
    println!("       counters sum to the index.* roll-up)");
    println!();
    println!("  work-size histograms (deterministic)");
    println!("    synth.minutiae_per_master         master template sizes");
    println!("    sensor.minutiae_per_impression    captured template sizes");
    println!("    match.pairtable.table_entries/associations/cluster_size");
    println!("    match.hough.vote_cells/peak_votes");
    println!("    match.mcc.valid_cylinders");
    println!("    index.search.hamming_ops_per_search    stage-1 work per probe");
    println!("    index.search.bucket_hits_per_search    stage-2 votes per probe");
    println!();
    println!("  duration histograms (spans; wall time)");
    println!("    index.build.seconds               per-template enrollment cost");
    println!("    index.build.batch_seconds         whole enroll_all batches");
    println!("    index.search.seconds              per 1:N search");
    println!("    study.dataset, study.dataset.population, study.scores");
    println!("    dataset.subject                   per-subject capture work");
    println!("    scores.cell.g<g>p<p>              per (gallery, probe) device cell");
    println!("    experiment.<id>                   per report");
    println!();
    println!("  stages (per-thread utilization)");
    println!("    dataset.capture, scores.prepare, scores.genuine, scores.impostor");
    println!("    scaling.pool, scaling.search, scaling.audit");
    println!();
    println!("  flight recorder (--trace / --events)");
    println!("    hierarchical span tree with per-span attributes (experiment,");
    println!("    gallery/probe device, subject, worker lane) and self-time");
    println!("    attribution; log events carry a severity (debug|info|warn|error).");
    println!("    Span names/parents/attributes are deterministic; timestamps vary.");
}

fn write_json(
    telemetry: &Telemetry,
    path: &str,
    value: &serde_json::Value,
) -> Result<(), ExitCode> {
    match std::fs::write(
        path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => {
            telemetry.event_with(Level::Info, "wrote output", &[("path", path.to_string())]);
            Ok(())
        }
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "failed to write output",
                &[("path", path.to_string()), ("error", e.to_string())],
            );
            Err(ExitCode::FAILURE)
        }
    }
}

/// Gates an `ext-scaling --json` results file: every rung must hold
/// shortlist recall >= 0.98 and full brute-force audit agreement. The Rust
/// replacement for the python heredocs the smoke gates used to need.
fn check_scaling(telemetry: &Telemetry, path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "cannot read results file",
                &[("path", path.to_string()), ("error", e.to_string())],
            );
            return ExitCode::FAILURE;
        }
    };
    let payload: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "results file is not valid JSON",
                &[("path", path.to_string()), ("error", e.to_string())],
            );
            return ExitCode::FAILURE;
        }
    };
    let report = payload["reports"]
        .as_array()
        .into_iter()
        .flatten()
        .find(|r| r["id"] == "ext-scaling");
    let Some(report) = report else {
        telemetry.event_with(
            Level::Error,
            "no ext-scaling report in results file",
            &[("path", path.to_string())],
        );
        return ExitCode::FAILURE;
    };
    let Some(rows) = report["values"]["rows"]
        .as_array()
        .filter(|r| !r.is_empty())
    else {
        telemetry.event(Level::Error, "ext-scaling report has no rows");
        return ExitCode::FAILURE;
    };
    let mut ok = true;
    for row in rows {
        let recall = row["recall"].as_f64().unwrap_or(0.0);
        if recall < 0.98 {
            telemetry.event_with(
                Level::Error,
                "shortlist recall regressed",
                &[("row", row.to_string()), ("recall", format!("{recall}"))],
            );
            ok = false;
        }
        if row["audit_agreed"] != row["audit_sampled"] {
            telemetry.event_with(
                Level::Error,
                "brute-force audit mismatch",
                &[("row", row.to_string())],
            );
            ok = false;
        }
    }
    // Shard ladder (when run with --shards): every shard row must show
    // full candidate-list parity with the unsharded index, and — because
    // sharded search is provably identical — recall must equal the top
    // unsharded rung's recall *exactly*, not just within tolerance.
    let shard_rows = report["values"]["shard_rows"].as_array();
    let mut shard_count = 0usize;
    if let Some(shard_rows) = shard_rows.filter(|r| !r.is_empty()) {
        shard_count = shard_rows.len();
        let top_recall = rows.last().expect("non-empty")["recall"].as_f64();
        for row in shard_rows {
            if row["parity_checked"].as_u64().unwrap_or(0) == 0
                || row["parity_agreed"] != row["parity_checked"]
            {
                telemetry.event_with(
                    Level::Error,
                    "sharded search diverged from the unsharded index",
                    &[("row", row.to_string())],
                );
                ok = false;
            }
            if row["recall"].as_f64() != top_recall {
                telemetry.event_with(
                    Level::Error,
                    "sharded recall differs from the unsharded top rung",
                    &[("row", row.to_string())],
                );
                ok = false;
            }
        }
    }
    if ok {
        if shard_count > 0 {
            println!(
                "ext-scaling smoke ok ({} rungs, {shard_count} shard rows at exact parity)",
                rows.len()
            );
        } else {
            println!("ext-scaling smoke ok ({} rungs)", rows.len());
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Gates an `ext-scaling --remote-shards --json` results file: the
/// cross-process rung must have run, every audited probe must show full
/// candidate-list parity with BOTH the unsharded index and the in-process
/// sharded index, recall must equal the top unsharded rung exactly, and the
/// `serve.*` transport counters must show real wire traffic.
fn check_serve(telemetry: &Telemetry, path: &str) -> ExitCode {
    let payload: serde_json::Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "cannot load results file",
                &[("path", path.to_string()), ("error", e)],
            );
            return ExitCode::FAILURE;
        }
    };
    let report = payload["reports"]
        .as_array()
        .into_iter()
        .flatten()
        .find(|r| r["id"] == "ext-scaling");
    let Some(report) = report else {
        telemetry.event_with(
            Level::Error,
            "no ext-scaling report in results file",
            &[("path", path.to_string())],
        );
        return ExitCode::FAILURE;
    };
    let mut ok = true;
    if !report["values"]["remote_error"].is_null() {
        telemetry.event_with(
            Level::Error,
            "cross-process rung failed",
            &[("error", report["values"]["remote_error"].to_string())],
        );
        ok = false;
    }
    let remote_rows = report["values"]["remote_rows"].as_array();
    let Some(remote_rows) = remote_rows.filter(|r| !r.is_empty()) else {
        telemetry.event(
            Level::Error,
            "no remote rows (run ext-scaling with --remote-shards N)",
        );
        return ExitCode::FAILURE;
    };
    let top_recall = report["values"]["rows"]
        .as_array()
        .and_then(|rows| rows.last())
        .and_then(|row| row["recall"].as_f64());
    for row in remote_rows {
        let checked = row["parity_checked"].as_u64().unwrap_or(0);
        if checked == 0
            || row["parity_agreed"] != row["parity_checked"]
            || row["parity_sharded_agreed"] != row["parity_checked"]
        {
            telemetry.event_with(
                Level::Error,
                "remote search diverged from the in-process indexes",
                &[("row", row.to_string())],
            );
            ok = false;
        }
        // Remote sharded search is provably identical to the unsharded
        // index, so recall must match the top rung exactly — same probes,
        // same budget, not a tolerance check.
        if row["recall"].as_f64() != top_recall {
            telemetry.event_with(
                Level::Error,
                "remote recall differs from the unsharded top rung",
                &[("row", row.to_string())],
            );
            ok = false;
        }
    }
    let counters = &payload["telemetry"]["counters"];
    for key in ["serve.requests", "serve.bytes_tx", "serve.bytes_rx"] {
        if counters[key].as_u64().unwrap_or(0) == 0 {
            telemetry.event_with(
                Level::Error,
                "serve counter is zero or missing",
                &[("counter", key.to_string())],
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "serve smoke ok ({} remote row(s) at exact parity, {} rpcs, {} bytes on the wire)",
            remote_rows.len(),
            counters["serve.requests"].as_u64().unwrap_or(0),
            counters["serve.bytes_tx"].as_u64().unwrap_or(0)
                + counters["serve.bytes_rx"].as_u64().unwrap_or(0),
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Gates a `study load --json` results file: the concurrent pass must show
/// byte-identical candidate lists and an equal RUNFP chain vs the
/// sequential in-process baseline, the deterministic pipeline probe must
/// have carried at least 4 concurrent requests on one connection with
/// responses equal to sequential replies, the shards' admission ledger must
/// balance exactly (offered == accepted + overloaded — a silently dropped
/// request breaks it), and every latency rung must have answered every
/// search with monotone percentiles.
fn check_load(telemetry: &Telemetry, path: &str) -> ExitCode {
    let payload: serde_json::Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "cannot load results file",
                &[("path", path.to_string()), ("error", e)],
            );
            return ExitCode::FAILURE;
        }
    };
    let report = payload["reports"]
        .as_array()
        .into_iter()
        .flatten()
        .find(|r| r["id"] == "ext-load");
    let Some(report) = report else {
        telemetry.event_with(
            Level::Error,
            "no ext-load report in results file",
            &[("path", path.to_string())],
        );
        return ExitCode::FAILURE;
    };
    let values = &report["values"];
    let mut ok = true;
    if !values["error"].is_null() {
        telemetry.event_with(
            Level::Error,
            "load rung failed",
            &[("error", values["error"].to_string())],
        );
        ok = false;
    }
    let checked = values["parity_checked"].as_u64().unwrap_or(0);
    if checked == 0 || values["parity_agreed"] != values["parity_checked"] {
        telemetry.event_with(
            Level::Error,
            "concurrent results diverged from the sequential baseline",
            &[
                ("agreed", values["parity_agreed"].to_string()),
                ("checked", values["parity_checked"].to_string()),
            ],
        );
        ok = false;
    }
    let remote_fp = values["runfp_remote"].as_str().unwrap_or("");
    if !is_runfp_hex(remote_fp) || values["runfp_remote"] != values["runfp_baseline"] {
        telemetry.event_with(
            Level::Error,
            "run fingerprint diverged from the sequential baseline",
            &[
                ("remote", values["runfp_remote"].to_string()),
                ("baseline", values["runfp_baseline"].to_string()),
            ],
        );
        ok = false;
    }
    let pipeline = &values["pipeline"];
    if pipeline["peak_in_flight"].as_u64().unwrap_or(0) < 4 || pipeline["responses_match"] != true {
        telemetry.event_with(
            Level::Error,
            "pipeline probe failed (need >= 4 in flight with sequential-equal responses)",
            &[("pipeline", pipeline.to_string())],
        );
        ok = false;
    }
    let admission = &values["admission"];
    let offered = admission["offered"].as_u64().unwrap_or(0);
    let accepted = admission["accepted"].as_u64().unwrap_or(0);
    let overloaded = admission["overloaded"].as_u64().unwrap_or(0);
    if offered == 0 || offered != accepted + overloaded {
        telemetry.event_with(
            Level::Error,
            "admission ledger broken: a request was dropped without a typed answer",
            &[("admission", admission.to_string())],
        );
        ok = false;
    }
    let Some(rungs) = values["rungs"].as_array().filter(|r| !r.is_empty()) else {
        telemetry.event(Level::Error, "ext-load report has no latency rungs");
        return ExitCode::FAILURE;
    };
    for rung in rungs {
        if rung["answered"] != rung["searches"] {
            telemetry.event_with(
                Level::Error,
                "latency rung dropped searches",
                &[("rung", rung.to_string())],
            );
            ok = false;
        }
        let p = |key: &str| rung[key].as_u64().unwrap_or(0);
        if !(p("p50_ns") <= p("p95_ns")
            && p("p95_ns") <= p("p99_ns")
            && p("p99_ns") <= p("p999_ns"))
        {
            telemetry.event_with(
                Level::Error,
                "latency percentiles are not monotone",
                &[("rung", rung.to_string())],
            );
            ok = false;
        }
        if rung["throughput_per_s"].as_f64().unwrap_or(0.0) <= 0.0 {
            telemetry.event_with(
                Level::Error,
                "latency rung reports no throughput",
                &[("rung", rung.to_string())],
            );
            ok = false;
        }
    }
    if ok {
        let top = rungs.last().expect("non-empty");
        println!(
            "load smoke ok ({} probes at exact parity, pipeline depth {}, \
             offered {} = accepted {} + overloaded {}; {} clients: \
             p50 {:.1}us p95 {:.1}us p99 {:.1}us p999 {:.1}us)",
            checked,
            pipeline["peak_in_flight"],
            offered,
            accepted,
            overloaded,
            top["clients"],
            top["p50_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
            top["p95_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
            top["p99_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
            top["p999_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Loads a `--json` results file and extracts its ext-scaling report.
fn load_scaling_report(telemetry: &Telemetry, path: &str) -> Result<serde_json::Value, ExitCode> {
    let payload: serde_json::Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "cannot load results file",
                &[("path", path.to_string()), ("error", e)],
            );
            return Err(ExitCode::FAILURE);
        }
    };
    let report = payload["reports"]
        .as_array()
        .into_iter()
        .flatten()
        .find(|r| r["id"] == "ext-scaling")
        .cloned();
    report.ok_or_else(|| {
        telemetry.event_with(
            Level::Error,
            "no ext-scaling report in results file",
            &[("path", path.to_string())],
        );
        ExitCode::FAILURE
    })
}

/// A well-formed run fingerprint: exactly 16 lowercase hex digits.
fn is_runfp_hex(s: &str) -> bool {
    s.len() == 16
        && s.chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

/// Prints (and optionally saves) the run-fingerprint manifest of an
/// `ext-scaling --json` results file: the seed plus every rung's RUNFP
/// chain value. The manifest is the O(1) artifact two runs compare to
/// prove behavioral parity without diffing candidate lists.
fn fingerprint_manifest(telemetry: &Telemetry, path: &str, json_out: Option<&str>) -> ExitCode {
    let report = match load_scaling_report(telemetry, path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let values = &report["values"];
    let seed = values["seed"].as_u64().unwrap_or(0);
    let rung = |row: &serde_json::Value, label: &str| {
        serde_json::json!({
            "kind": label,
            "gallery": row["gallery"],
            "shards": row["shards"],
            "runfp": row["runfp"],
        })
    };
    let mut rungs = Vec::new();
    println!("run-fingerprint manifest (RUNFP v1, seed {seed}):");
    for row in values["rows"].as_array().into_iter().flatten() {
        println!(
            "  gallery {:<8} unsharded        {}",
            row["gallery"],
            row["runfp"].as_str().unwrap_or("<missing>")
        );
        rungs.push(rung(row, "unsharded"));
    }
    for row in values["shard_rows"].as_array().into_iter().flatten() {
        println!(
            "  shards  {:<8} in-process       {}",
            row["shards"],
            row["runfp"].as_str().unwrap_or("<missing>")
        );
        rungs.push(rung(row, "sharded"));
    }
    for row in values["remote_rows"].as_array().into_iter().flatten() {
        println!(
            "  shards  {:<8} cross-process    {}",
            row["shards"],
            row["runfp"].as_str().unwrap_or("<missing>")
        );
        rungs.push(rung(row, "remote"));
    }
    if rungs.is_empty() {
        telemetry.event_with(
            Level::Error,
            "results file has no fingerprinted rungs",
            &[("path", path.to_string())],
        );
        return ExitCode::FAILURE;
    }
    if let Some(out) = json_out {
        let manifest = serde_json::json!({
            "format": "RUNFP v1",
            "source": path,
            "seed": seed,
            "base_subjects": values["base_subjects"],
            "rungs": rungs,
        });
        if let Err(code) = write_json(telemetry, out, &manifest) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Gates fingerprint parity in an `ext-scaling --json` results file: the
/// unsharded top rung, every in-process shard rung and every cross-process
/// rung ran the same probes under the same seed, so their RUNFP chains must
/// be *equal*. One flipped score bit anywhere in a multi-thousand-search
/// run changes the chain — this is the O(1) behavioral-parity proof.
///
/// `--deep` additionally requires cross-process evidence (remote rungs
/// present) and audits the unsharded ladder itself: every rung must carry a
/// well-formed chain, and different gallery sizes must produce *different*
/// chains (equal values across different workloads signal a pinned or
/// forged constant).
fn check_fingerprint(telemetry: &Telemetry, path: &str, deep: bool) -> ExitCode {
    let report = match load_scaling_report(telemetry, path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let values = &report["values"];
    let mut ok = true;
    let Some(rows) = values["rows"].as_array().filter(|r| !r.is_empty()) else {
        telemetry.event(Level::Error, "ext-scaling report has no rows");
        return ExitCode::FAILURE;
    };
    for row in rows {
        let fp = row["runfp"].as_str().unwrap_or("");
        if !is_runfp_hex(fp) {
            telemetry.event_with(
                Level::Error,
                "rung carries no well-formed run fingerprint",
                &[("row", row.to_string())],
            );
            ok = false;
        }
    }
    let top = rows.last().expect("non-empty")["runfp"]
        .as_str()
        .unwrap_or("");
    if !values["remote_error"].is_null() {
        telemetry.event_with(
            Level::Error,
            "cross-process rung failed; its fingerprint is unverifiable",
            &[("error", values["remote_error"].to_string())],
        );
        ok = false;
    }
    let mut cross_checked = 0usize;
    for (section, label) in [
        ("shard_rows", "in-process sharded"),
        ("remote_rows", "remote"),
    ] {
        for row in values[section].as_array().into_iter().flatten() {
            cross_checked += 1;
            let fp = row["runfp"].as_str().unwrap_or("");
            if fp != top {
                telemetry.event_with(
                    Level::Error,
                    "run fingerprint diverged from the unsharded top rung",
                    &[
                        ("kind", label.to_string()),
                        ("expected", top.to_string()),
                        ("row", row.to_string()),
                    ],
                );
                ok = false;
            }
        }
    }
    if cross_checked == 0 {
        telemetry.event(
            Level::Error,
            "nothing to cross-check: run ext-scaling with --shards and/or --remote-shards",
        );
        ok = false;
    }
    if deep {
        if values["remote_rows"]
            .as_array()
            .is_none_or(|r| r.is_empty())
        {
            telemetry.event(
                Level::Error,
                "--deep requires cross-process evidence (run with --remote-shards N)",
            );
            ok = false;
        }
        // Different gallery sizes are different workloads: their chains
        // must differ, or someone pinned a constant.
        let mut seen = std::collections::BTreeMap::new();
        for row in rows {
            if let Some(prev) = seen.insert(row["runfp"].as_str().unwrap_or(""), &row["gallery"]) {
                telemetry.event_with(
                    Level::Error,
                    "distinct rungs report identical fingerprints",
                    &[
                        ("gallery_a", prev.to_string()),
                        ("gallery_b", row["gallery"].to_string()),
                    ],
                );
                ok = false;
            }
        }
    }
    if ok {
        println!(
            "fingerprint parity ok (top rung {top}, {cross_checked} sharded/remote rung(s) equal{})",
            if deep { ", deep audit passed" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Gates a study `--json` results file on its embedded telemetry section:
/// the run must have done real comparison and index work and recorded cell
/// spans and stage timings. The Rust replacement for CI's acceptance
/// heredoc.
fn check_telemetry(telemetry: &Telemetry, path: &str) -> ExitCode {
    let payload: serde_json::Value = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            telemetry.event_with(
                Level::Error,
                "cannot load results file",
                &[("path", path.to_string()), ("error", e)],
            );
            return ExitCode::FAILURE;
        }
    };
    let snap = &payload["telemetry"];
    let counter = |key: &str| snap["counters"][key].as_u64().unwrap_or(0);
    let mut ok = true;
    for key in ["scores.comparisons.genuine", "index.searches"] {
        if counter(key) == 0 {
            telemetry.event_with(
                Level::Error,
                "expected counter is zero or missing",
                &[("counter", key.to_string())],
            );
            ok = false;
        }
    }
    let has_cells = snap["durations"]
        .as_object()
        .is_some_and(|d| d.keys().any(|k| k.starts_with("scores.cell.")));
    if !has_cells {
        telemetry.event(Level::Error, "no scores.cell.* duration histograms");
        ok = false;
    }
    if snap["stages"].as_array().is_none_or(|s| s.is_empty()) {
        telemetry.event(Level::Error, "no stage records");
        ok = false;
    }
    if ok {
        println!("telemetry section ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `study gallery <build|inspect|compact> DIR`: the operator surface of
/// the persistent gallery store.
fn gallery_command(telemetry: &Telemetry, args: &Args) -> ExitCode {
    let action = args.path.as_deref().unwrap_or("");
    let Some(dir) = args.gallery_dir.as_deref() else {
        eprintln!("error: usage: study gallery <build|inspect|compact> DIR");
        return ExitCode::FAILURE;
    };
    match action {
        "build" => {
            let mut builder = StudyConfig::builder();
            if let Some(s) = args.subjects {
                builder = builder.subjects(s);
            }
            if let Some(s) = args.seed {
                builder = builder.seed(s);
            }
            let config = builder.build();
            match fp_study::experiments::check_store::build_gallery(
                &config,
                std::path::Path::new(dir),
            ) {
                Ok((live, segments)) => {
                    println!(
                        "built {dir}: {live} entries in {segments} segment(s) \
                         (subjects {}, seed {})",
                        config.subjects, config.seed
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "inspect" => {
            let inspect = match fp_store::GalleryStore::open(dir).and_then(|s| s.inspect()) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("error: cannot inspect {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "gallery {dir}: {} live entries, {} tombstones, {} segment(s), next seq {}",
                inspect.live_entries,
                inspect.tombstone_count,
                inspect.segments.len(),
                inspect.next_seq
            );
            let crc = |ok: bool| if ok { "ok" } else { "BAD" };
            for seg in &inspect.segments {
                println!(
                    "  {} v{}: {} entries ({} tombstoned), {} bytes, header crc {}",
                    seg.file,
                    seg.segment.version,
                    seg.manifest_entry_count,
                    seg.tombstones,
                    seg.segment.file_bytes,
                    crc(seg.segment.header_crc_ok),
                );
                for sec in &seg.segment.sections {
                    println!(
                        "    {:<8} {:>12} bytes  crc {}",
                        sec.name,
                        sec.bytes,
                        crc(sec.crc_ok)
                    );
                }
            }
            if let Some(path) = &args.json {
                let payload = serde_json::to_value(&inspect).expect("serializable");
                if let Err(code) = write_json(telemetry, path, &payload) {
                    return code;
                }
            }
            if inspect.all_crc_ok() {
                println!("all checksums ok");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: checksum failure (see BAD rows above)");
                ExitCode::FAILURE
            }
        }
        "compact" => {
            let stats = match fp_store::GalleryStore::open(dir).and_then(|mut s| s.compact()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot compact {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "compacted {dir}: {} -> {} segment(s), {} entries reclaimed, {} -> {} bytes",
                stats.segments_before,
                stats.segments_after,
                stats.entries_dropped,
                stats.bytes_before,
                stats.bytes_after
            );
            if let Some(path) = &args.json {
                let payload = serde_json::to_value(stats).expect("serializable");
                if let Err(code) = write_json(telemetry, path, &payload) {
                    return code;
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown gallery action '{other}' (build|inspect|compact)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args, telemetry: &Telemetry) -> ExitCode {
    if args.experiment == "devices" {
        print_devices();
        return ExitCode::SUCCESS;
    }

    if args.experiment == "gallery" {
        return gallery_command(telemetry, args);
    }

    if args.experiment == "metrics" {
        print_metrics_help();
        return ExitCode::SUCCESS;
    }

    if matches!(
        args.experiment.as_str(),
        "check-scaling"
            | "check-telemetry"
            | "check-serve"
            | "check-load"
            | "check-fingerprint"
            | "fingerprint"
    ) {
        let Some(path) = &args.path else {
            telemetry.event_with(
                Level::Error,
                "gate subcommand needs a results JSON path",
                &[("subcommand", args.experiment.clone())],
            );
            return ExitCode::FAILURE;
        };
        return match args.experiment.as_str() {
            "check-scaling" => check_scaling(telemetry, path),
            "check-serve" => check_serve(telemetry, path),
            "check-load" => check_load(telemetry, path),
            "check-fingerprint" => check_fingerprint(telemetry, path, args.deep),
            "fingerprint" => fingerprint_manifest(telemetry, path, args.json.as_deref()),
            _ => check_telemetry(telemetry, path),
        };
    }

    if args.experiment == "serve-shard" {
        // One gallery shard behind the fp-serve wire protocol. Binds
        // loopback (port 0 unless --port), prints the LISTENING handshake
        // line for the spawning coordinator, and serves until a wire-level
        // shutdown frame arrives.
        use std::io::Write as _;
        let addr = format!("127.0.0.1:{}", args.port.unwrap_or(0));
        // The shard keeps its own enabled registry so a coordinator's
        // STATS scrape sees real index.* instruments, whatever this
        // process's own telemetry mode.
        let shard_telemetry = Telemetry::enabled();
        let server =
            match fp_serve::ShardServer::bind(fp_match::PairTableMatcher::default(), addr.as_str())
            {
                Ok(s) => s.with_telemetry(&shard_telemetry),
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
        // `--gallery-dir`: serve a persisted gallery instead of waiting
        // for enroll RPCs — the shard loads the store's live view (same
        // candidate bytes as fresh enrollment) before accepting clients.
        let server = if let Some(dir) = &args.gallery_dir {
            let index = match fp_store::GalleryStore::open(dir)
                .map(|s| s.with_telemetry(&shard_telemetry))
                .and_then(|s| s.open_index())
            {
                Ok(index) => index,
                Err(e) => {
                    eprintln!("error: cannot load gallery {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("serve-shard: loaded {} entries from {dir}", index.len());
            server.with_index(index)
        } else {
            server
        };
        if let Some(ms) = args.delay_ms {
            // Fault injection for the distributed-tracing gate: every
            // stage handler sleeps this long before doing its work, so
            // this shard shows up as the tail-latency culprit.
            server
                .delay_stage()
                .store(ms, std::sync::atomic::Ordering::Relaxed);
        }
        let local = match server.local_addr() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: no local address: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{} {local}", fp_serve::proc::LISTENING_PREFIX);
        let _ = std::io::stdout().flush();
        return match server.run() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: serve loop failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.experiment == "render" {
        // Render one synthetic fingerprint with its master minutiae marked.
        let seed = args.seed.unwrap_or(7);
        let path = args
            .out
            .clone()
            .unwrap_or_else(|| "fingerprint.pgm".to_string());
        let master = fp_synth::master::MasterPrint::generate(
            &fp_core::rng::SeedTree::new(seed),
            fp_core::ids::Digit::Index,
            1.0,
        );
        let window = fp_core::geometry::Rect::centred(fp_core::geometry::Point::ORIGIN, 18.0, 22.0)
            .expect("valid window");
        let config = fp_image::render::RenderConfig::default();
        telemetry.event_with(
            Level::Info,
            "rendering synthetic print at 500 dpi",
            &[
                ("class", master.class().to_string()),
                ("seed", seed.to_string()),
            ],
        );
        let mut image = fp_image::render::render_master(
            &master,
            window,
            &config,
            &fp_core::rng::SeedTree::new(seed ^ 0x9E37),
        );
        let template = fp_core::template::Template::builder(500.0)
            .capture_window(window)
            .extend(
                master
                    .minutiae()
                    .iter()
                    .filter(|m| window.contains(&m.pos))
                    .copied(),
            )
            .build()
            .expect("valid template");
        fp_image::render::overlay_minutiae(&mut image, &template, window, 500.0);
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                telemetry.event_with(
                    Level::Error,
                    "cannot create render output",
                    &[("path", path.clone()), ("error", e.to_string())],
                );
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fp_image::pgm::write_pgm(&image, file) {
            telemetry.event_with(
                Level::Error,
                "cannot write render output",
                &[("path", path.clone()), ("error", e.to_string())],
            );
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path}: {}x{} px, {} master minutiae marked",
            image.width(),
            image.height(),
            template.len()
        );
        if let Some(json_path) = &args.json {
            let payload = serde_json::json!({
                "seed": seed,
                "path": path,
                "width": image.width(),
                "height": image.height(),
                "minutiae": template.len(),
            });
            if let Err(code) = write_json(telemetry, json_path, &payload) {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }

    if args.experiment == "verify" {
        let mut builder = StudyConfig::builder();
        if let Some(s) = args.subjects {
            builder = builder.subjects(s);
        }
        if let Some(s) = args.seed {
            builder = builder.seed(s);
        }
        let config = builder.build();
        telemetry.event_with(
            Level::Info,
            "verifying paper findings",
            &[
                ("subjects", config.subjects.to_string()),
                ("seed", config.seed.to_string()),
            ],
        );
        let data = StudyData::generate_with(&config, telemetry);
        let findings = fp_study::findings::check_all(&data);
        let (report, all_hold) = fp_study::findings::render(&findings);
        println!("{report}");
        if let Some(path) = &args.json {
            let payload = serde_json::json!({"config": config, "findings": findings});
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return if all_hold {
            println!("all findings hold");
            ExitCode::SUCCESS
        } else {
            println!("SOME FINDINGS FAILED (small cohorts are noisy; try --subjects 150+)");
            ExitCode::FAILURE
        };
    }

    let mut builder = StudyConfig::builder();
    if let Some(s) = args.subjects {
        builder = builder.subjects(s);
    }
    if let Some(s) = args.seed {
        builder = builder.seed(s);
    }
    if let Some(s) = args.shards {
        builder = builder.shards(s);
    }
    if let Some(s) = args.remote_shards {
        builder = builder.remote_shards(s);
    }

    if args.experiment == "check-kernel" {
        // The stage-1 kernel parity gate: bitwise blocked ≡ scalar scores
        // plus exact hamming_ops agreement on an enrolled gallery, and
        // identical RUNFP chains across unsharded / in-process sharded /
        // (with --remote-shards) cross-process execution.
        if args.subjects.is_none() {
            builder = builder.subjects(20);
        }
        let config = builder.build();
        let report = fp_study::experiments::check_kernel::run_check(&config);
        println!("{}", report.render());
        if let Some(path) = &args.json {
            let payload = serde_json::json!({"config": config, "reports": [report.clone()]});
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return if report.values["error"].is_null() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if args.experiment == "check-store" {
        // The persistent-store parity gate: open / sharded-open / (with
        // --remote-shards 1) serve-from-store with a kill+restart / churn
        // / compact, each byte-identical to fresh enrollment. The gallery
        // directory is left behind (compacted) as an inspectable artifact.
        if args.subjects.is_none() {
            builder = builder.subjects(20);
        }
        let config = builder.build();
        let dir = args.gallery_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir()
                .join("fp-check-store")
                .to_string_lossy()
                .into_owned()
        });
        let report =
            fp_study::experiments::check_store::run_check(&config, std::path::Path::new(&dir));
        println!("{}", report.render());
        if let Some(path) = &args.json {
            let payload = serde_json::json!({"config": config, "reports": [report.clone()]});
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return if report.values["error"].is_null() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if args.experiment == "check-dist-trace" {
        // The distributed-tracing gate: spawns a serve-shard topology with
        // one artificially slow shard, runs the same probes untraced and
        // traced, and asserts parity + a single connected trace tree +
        // culprit-naming slow-log exemplars. It exports its own MERGED
        // multi-process trace (main never records here), so `--trace` /
        // `--slowlog` are written in this branch rather than at exit.
        if args.subjects.is_none() {
            builder = builder.subjects(16);
        }
        if args.remote_shards.is_none() {
            builder = builder.remote_shards(2);
        }
        let config = builder.build();
        let outcome =
            fp_study::experiments::dist_trace::run_check(&config, args.delay_ms.unwrap_or(25));
        println!("{}", outcome.report.render());
        if let Some(path) = &args.trace {
            match std::fs::write(
                path,
                serde_json::to_string(&outcome.merged.to_chrome_trace()).expect("serializable"),
            ) {
                Ok(()) => eprintln!(
                    "wrote {path} ({} spans across {} process lanes; open in \
                     chrome://tracing or ui.perfetto.dev)",
                    outcome.merged.spans.len(),
                    {
                        let mut pids: Vec<u64> =
                            outcome.merged.spans.iter().map(|s| s.pid).collect();
                        pids.sort_unstable();
                        pids.dedup();
                        pids.len()
                    }
                ),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &args.slowlog {
            let entries = outcome.slowlog_jsonl.lines().count();
            match std::fs::write(path, &outcome.slowlog_jsonl) {
                Ok(()) => eprintln!("wrote {path} ({entries} slow-query exemplars)"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &args.json {
            let payload = serde_json::json!({
                "config": config,
                "reports": [outcome.report.clone()],
            });
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return if outcome.report.values["error"].is_null() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if args.experiment == "load" {
        // The concurrent-serving load harness spawns its own serve-shard
        // children and builds its own synthetic gallery; no dataset/score
        // pipeline needed.
        let config = builder.build();
        telemetry.event_with(
            Level::Info,
            "serving load harness",
            &[
                ("subjects", config.subjects.to_string()),
                ("seed", config.seed.to_string()),
            ],
        );
        // `--slowlog PATH` arms the tail-latency exemplar log (threshold:
        // the running p99) and writes whatever it caught as JSON Lines.
        let slowlog = args
            .slowlog
            .as_ref()
            .map(|_| std::sync::Arc::new(fp_serve::SlowLog::running_p99(telemetry)));
        let report =
            fp_study::experiments::ext_load::run_with_slowlog(&config, telemetry, slowlog.clone());
        println!("{}", report.render());
        if let (Some(path), Some(slowlog)) = (&args.slowlog, &slowlog) {
            let entries = slowlog.entries().len();
            match std::fs::write(path, slowlog.to_jsonl()) {
                Ok(()) => eprintln!("wrote {path} ({entries} slow-query exemplars)"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let failed = !report.values["error"].is_null();
        let snapshot = telemetry.snapshot();
        if let Some(path) = &args.json {
            let payload = serde_json::json!({
                "config": config,
                "reports": [report.clone()],
                "telemetry": snapshot,
            });
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        if let Some(path) = &args.metrics {
            let payload = serde_json::to_value(&snapshot).expect("serializable");
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        // `--out` writes the latency rungs as a BENCH snapshot so
        // bench-diff can gate them like any other perf number.
        if let Some(path) = &args.out {
            let benches: Vec<serde_json::Value> = report.values["rungs"]
                .as_array()
                .into_iter()
                .flatten()
                .map(|r| {
                    serde_json::json!({
                        "bench": format!("load/search_c{}", r["clients"]),
                        "median_ns": r["p50_ns"],
                        "p95_ns": r["p95_ns"],
                        "iters": r["answered"],
                    })
                })
                .collect();
            let payload = serde_json::json!({
                "version": 1,
                "host": std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_string()),
                "benches": benches,
            });
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if args.experiment == "ext-scaling" {
        // The scaling ladder builds its own synthetic galleries (subjects,
        // 5x, 10x); skip the full dataset/score pipeline so large ladders
        // don't pay for rendering and score matrices they never read.
        let config = builder.build();
        telemetry.event_with(
            Level::Info,
            "scaling ladder",
            &[
                (
                    "galleries",
                    format!(
                        "{}/{}/{}",
                        config.subjects,
                        config.subjects * 5,
                        config.subjects * 10
                    ),
                ),
                ("seed", config.seed.to_string()),
            ],
        );
        let report = fp_study::experiments::ext_scaling::run_with(&config, telemetry);
        println!("{}", report.render());
        let snapshot = telemetry.snapshot();
        if let Some(path) = &args.json {
            let payload = serde_json::json!({
                "config": config,
                "reports": [report],
                "telemetry": snapshot,
            });
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        if let Some(path) = &args.metrics {
            let payload = serde_json::to_value(&snapshot).expect("serializable");
            if let Err(code) = write_json(telemetry, path, &payload) {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }

    let config = builder.build();
    telemetry.event_with(
        Level::Info,
        "generating study data",
        &[
            ("subjects", config.subjects.to_string()),
            ("impostors_per_cell", config.impostors_per_cell.to_string()),
            ("seed", config.seed.to_string()),
        ],
    );
    let start = std::time::Instant::now();
    let data = StudyData::generate_with(&config, telemetry);
    telemetry.event_with(
        Level::Info,
        "score matrices ready",
        &[("elapsed", format!("{:.1?}", start.elapsed()))],
    );

    let reports = if args.experiment == "all" {
        experiments::run_all_with(&data, telemetry)
    } else {
        match experiments::run_with(&args.experiment, &data, telemetry) {
            Some(r) => vec![r],
            None => {
                telemetry.event_with(
                    Level::Error,
                    "unknown experiment",
                    &[
                        ("experiment", args.experiment.clone()),
                        (
                            "known",
                            format!("all, devices, metrics, {}", experiments::ALL_IDS.join(", ")),
                        ),
                    ],
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        println!("{}", report.render());
    }

    let snapshot = telemetry.snapshot();
    if args.experiment == "all" {
        eprintln!("{}", fp_telemetry::render_summary(&snapshot));
    }

    if let Some(path) = &args.json {
        let payload = serde_json::json!({
            "config": config,
            "reports": reports,
            "telemetry": snapshot,
        });
        if let Err(code) = write_json(telemetry, path, &payload) {
            return code;
        }
    }
    if let Some(path) = &args.metrics {
        let payload = serde_json::to_value(&snapshot).expect("serializable");
        if let Err(code) = write_json(telemetry, path, &payload) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: study <all|devices|metrics|verify|render|serve-shard|load|check-scaling|\
                 check-telemetry|check-serve|check-load|check-dist-trace|check-kernel|check-store|\
                 gallery|fingerprint|check-fingerprint|{}> \
                 [--subjects N] [--seed S] [--shards S] [--remote-shards N] [--port P] \
                 [--json PATH] [--metrics PATH] [--trace PATH] [--events PATH] [--out PATH] \
                 [--slowlog PATH] [--delay-ms N] [--gallery-dir PATH] [--deep]",
                experiments::ALL_IDS.join("|")
            );
            return ExitCode::FAILURE;
        }
    };
    // check-dist-trace records into its own per-pass registries and writes
    // the MERGED multi-process trace itself; main's telemetry must stay
    // quiet or the exit-time export below would clobber the merged trace
    // with an (empty) local one.
    let own_artifacts = args.experiment == "check-dist-trace";
    // Informational subcommands stay allocation-free unless a flight
    // recorder export was requested; experiment runs always record.
    let inert = own_artifacts
        || matches!(
            args.experiment.as_str(),
            "devices"
                | "metrics"
                | "render"
                | "check-scaling"
                | "check-telemetry"
                | "check-serve"
                | "check-load"
                | "check-kernel"
                | "check-store"
                | "gallery"
                | "check-fingerprint"
                | "fingerprint"
                | "serve-shard"
        ) && args.trace.is_none()
            && args.events.is_none();
    let telemetry = if inert {
        Telemetry::disabled()
    } else {
        Telemetry::enabled()
    };

    let code = run(&args, &telemetry);

    // Export the flight recorder even when the run failed: a trace of a
    // failing run is exactly what you want on the desk.
    let trace = (!own_artifacts && (args.trace.is_some() || args.events.is_some()))
        .then(|| telemetry.trace_snapshot());
    if let Some(trace) = &trace {
        if trace.dropped_spans > 0 || trace.dropped_events > 0 {
            telemetry.event_with(
                Level::Warn,
                "flight recorder buffer overflowed; trace is truncated",
                &[
                    ("dropped_spans", trace.dropped_spans.to_string()),
                    ("dropped_events", trace.dropped_events.to_string()),
                ],
            );
        }
        if let Some(path) = &args.trace {
            match std::fs::write(
                path,
                serde_json::to_string(&trace.to_chrome_trace()).expect("serializable"),
            ) {
                Ok(()) => eprintln!(
                    "wrote {path} ({} spans, {} events; open in chrome://tracing or ui.perfetto.dev)",
                    trace.spans.len(),
                    trace.events.len()
                ),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &args.events {
            match std::fs::write(path, trace.events_jsonl()) {
                Ok(()) => eprintln!("wrote {path} ({} events)", trace.events.len()),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    code
}
