//! RAII spans: wall-time scopes aggregated into named duration histograms
//! and recorded as nodes of the flight recorder's span tree.
//!
//! Spans nest two ways at once:
//!
//! * the **histogram path** is the dotted join of the live span names on
//!   this thread (`study.scores` inside `study`), exactly as before the
//!   flight recorder existed — aggregate timings stay stable across runs;
//! * the **trace tree** links spans by id: the parent is the innermost
//!   live span on this thread, or — when a [`crate::TraceCtx`] has been
//!   adopted via [`Telemetry::in_ctx`](crate::Telemetry::in_ctx) — the span
//!   captured on the spawning thread. Trace-only spans
//!   ([`Telemetry::trace_span`]) join the tree without contributing a
//!   histogram or a path segment, so worker-lane wrappers don't perturb
//!   the dotted names.
//!
//! The name stack is thread-local, so span creation takes no locks beyond
//! the one-time histogram registration, and a disabled handle skips even
//! the clock read.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;

use crate::hist::HistogramCore;
use crate::trace::{thread_lane, SpanRecord, LOCAL_PID};
use crate::Telemetry;

/// One live span on this thread's stack.
struct Frame {
    /// Contribution to the dotted histogram path; `None` for trace-only
    /// spans.
    path_name: Option<String>,
    /// Path barrier: spans opened above this frame ignore the names below
    /// it, as if on a fresh thread. Used by worker lanes so histogram
    /// paths don't depend on whether a stage ran inline or on spawned
    /// threads.
    barrier: bool,
    /// Trace span id.
    id: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Parent adopted from another thread via `Telemetry::in_ctx`. Used
    /// when the local stack is empty.
    static ADOPTED_PARENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The innermost live span id on this thread (falling back to the adopted
/// cross-thread parent).
pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK
        .with(|stack| stack.borrow().last().map(|frame| frame.id))
        .or_else(|| ADOPTED_PARENT.with(|cell| cell.get()))
}

pub(crate) fn swap_adopted_parent(parent: Option<u64>) -> Option<u64> {
    ADOPTED_PARENT.with(|cell| cell.replace(parent))
}

pub(crate) fn set_adopted_parent(parent: Option<u64>) {
    ADOPTED_PARENT.with(|cell| cell.set(parent));
}

impl Telemetry {
    /// Opens a span; its wall time is recorded into the duration histogram
    /// named by the dotted path of all live spans on this thread when the
    /// guard drops, and a [`SpanRecord`] node lands in the flight recorder.
    pub fn span(&self, name: &str) -> Span {
        self.span_impl(name, &[], true, false)
    }

    /// [`Telemetry::span`] with attributes attached to the trace node
    /// (device pair, experiment, subject batch, ...). Attributes don't
    /// affect the histogram path.
    pub fn span_with(&self, name: &str, attrs: &[(&str, String)]) -> Span {
        self.span_impl(name, attrs, true, false)
    }

    /// A trace-only span: joins the span tree (and parents any spans opened
    /// inside it) but records no duration histogram and contributes no
    /// dotted-path segment. Used for worker-lane wrappers where the
    /// aggregate timing already lives in a stage record.
    pub fn trace_span(&self, name: &str, attrs: &[(&str, String)]) -> Span {
        self.span_impl(name, attrs, false, false)
    }

    /// A trace-only span that is also a *path barrier*: spans opened inside
    /// it build their histogram paths as if on a fresh thread. Worker lanes
    /// use this so a stage records the same histogram keys whether it ran
    /// inline (one core) or on spawned worker threads.
    pub fn worker_span(&self, name: &str, attrs: &[(&str, String)]) -> Span {
        self.span_impl(name, attrs, false, true)
    }

    fn span_impl(
        &self,
        name: &str,
        attrs: &[(&str, String)],
        in_path: bool,
        barrier: bool,
    ) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                trace: None,
                target: None,
                _not_send: PhantomData,
            };
        };
        let id = inner.trace.next_span_id();
        let parent = current_parent();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = in_path.then(|| {
                let base = stack
                    .iter()
                    .rposition(|frame| frame.barrier)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                let mut path = String::new();
                for frame in &stack[base..] {
                    if let Some(segment) = &frame.path_name {
                        path.push_str(segment);
                        path.push('.');
                    }
                }
                path.push_str(name);
                path
            });
            stack.push(Frame {
                path_name: in_path.then(|| name.to_string()),
                barrier,
                id,
            });
            path
        });
        let target = path.and_then(|path| self.duration(&path).core().cloned());
        Span {
            target,
            trace: Some(TracePart {
                telemetry: self.clone(),
                id,
                parent,
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                start_ns: inner.trace.now_ns(),
            }),
            _not_send: PhantomData,
        }
    }
}

impl Telemetry {
    /// Opens a *detached* span: a span whose begin and end happen at
    /// different call sites — a pipelined RPC issued now and awaited later,
    /// a server job queued on one thread and dispatched on another.
    ///
    /// Unlike [`Telemetry::span`] it never joins the thread-local span
    /// stack or any histogram path, so it is `Send` and does not reparent
    /// spans opened while it is live; parent spans under it explicitly via
    /// [`crate::TraceCtx::adopted`] with its [`DetachedSpan::id`]. The
    /// parent defaults to the innermost live span on the calling thread at
    /// open time; the start defaults to now. Both can be overridden before
    /// finishing, which is how retroactive spans (queue wait measured at
    /// dispatch) are recorded. Inert when disabled.
    pub fn detached_span(&self, name: &str, attrs: &[(&str, String)]) -> DetachedSpan {
        let Some(inner) = &self.inner else {
            return DetachedSpan { part: None };
        };
        DetachedSpan {
            part: Some(TracePart {
                telemetry: self.clone(),
                id: inner.trace.next_span_id(),
                parent: current_parent(),
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                start_ns: inner.trace.now_ns(),
            }),
        }
    }
}

/// Guard returned by [`Telemetry::detached_span`]; records on drop (or
/// [`DetachedSpan::finish`]), on whatever thread that happens.
#[derive(Debug)]
pub struct DetachedSpan {
    part: Option<TracePart>,
}

impl DetachedSpan {
    /// The span's trace id (`None` when telemetry is disabled) — what a
    /// wire protocol propagates so remote spans can nest under this one.
    pub fn id(&self) -> Option<u64> {
        self.part.as_ref().map(|p| p.id)
    }

    /// Overrides the parent captured at open time.
    pub fn set_parent(&mut self, parent: Option<u64>) {
        if let Some(part) = &mut self.part {
            part.parent = parent;
        }
    }

    /// Back-dates the span to `start_ns` (nanoseconds on the handle's
    /// trace clock, see [`Telemetry::trace_now_ns`]).
    pub fn set_start_ns(&mut self, start_ns: u64) {
        if let Some(part) = &mut self.part {
            part.start_ns = start_ns;
        }
    }

    /// Attaches an attribute discovered after the span was opened.
    pub fn add_attr(&mut self, key: &str, value: String) {
        if let Some(part) = &mut self.part {
            part.attrs.push((key.to_string(), value));
        }
    }

    /// Ends the span now and records it. Equivalent to dropping, spelled
    /// out at call sites where the end is the point.
    pub fn finish(self) {}
}

impl Drop for DetachedSpan {
    fn drop(&mut self) {
        let Some(part) = self.part.take() else {
            return;
        };
        if let Some(inner) = &part.telemetry.inner {
            let dur_ns = inner.trace.now_ns().saturating_sub(part.start_ns);
            inner.trace.push_span(SpanRecord {
                id: part.id,
                parent: part.parent,
                name: part.name,
                pid: LOCAL_PID,
                thread: thread_lane(),
                start_ns: part.start_ns,
                dur_ns,
                attrs: part.attrs,
            });
        }
    }
}

/// Trace bookkeeping carried by a live [`Span`].
#[derive(Debug)]
struct TracePart {
    telemetry: Telemetry,
    id: u64,
    parent: Option<u64>,
    name: String,
    attrs: Vec<(String, String)>,
    start_ns: u64,
}

/// Guard returned by [`Telemetry::span`]; records on drop.
///
/// Deliberately `!Send`: the dotted path and tree parent come from this
/// thread's span stack, so the guard must drop on the thread that opened
/// it.
#[derive(Debug)]
pub struct Span {
    target: Option<Arc<HistogramCore>>,
    trace: Option<TracePart>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(part) = self.trace.take() else {
            return;
        };
        if let Some(inner) = &part.telemetry.inner {
            let dur_ns = inner.trace.now_ns().saturating_sub(part.start_ns);
            if let Some(target) = &self.target {
                target.record(dur_ns);
            }
            inner.trace.push_span(SpanRecord {
                id: part.id,
                parent: part.parent,
                name: part.name,
                pid: LOCAL_PID,
                thread: thread_lane(),
                start_ns: part.start_ns,
                dur_ns,
                attrs: part.attrs,
            });
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_get_dotted_paths() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            {
                let _inner = t.span("inner");
            }
        }
        let s = t.snapshot();
        assert_eq!(s.durations["outer"].count, 1);
        assert_eq!(s.durations["outer.inner"].count, 2);
        assert!(!s.durations.contains_key("inner"));
    }

    #[test]
    fn sibling_spans_share_a_path() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _span = t.span("stage");
        }
        assert_eq!(t.snapshot().durations["stage"].count, 3);
    }

    #[test]
    fn span_time_accumulates_into_sum() {
        let t = Telemetry::enabled();
        {
            let _span = t.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = t.snapshot().durations["sleepy"];
        assert!(snap.sum >= 5_000_000, "sum = {} ns", snap.sum);
    }

    #[test]
    fn disabled_spans_leave_no_trace_and_no_stack_entry() {
        let t = Telemetry::disabled();
        let enabled = Telemetry::enabled();
        {
            let _noop = t.span("ghost");
            // If the disabled span had pushed onto the stack, this span's
            // path would be "ghost.real".
            let _real = enabled.span("real");
        }
        let s = enabled.snapshot();
        assert_eq!(s.durations["real"].count, 1);
    }

    #[test]
    fn trace_only_spans_skip_the_histogram_and_the_path() {
        let t = Telemetry::enabled();
        {
            let _lane = t.trace_span("worker-lane", &[]);
            let _work = t.span("work");
        }
        let s = t.snapshot();
        // The trace-only wrapper contributes no histogram and no segment.
        assert!(!s.durations.contains_key("worker-lane"));
        assert_eq!(s.durations["work"].count, 1);
        // But it does join the tree, as the parent of `work`.
        let trace = t.trace_snapshot();
        let lane = trace
            .spans
            .iter()
            .find(|x| x.name == "worker-lane")
            .unwrap();
        let work = trace.spans.iter().find(|x| x.name == "work").unwrap();
        assert_eq!(work.parent, Some(lane.id));
    }

    #[test]
    fn worker_spans_reset_the_path_but_keep_the_tree() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            let _lane = t.worker_span("lane", &[]);
            // Inside the barrier the path restarts, as on a fresh thread.
            let _work = t.span("work");
        }
        let s = t.snapshot();
        assert_eq!(s.durations["work"].count, 1);
        assert!(!s.durations.contains_key("outer.work"));
        let trace = t.trace_snapshot();
        let outer = trace.spans.iter().find(|x| x.name == "outer").unwrap();
        let lane = trace.spans.iter().find(|x| x.name == "lane").unwrap();
        let work = trace.spans.iter().find(|x| x.name == "work").unwrap();
        assert_eq!(lane.parent, Some(outer.id));
        assert_eq!(work.parent, Some(lane.id));
    }

    #[test]
    fn detached_spans_finish_on_another_thread_and_back_date() {
        let t = Telemetry::enabled();
        let ids = {
            let _stage = t.span("stage");
            let mut rpc = t.detached_span("rpc", &[("kind", "stage1".to_string())]);
            rpc.add_attr("shard", "0".to_string());
            let rpc_id = rpc.id().unwrap();
            let handle = std::thread::spawn(move || rpc.finish());
            handle.join().unwrap();
            // A retroactive child: opened after the fact, back-dated.
            let mut wait = t.detached_span("queue_wait", &[]);
            wait.set_parent(Some(rpc_id));
            wait.set_start_ns(0);
            let wait_id = wait.id().unwrap();
            wait.finish();
            (rpc_id, wait_id)
        };
        let trace = t.trace_snapshot();
        let stage = trace.spans.iter().find(|s| s.name == "stage").unwrap();
        let rpc = trace.spans.iter().find(|s| s.name == "rpc").unwrap();
        let wait = trace.spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(rpc.id, ids.0);
        assert_eq!(rpc.parent, Some(stage.id));
        assert_eq!(
            rpc.attrs,
            vec![
                ("kind".to_string(), "stage1".to_string()),
                ("shard".to_string(), "0".to_string())
            ]
        );
        assert_eq!(wait.id, ids.1);
        assert_eq!(wait.parent, Some(rpc.id));
        assert_eq!(wait.start_ns, 0);
        assert_eq!(trace.validate_tree().unwrap(), 1);
    }

    #[test]
    fn disabled_detached_span_is_inert() {
        let t = Telemetry::disabled();
        let mut span = t.detached_span("ghost", &[]);
        assert_eq!(span.id(), None);
        span.set_start_ns(5);
        span.add_attr("k", "v".to_string());
        span.finish();
        assert!(t.trace_snapshot().spans.is_empty());
    }

    #[test]
    fn span_attrs_land_on_the_trace_node() {
        let t = Telemetry::enabled();
        {
            let _span = t.span_with(
                "scores.cell",
                &[("gallery", "0".to_string()), ("probe", "4".to_string())],
            );
        }
        let trace = t.trace_snapshot();
        assert_eq!(
            trace.spans[0].attrs,
            vec![
                ("gallery".to_string(), "0".to_string()),
                ("probe".to_string(), "4".to_string())
            ]
        );
    }
}
