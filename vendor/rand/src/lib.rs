//! Offline vendored stand-in for the `rand` crate.
//!
//! Provides the subset of `rand` 0.8 the workspace uses — the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool` — with
//! **bit-exact** sampling algorithms:
//!
//! - `Standard` floats use the "multiply 53/24 high bits" construction
//!   (`(u >> 11) as f64 * 2^-53`), booleans use the sign bit of a `u32`;
//! - `gen_range` over integers uses widening-multiply rejection sampling
//!   (`sample_single_inclusive`) exactly as `rand` 0.8.5 does;
//! - `gen_bool` uses the Bernoulli 64-bit integer threshold.
//!
//! Every seeded stream in the study harness therefore matches the real
//! crates bit for bit, which keeps the tuned statistical thresholds valid.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// Extension trait with convenient sampling methods, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // Bernoulli's integer threshold: p * 2^64, with p == 1 always true.
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.gen::<u64>() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience re-exports.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u8) -> ChaCha8Rng {
        ChaCha8Rng::from_seed([seed; 32])
    }

    #[test]
    fn f64_uses_high_53_bits() {
        let mut a = rng(1);
        let mut b = rng(1);
        for _ in 0..100 {
            let u = b.next_u64();
            let expected = (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            assert_eq!(a.gen::<f64>(), expected);
        }
    }

    #[test]
    fn f32_uses_high_24_bits() {
        let mut a = rng(2);
        let mut b = rng(2);
        for _ in 0..100 {
            let u = b.next_u32();
            let expected = (u >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            assert_eq!(a.gen::<f32>(), expected);
        }
    }

    #[test]
    fn bool_uses_sign_bit_of_u32() {
        let mut a = rng(3);
        let mut b = rng(3);
        for _ in 0..100 {
            assert_eq!(a.gen::<bool>(), (b.next_u32() as i32) < 0);
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = rng(4);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_usize_covers_and_stays_in_bounds() {
        let mut r = rng(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.gen_range(0..7usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_matches_widening_multiply_rejection() {
        // Replay gen_range(0..n) by hand with the documented algorithm.
        let n: usize = 23;
        let mut a = rng(6);
        let mut b = rng(6);
        for _ in 0..200 {
            let got = a.gen_range(0..n);
            let range = n as u64;
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            let expected = loop {
                let v = b.next_u64();
                let m = (v as u128) * (range as u128);
                let (hi, lo) = ((m >> 64) as u64, m as u64);
                if lo <= zone {
                    break hi as usize;
                }
            };
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn gen_range_float_is_lo_plus_unit_times_span() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..100 {
            let got = a.gen_range(-2.0..3.0f64);
            let unit: f64 = b.gen();
            assert_eq!(got, unit * 5.0 + -2.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = rng(8);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_uses_u64_threshold() {
        let mut a = rng(9);
        let mut b = rng(9);
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        for _ in 0..100 {
            let got = a.gen_bool(0.3);
            assert_eq!(got, b.next_u64() < (0.3 * SCALE) as u64);
        }
    }
}
