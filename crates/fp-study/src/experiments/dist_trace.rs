//! **Gate: cross-process distributed tracing** — `study check-dist-trace`.
//!
//! Spawns a real `serve-shard` topology (one shard with an injected
//! stage delay), runs the same probe set twice — once untraced, once with
//! tracing and a tail-latency slow log armed — and asserts the whole
//! distributed-tracing contract at once:
//!
//! 1. **Behavioral invisibility** — the traced run's candidate lists are
//!    byte-identical to the untraced run *and* to a sequential in-process
//!    baseline, and all three RUNFP chains are equal. Tracing must never
//!    perturb a result bit.
//! 2. **One connected tree** — after [`Coordinator::collect_traces`]
//!    drains every shard, the merged snapshot passes `validate_tree` with
//!    exactly one root: every remote `server.request` span is re-parented
//!    under the coordinator `serve.rpc` span that issued it, and every
//!    `server.queue_wait` span sits under its request.
//! 3. **One lane per process** — the merged trace carries one Chrome
//!    `pid` lane per shard process plus the coordinator's own.
//! 4. **The exemplar names the culprit** — every slow-log exemplar's
//!    `slowest_shard` is the delayed shard, and its server-reported work
//!    time covers the injected delay (the `ServerTiming` echo made it
//!    across the wire, not just a coordinator-side round-trip guess).
//!
//! [`Coordinator::collect_traces`]: fp_serve::Coordinator::collect_traces

use std::sync::Arc;
use std::time::Duration;

use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, SearchResult};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::{Coordinator, RetryPolicy, SlowLog, SlowLogEntry};
use fp_telemetry::{Telemetry, TraceSnapshot, LOCAL_PID};
use serde_json::json;

use crate::config::StudyConfig;
use crate::experiments::ext_scaling::{recapture, synthetic_template, CROSS_DEVICE, SAME_DEVICE};
use crate::report::Report;

/// Probes per pass: small — the delayed shard pays `2 * delay_ms` per
/// search, and the gate runs the set twice.
const MAX_PROBES: usize = 12;

/// Everything the gate hands back to the CLI: the report (with pass/fail
/// in `values.error`), plus the artifacts worth writing to disk.
pub struct DistTraceOutcome {
    /// The gate report; `values["error"]` is null iff every check held.
    pub report: Report,
    /// The merged multi-process trace of the traced pass (empty on an
    /// early failure) — `--trace PATH` writes it as Chrome trace JSON.
    pub merged: TraceSnapshot,
    /// The traced pass's slow-log exemplars as JSONL (`--slowlog PATH`).
    pub slowlog_jsonl: String,
}

/// What one pass over the topology measured.
struct Pass {
    results: Vec<SearchResult>,
    runfp: String,
    /// Traced pass only: the merged snapshot and the retained exemplars.
    merged: Option<TraceSnapshot>,
    spans_collected: usize,
    exemplars: Vec<SlowLogEntry>,
    slowlog_jsonl: String,
}

/// Runs the full gate. `delay_ms` is injected into the *last* shard's
/// stage handlers via `serve-shard --delay-ms`.
pub fn run_check(config: &StudyConfig, delay_ms: u64) -> DistTraceOutcome {
    let shards = config.remote_shards.max(2);
    let delayed = shards - 1;
    let delay_ms = delay_ms.max(1);

    let (checks, merged, slowlog_jsonl, error) = match run_passes(config, shards, delayed, delay_ms)
    {
        Ok((checks, merged, jsonl)) => {
            let failed = checks.iter().any(|(_, ok, _)| !*ok);
            let error = failed.then(|| {
                checks
                    .iter()
                    .filter(|(_, ok, _)| !*ok)
                    .map(|(name, _, _)| name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            });
            (checks, merged, jsonl, error)
        }
        Err(e) => (Vec::new(), TraceSnapshot::default(), String::new(), Some(e)),
    };

    let mut body = format!(
        "distributed-tracing gate: {} subjects over {shards} serve-shard \
         process(es), shard {delayed} delayed by {delay_ms} ms\n\n",
        config.subjects,
    );
    for (name, ok, detail) in &checks {
        body.push_str(&format!(
            "  [{}] {name}: {detail}\n",
            if *ok { "ok" } else { "FAIL" }
        ));
    }
    if let Some(e) = &error {
        body.push_str(&format!("\ncheck-dist-trace FAILED: {e}\n"));
    } else {
        body.push_str("\nall distributed-tracing checks hold\n");
    }

    let values = json!({
        "subjects": config.subjects,
        "seed": config.seed,
        "shards": shards,
        "delayed_shard": delayed,
        "delay_ms": delay_ms,
        "error": error,
        "checks": checks.iter().map(|(name, ok, detail)| json!({
            "check": name,
            "ok": ok,
            "detail": detail,
        })).collect::<Vec<_>>(),
    });

    DistTraceOutcome {
        report: Report::new(
            "check-dist-trace",
            "cross-process distributed tracing gate",
            body,
            values,
        ),
        merged,
        slowlog_jsonl,
    }
}

/// Check rows: (name, held, human detail).
type Checks = Vec<(String, bool, String)>;

fn run_passes(
    config: &StudyConfig,
    shards: usize,
    delayed: usize,
    delay_ms: u64,
) -> Result<(Checks, TraceSnapshot, String), String> {
    let seeds = SeedTree::new(config.seed).child(&[0xD7]);
    let gallery = config.subjects;
    let pool: Vec<Template> = (0..gallery)
        .map(|i| synthetic_template(&seeds, i as u64, 22 + i % 14))
        .collect();
    let probes: Vec<Template> = (0..gallery.min(MAX_PROBES))
        .map(|p| {
            let subject = p * (gallery / gallery.min(MAX_PROBES));
            let profile = if p.is_multiple_of(2) {
                SAME_DEVICE
            } else {
                CROSS_DEVICE
            };
            recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile)
        })
        .collect();

    // Sequential in-process baseline: the untraced and traced passes must
    // both be byte-identical to it (and hence to each other).
    let mut baseline_index =
        CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::scaled(gallery))
            .with_run_seed(config.seed);
    baseline_index.enroll_all(&pool);
    let baseline: Vec<SearchResult> = probes.iter().map(|p| baseline_index.search(p)).collect();
    let runfp_baseline = baseline_index.run_fingerprint().hex();

    let untraced = run_pass(config, &pool, &probes, shards, delayed, delay_ms, false)?;
    let traced = run_pass(config, &pool, &probes, shards, delayed, delay_ms, true)?;

    let mut checks: Checks = Vec::new();
    let mut check =
        |name: &str, ok: bool, detail: String| checks.push((name.to_string(), ok, detail));

    // 1. Behavioral invisibility.
    let parity = |pass: &Pass| {
        pass.results
            .iter()
            .zip(&baseline)
            .filter(|(got, want)| {
                got.candidates() == want.candidates() && got.gallery_len() == want.gallery_len()
            })
            .count()
    };
    let (untraced_parity, traced_parity) = (parity(&untraced), parity(&traced));
    check(
        "candidate parity",
        untraced_parity == probes.len() && traced_parity == probes.len(),
        format!(
            "untraced {untraced_parity}/{} and traced {traced_parity}/{} probes \
             byte-identical to the in-process baseline",
            probes.len(),
            probes.len()
        ),
    );
    check(
        "runfp parity",
        untraced.runfp == runfp_baseline && traced.runfp == runfp_baseline,
        format!(
            "baseline {runfp_baseline}, untraced {}, traced {}",
            untraced.runfp, traced.runfp
        ),
    );

    // 2. One connected tree.
    let merged = traced.merged.clone().unwrap_or_default();
    let tree = merged.validate_tree();
    check(
        "connected tree",
        matches!(tree, Ok(1)),
        match &tree {
            Ok(roots) => format!(
                "{} spans ({} drained from shards), {roots} root(s)",
                merged.spans.len(),
                traced.spans_collected
            ),
            Err(e) => format!("validate_tree failed: {e}"),
        },
    );
    let name_of: std::collections::BTreeMap<u64, &str> = merged
        .spans
        .iter()
        .map(|s| (s.id, s.name.as_str()))
        .collect();
    let requests: Vec<_> = merged
        .spans
        .iter()
        .filter(|s| s.name == "server.request")
        .collect();
    let nested = requests
        .iter()
        .filter(|s| {
            s.parent
                .is_some_and(|p| name_of.get(&p).copied() == Some("serve.rpc"))
        })
        .count();
    check(
        "remote spans nest under rpc spans",
        !requests.is_empty() && nested == requests.len(),
        format!(
            "{nested}/{} server.request spans parented under serve.rpc",
            requests.len()
        ),
    );
    let queue_waits = merged
        .spans
        .iter()
        .filter(|s| s.name == "server.queue_wait")
        .count();
    check(
        "queue-wait spans present",
        queue_waits > 0,
        format!("{queue_waits} server.queue_wait spans"),
    );

    // 3. One Chrome lane per process.
    let mut pids: Vec<u64> = merged.spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    check(
        "one lane per process",
        pids.len() == shards + 1 && pids.contains(&LOCAL_PID),
        format!(
            "{} process lanes for coordinator + {shards} shard(s)",
            pids.len()
        ),
    );

    // 4. The exemplar names the culprit.
    let naming = traced
        .exemplars
        .iter()
        .filter(|e| e.slowest_shard() == Some(delayed))
        .count();
    check(
        "slow-log exemplars name the delayed shard",
        !traced.exemplars.is_empty() && naming == traced.exemplars.len(),
        format!(
            "{naming}/{} exemplars name shard {delayed}",
            traced.exemplars.len()
        ),
    );
    let delay_ns = delay_ms.saturating_mul(1_000_000);
    let covered = traced
        .exemplars
        .iter()
        .filter_map(|e| e.shards.iter().find(|b| b.shard == delayed))
        .filter(|b| b.work_ns >= delay_ns)
        .count();
    check(
        "server timing covers the injected delay",
        covered == traced.exemplars.len() && !traced.exemplars.is_empty(),
        format!(
            "{covered}/{} exemplars report >= {delay_ms} ms shard-side work for shard {delayed}",
            traced.exemplars.len()
        ),
    );

    Ok((checks, merged, traced.slowlog_jsonl))
}

/// One full pass over a fresh topology: spawn, enroll, search every probe,
/// (optionally) drain + merge traces, tear down.
fn run_pass(
    config: &StudyConfig,
    pool: &[Template],
    probes: &[Template],
    shards: usize,
    delayed: usize,
    delay_ms: u64,
    traced: bool,
) -> Result<Pass, String> {
    let exe = match std::env::var_os("FP_SERVE_SHARD_EXE") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let delay = delay_ms.to_string();
    let mut children = Vec::with_capacity(shards);
    for k in 0..shards {
        // The injected delay rides in *both* passes so their latencies —
        // and hence their results and fingerprints — are measured under
        // identical conditions; only the tracing differs.
        let args: Vec<&str> = if k == delayed {
            vec!["serve-shard", "--delay-ms", &delay]
        } else {
            vec!["serve-shard"]
        };
        children
            .push(spawn_shard(&exe, &args).map_err(|e| format!("spawn {exe:?} {args:?}: {e}"))?);
    }
    let addrs: Vec<std::net::SocketAddr> = children.iter().map(|c| c.addr).collect();

    let telemetry = if traced {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    // Arm the slow log well under the injected delay: every search waits
    // on the delayed shard, so every search must become an exemplar.
    let slowlog = Arc::new(SlowLog::with_threshold_ns(
        &telemetry,
        delay_ms.saturating_mul(1_000_000) / 2,
    ));
    let mut remote = Coordinator::connect(
        &addrs,
        IndexConfig::scaled(pool.len()),
        Duration::from_secs(60),
        RetryPolicy::default(),
    )
    .map_err(|e| e.to_string())?
    .with_telemetry(&telemetry)
    .with_run_seed(config.seed);
    if traced {
        remote = remote.with_slowlog(Arc::clone(&slowlog));
    }

    let mut results = Vec::with_capacity(probes.len());
    let mut spans_collected = 0;
    {
        // The pass root span: every serve.rpc (enroll, stage-1, re-rank,
        // trace drain) nests under it, so the merged snapshot forms a
        // single connected tree.
        let _root = telemetry.span_with("check.dist_trace", &[("shards", shards.to_string())]);
        remote.enroll_all(pool).map_err(|e| e.to_string())?;
        for probe in probes {
            results.push(remote.search(probe).map_err(|e| e.to_string())?);
        }
        if traced {
            spans_collected = remote.collect_traces().map_err(|e| e.to_string())?;
        }
    }
    let merged = traced.then(|| remote.merged_trace());
    let runfp = remote.run_fingerprint().hex();

    let _ = remote.shutdown_all();
    for child in &mut children {
        child.wait_exit(Duration::from_secs(5));
    }

    Ok(Pass {
        results,
        runfp,
        merged,
        spans_collected,
        exemplars: slowlog.entries(),
        slowlog_jsonl: slowlog.to_jsonl(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate end to end at a tiny scale. Like the load harness test,
    /// the serve-shard spawn needs the study binary (FP_SERVE_SHARD_EXE
    /// when set by CI); without it the outcome carries the error and must
    /// not panic.
    #[test]
    fn tiny_gate_reports_error_or_all_checks() {
        let config = StudyConfig::builder().subjects(8).seed(13).build();
        let outcome = run_check(&config, 5);
        assert_eq!(outcome.report.id, "check-dist-trace");
        let values = &outcome.report.values;
        if values["error"].is_null() {
            assert!(values["checks"]
                .as_array()
                .unwrap()
                .iter()
                .all(|c| c["ok"] == true));
            assert!(!outcome.merged.spans.is_empty());
            assert!(!outcome.slowlog_jsonl.is_empty());
        } else {
            assert!(outcome.merged.spans.is_empty());
        }
    }
}
