//! Quickstart: enroll a finger on one sensor, verify it on another, and see
//! the interoperability penalty.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fingerprint_interop::prelude::*;
use fp_sensor::CaptureProtocol;
use fp_synth::population::{Population, PopulationConfig};

fn main() {
    // One synthetic participant with a deterministic identity.
    let population = Population::generate(&PopulationConfig::new(7, 1));
    let subject = &population.subjects()[0];
    println!(
        "subject {}: {} / {}, pattern class of right index: {}",
        subject.id(),
        subject.age_group().label(),
        subject.ethnicity().label(),
        subject.master_print(Finger::RIGHT_INDEX).class(),
    );

    // Capture the right index finger on every device, two sessions each.
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();
    let calibration = fp_match::ScoreCalibration::default();

    let enroll_device = DeviceId(0); // Cross Match Guardian R2
    let gallery = protocol.capture(subject, Finger::RIGHT_INDEX, enroll_device, SessionId(0));
    println!(
        "\nenrolled on {} ({} minutiae, NFIQ {})",
        fp_sensor::Device::by_id(enroll_device).model,
        gallery.template().len(),
        QualityAssessor::default().assess(&gallery).value(),
    );

    println!(
        "\nverification scores against the {} gallery:",
        enroll_device
    );
    for device in DeviceId::ALL {
        let probe = protocol.capture(subject, Finger::RIGHT_INDEX, device, SessionId(1));
        let score = calibration.apply(matcher.compare(gallery.template(), probe.template()));
        let marker = if device == enroll_device {
            "  <- same device"
        } else {
            ""
        };
        println!(
            "  probe {:<4} {:<42} score {:>6.1}{marker}",
            device.to_string(),
            fp_sensor::Device::by_id(device).model,
            score.value(),
        );
    }

    // An impostor for contrast.
    let impostors = Population::generate(&PopulationConfig::new(8, 1));
    let impostor_probe = protocol.capture(
        &impostors.subjects()[0],
        Finger::RIGHT_INDEX,
        enroll_device,
        SessionId(1),
    );
    let impostor_score =
        calibration.apply(matcher.compare(gallery.template(), impostor_probe.template()));
    println!(
        "\nimpostor score on the same device: {:.1} (the paper's matcher never \
         exceeded 7 for impostors)",
        impostor_score.value()
    );
}
