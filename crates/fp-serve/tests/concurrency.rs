//! Concurrency and fault contracts of the serving stack, over real
//! loopback sockets:
//!
//! * **Soak** — N client threads driving one coordinator produce results
//!   and RUNFP chains equal to the same probes run sequentially, including
//!   when a shard is made deterministically slow (so completions reorder).
//! * **Overload** — a saturated worker pool sheds with typed `OVERLOADED`
//!   frames, never silently, and the admission counters account for every
//!   request exactly: offered = accepted + overloaded.
//! * **Duplicate ids** — a request id already in flight on a connection is
//!   rejected with a typed error; the connection survives.
//! * **Churn** — short-lived connections do not accumulate dead reader
//!   threads in the accept loop.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::IndexConfig;
use fp_match::PairTableMatcher;
use fp_serve::wire::{code, read_frame_with, write_frame_with, Frame};
use fp_serve::{Coordinator, MuxConn, RetryPolicy, ShardServer};
use fp_telemetry::Telemetry;
use rand::Rng;

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5D]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn second_capture(template: &Template, seed: u64) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5E]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() <= 0.08 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(fp_core::dist::normal(&mut rng, 0.0, 0.15)),
        Vector::new(
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
        .transformed(&motion)
}

fn gallery(seed: u64, n: usize) -> Vec<Template> {
    (0..n)
        .map(|i| synthetic_template(seed * 1_000 + i as u64, 16 + (i * 7) % 16))
        .collect()
}

/// Byte-level equality of two search results: same candidates in the same
/// order with bit-identical scores, same gallery size.
fn assert_same_result(got: &fp_index::SearchResult, want: &fp_index::SearchResult, probe: usize) {
    assert_eq!(got.gallery_len(), want.gallery_len(), "probe {probe}");
    assert_eq!(
        got.candidates().len(),
        want.candidates().len(),
        "probe {probe}: shortlist lengths differ"
    );
    for (rank, (g, w)) in got.candidates().iter().zip(want.candidates()).enumerate() {
        assert_eq!(g.id, w.id, "probe {probe} rank {rank}: id differs");
        assert_eq!(
            g.score.value().to_bits(),
            w.score.value().to_bits(),
            "probe {probe} rank {rank}: score bits differ"
        );
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 7,
    }
}

/// N threads sharing one coordinator must produce exactly the results a
/// sequential run produces — per-probe candidate lists byte-identical, and
/// the commutative RUNFP chain equal — even when one shard answers slowly
/// (forcing completions to rejoin out of order).
#[test]
fn concurrent_searches_equal_sequential_including_slow_shard() {
    const THREADS: usize = 4;
    const SHARDS: usize = 2;
    let subjects = gallery(31, 24);
    let probes: Vec<Template> = subjects
        .iter()
        .take(12)
        .enumerate()
        .map(|(i, t)| second_capture(t, 9_000 + i as u64))
        .collect();

    // Two independent topologies over the same gallery: one driven
    // concurrently (with shard 0 deterministically slowed), one driven
    // sequentially as the ground truth.
    let mut addrs: Vec<Vec<SocketAddr>> = Vec::new();
    let mut handles = Vec::new();
    let mut delays = Vec::new();
    for topo in 0..2 {
        let mut topo_addrs = Vec::new();
        for shard in 0..SHARDS {
            let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
            topo_addrs.push(server.local_addr().unwrap());
            if topo == 0 && shard == 0 {
                delays.push(server.delay_stage());
            }
            handles.push(server.spawn());
        }
        addrs.push(topo_addrs);
    }

    let config = IndexConfig::default();
    let deadline = Duration::from_secs(10);
    let mut concurrent = Coordinator::connect(&addrs[0], config, deadline, fast_retry()).unwrap();
    let mut sequential = Coordinator::connect(&addrs[1], config, deadline, fast_retry()).unwrap();
    concurrent.enroll_all(&subjects).unwrap();
    sequential.enroll_all(&subjects).unwrap();

    // Slow shard 0 of the concurrent topology *after* enrollment, so only
    // the searches under test feel it.
    delays[0].store(20, Ordering::Relaxed);

    let sequential_results: Vec<_> = probes
        .iter()
        .map(|p| sequential.search(p).unwrap())
        .collect();

    let mut concurrent_results: Vec<Option<fp_index::SearchResult>> = vec![None; probes.len()];
    let chunk = probes.len() / THREADS;
    std::thread::scope(|scope| {
        for (t, slot_chunk) in concurrent_results.chunks_mut(chunk).enumerate() {
            let coordinator = &concurrent;
            let probes = &probes;
            scope.spawn(move || {
                for (j, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = t * chunk + j;
                    *slot = Some(coordinator.search(&probes[i]).unwrap());
                }
            });
        }
    });

    for (i, (got, want)) in concurrent_results
        .iter()
        .zip(&sequential_results)
        .enumerate()
    {
        assert_same_result(got.as_ref().unwrap(), want, i);
    }
    // The commutative run chain lands on the same value no matter the
    // interleaving — and matches the sequential baseline exactly.
    assert_eq!(
        concurrent.run_fingerprint().value,
        sequential.run_fingerprint().value
    );
    assert_eq!(concurrent.run_fingerprint().searches, probes.len() as u64);
    // Both topologies' shards still agree with what was decoded.
    concurrent.verify_fingerprints().unwrap();
    sequential.verify_fingerprints().unwrap();

    concurrent.shutdown_all().unwrap();
    sequential.shutdown_all().unwrap();
    for handle in handles {
        handle.join();
    }
}

/// Driving a 1-worker, watermark-1 pool far past capacity: every offered
/// request is answered — with real work or a typed `OVERLOADED` frame —
/// within the deadline, and the admission counters balance exactly.
#[test]
fn overload_sheds_typed_frames_with_exact_accounting() {
    const BURST: usize = 12;
    let telemetry = Telemetry::enabled();
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0")
        .unwrap()
        .with_telemetry(&telemetry)
        .with_pool(1, 1);
    let addr = server.local_addr().unwrap();
    let delay = server.delay_stage();
    let handle = server.spawn();
    // Each accepted stage-1 pins the single worker for 50ms, so a fast
    // burst must overflow the watermark-1 queue.
    delay.store(50, Ordering::Relaxed);

    let conn = MuxConn::new(addr, Duration::from_secs(10));
    let probe = synthetic_template(77, 12);
    let offered_deadline = Instant::now() + Duration::from_secs(10);
    let tickets: Vec<_> = (0..BURST)
        .map(|_| {
            conn.begin(&Frame::StageOne {
                trace: None,
                probe: probe.clone(),
            })
            .expect("begin")
            .0
        })
        .collect();

    let mut served = 0u64;
    let mut shed = 0u64;
    for ticket in tickets {
        let (response, _) = conn.finish(ticket).expect("every request is answered");
        assert!(
            Instant::now() < offered_deadline,
            "responses must arrive within the deadline"
        );
        match response {
            Frame::StageOneOk { .. } => served += 1,
            Frame::Error { code: c, detail } => {
                assert_eq!(c, code::OVERLOADED, "unexpected error: {detail}");
                shed += 1;
            }
            other => panic!("unexpected frame '{}'", other.kind()),
        }
    }
    // Nothing was silently dropped: every request in the burst came back.
    assert_eq!(served + shed, BURST as u64);
    assert!(
        shed > 0,
        "burst of {BURST} must overflow a watermark-1 queue"
    );
    assert!(served > 0, "the worker must have served something");

    // The admission ledger balances exactly at quiescence.
    let snapshot = telemetry.snapshot();
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("serve.offered"), BURST as u64);
    assert_eq!(counter("serve.accepted"), served);
    assert_eq!(counter("serve.overloaded"), shed);
    assert_eq!(
        counter("serve.offered"),
        counter("serve.accepted") + counter("serve.overloaded"),
        "offered must equal accepted + overloaded"
    );

    drop(conn);
    handle.stop();
    handle.join();
}

/// A second request under an id still in flight on the same connection is
/// answered with a typed `BAD_REQUEST` — not executed twice, not
/// mis-delivered — and the connection keeps working.
#[test]
fn duplicate_in_flight_request_id_is_rejected_typed() {
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let delay = server.delay_stage();
    let handle = server.spawn();
    // Pin the original request in a worker long enough for the duplicate
    // to provably arrive while it is still in flight.
    delay.store(100, Ordering::Relaxed);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let probe = synthetic_template(78, 10);
    let request = Frame::StageOne { probe, trace: None };
    write_frame_with(&mut stream, 5, &request).unwrap();
    write_frame_with(&mut stream, 5, &request).unwrap();
    stream.flush().unwrap();

    let (id_a, first, _) = read_frame_with(&mut stream).unwrap();
    let (id_b, second, _) = read_frame_with(&mut stream).unwrap();
    assert_eq!((id_a, id_b), (5, 5));
    let (error, ok) = match (&first, &second) {
        (Frame::Error { .. }, _) => (&first, &second),
        _ => (&second, &first),
    };
    match error {
        Frame::Error { code: c, detail } => {
            assert_eq!(*c, code::BAD_REQUEST);
            assert!(detail.contains("in flight"), "detail: {detail}");
        }
        other => panic!("expected a typed error, got '{}'", other.kind()),
    }
    assert!(
        matches!(ok, Frame::StageOneOk { .. }),
        "original request must still be served, got '{}'",
        ok.kind()
    );

    // The connection survived: a fresh id round-trips.
    delay.store(0, Ordering::Relaxed);
    write_frame_with(&mut stream, 6, &Frame::Health).unwrap();
    let (id, response, _) = read_frame_with(&mut stream).unwrap();
    assert_eq!(id, 6);
    assert!(matches!(response, Frame::HealthOk { .. }));

    drop(stream);
    handle.stop();
    handle.join();
}

/// A churn of short-lived connections must not leave dead reader threads
/// behind: the accept loop reaps finished handles, so the tracked count
/// returns to zero once the clients are gone.
#[test]
fn connection_churn_does_not_accumulate_reader_threads() {
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let tracked = server.tracked_connections();
    let handle = server.spawn();

    for i in 0..30u32 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame_with(&mut stream, i + 1, &Frame::Health).unwrap();
        let (id, response, _) = read_frame_with(&mut stream).unwrap();
        assert_eq!(id, i + 1);
        assert!(matches!(response, Frame::HealthOk { .. }));
        // Dropping the stream ends the connection's reader thread.
    }

    // The accept loop reaps on every poll tick; give it a few.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let live = tracked.load(Ordering::Relaxed);
        if live == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{live} connection threads still tracked after churn"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.stop();
    handle.join();
}
