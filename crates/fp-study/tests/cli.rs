//! Smoke tests of the `study` binary: argument handling, report output,
//! JSON export, and the `verify` subcommand.

use std::process::Command;

fn study() -> Command {
    Command::new(env!("CARGO_BIN_EXE_study"))
}

#[test]
fn devices_prints_table1() {
    let out = study().arg("devices").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Cross Match Guardian R2"));
    assert!(text.contains("40.6x38.1"), "Seek II window missing:\n{text}");
    assert!(text.contains("ink ten-print card"));
}

#[test]
fn single_experiment_runs_at_tiny_scale() {
    let out = study()
        .args(["table3", "--subjects", "6", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DMG"));
    assert!(text.contains("24")); // 6 subjects x 4 devices
}

#[test]
fn json_export_is_valid_and_complete() {
    let dir = std::env::temp_dir().join(format!("fp-study-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("out.json");
    let out = study()
        .args([
            "fig1",
            "--subjects",
            "8",
            "--json",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let raw = std::fs::read_to_string(&path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    assert_eq!(parsed["config"]["subjects"], 8);
    assert_eq!(parsed["reports"][0]["id"], "fig1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_fails_with_hint() {
    let out = study().arg("table99").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"));
    assert!(err.contains("table5"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = study().args(["all", "--bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn verify_subcommand_reports_findings() {
    // Tiny cohorts are noisy, so only require that the subcommand runs and
    // emits the findings report — pass/fail is checked at scale elsewhere.
    let out = study()
        .args(["verify", "--subjects", "10", "--seed", "1"])
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("same-device-genuine-higher"), "missing findings:\n{text}");
    assert!(text.contains("kendall-structure"));
}
