//! The Bozorth3-family pair-table matcher.
//!
//! ## Algorithm
//!
//! 1. **Pair tables** (per template, rotation/translation invariant): for
//!    every minutiae pair `(i, j)` with inter-point distance in
//!    `[min_pair_distance, max_pair_distance]`, record the distance `d` and
//!    the two relative angles `beta1`/`beta2` between each minutia direction
//!    and the connecting line. The table is sorted by distance.
//! 2. **Compatibility association**: a gallery pair and a probe pair are
//!    compatible when their distances agree within a (distance-dependent)
//!    tolerance and both relative angles agree within an angular tolerance.
//!    Each compatible pair supports two minutia correspondences and implies
//!    a global rotation estimate (the direction difference of corresponding
//!    minutiae).
//! 3. **Rotation clustering**: association votes are histogrammed by implied
//!    rotation; only associations within a window around the modal rotation
//!    survive. This is what crushes impostor scores — random geometry
//!    produces compatible pairs, but their implied rotations do not agree.
//! 4. **Greedy correspondence extraction**: correspondences are ranked by
//!    support (number of surviving associations that imply them) and
//!    accepted greedily under a one-to-one constraint.
//!
//! The raw score blends the number of matched minutiae with their support
//! depth. [`crate::ScoreCalibration`] then maps raw scores onto the paper's
//! commercial scale.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fp_core::geometry::Direction;
use fp_core::minutia::MinutiaKind;
use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};

use crate::PreparableMatcher;

/// Tuning parameters for [`PairTableMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairTableConfig {
    /// Ignore minutiae pairs closer than this (mm); very short pairs carry
    /// almost no relative-angle information.
    pub min_pair_distance: f64,
    /// Ignore minutiae pairs farther apart than this (mm); long pairs are
    /// the first casualties of nonlinear cross-device distortion and cost
    /// quadratic table space.
    pub max_pair_distance: f64,
    /// Absolute distance tolerance (mm) for pair compatibility.
    pub distance_tolerance: f64,
    /// Additional distance tolerance per mm of pair length
    /// (dimensionless); absorbs smooth relative stretch.
    pub relative_distance_tolerance: f64,
    /// Tolerance (radians) on each of the two relative angles.
    pub angle_tolerance: f64,
    /// Half-width (radians) of the rotation-consistency window around the
    /// modal rotation.
    pub rotation_window: f64,
    /// Number of rotation histogram bins over the full circle.
    pub rotation_bins: usize,
    /// Support depth at which a correspondence earns its full weight.
    pub full_support: u32,
    /// Minimum number of surviving pair associations a correspondence needs
    /// before it may be accepted; shallow accidental matches are discarded.
    pub min_support: u32,
    /// Whether pair compatibility additionally requires the minutia kinds
    /// (ending vs bifurcation) of both endpoints to agree. Cuts accidental
    /// impostor associations roughly fourfold at a modest genuine cost
    /// (extraction flips kinds on a few percent of minutiae).
    pub require_kind_match: bool,
    /// Template size (minutiae) above which the score is scaled down:
    /// large templates accumulate correspondences in proportion to their
    /// size, which would otherwise inflate both genuine and impostor scores
    /// of minutiae-rich sources such as rolled ink prints.
    pub size_cap: usize,
}

impl Default for PairTableConfig {
    fn default() -> Self {
        PairTableConfig {
            min_pair_distance: 1.5,
            max_pair_distance: 12.0,
            distance_tolerance: 0.32,
            relative_distance_tolerance: 0.010,
            angle_tolerance: 0.20,
            rotation_window: 0.17,
            rotation_bins: 48,
            full_support: 8,
            min_support: 4,
            require_kind_match: true,
            size_cap: 34,
        }
    }
}

/// One entry of a template's pair table.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairEntry {
    /// Inter-minutia distance (mm).
    d: f64,
    /// Angle between minutia `i`'s direction and the `i -> j` line.
    beta1: f64,
    /// Angle between minutia `j`'s direction and the `i -> j` line.
    beta2: f64,
    i: u16,
    j: u16,
}

/// A template pre-processed into its sorted pair table.
#[derive(Debug, Clone)]
pub struct PreparedPairTable {
    entries: Vec<PairEntry>,
    directions: Vec<Direction>,
    kinds: Vec<MinutiaKind>,
    minutia_count: usize,
}

/// The rotation/translation-invariant features of one pair-table entry,
/// exposed for geometric-hash indexing (`fp-index` quantizes these into
/// bucket keys). Same quantities the matcher itself associates on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairFeature {
    /// Inter-minutia distance (mm).
    pub d: f64,
    /// Angle between the first minutia's direction and the connecting line.
    pub beta1: f64,
    /// Angle between the second minutia's direction and the connecting line.
    pub beta2: f64,
}

impl PreparedPairTable {
    /// Number of pair-table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (fewer than two in-range minutiae).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of minutiae in the originating template.
    pub fn minutia_count(&self) -> usize {
        self.minutia_count
    }

    /// The invariant features of every pair-table entry, in distance order.
    pub fn pair_features(&self) -> impl Iterator<Item = PairFeature> + '_ {
        self.entries.iter().map(|e| PairFeature {
            d: e.d,
            beta1: e.beta1,
            beta2: e.beta2,
        })
    }

    /// The raw fields of every pair-table entry in stored (distance)
    /// order — `(d, beta1, beta2, i, j)` — for persistence. Round-trips
    /// bit-exactly through [`from_raw_parts`](Self::from_raw_parts).
    pub fn raw_entries(&self) -> impl Iterator<Item = (f64, f64, f64, u16, u16)> + '_ {
        self.entries
            .iter()
            .map(|e| (e.d, e.beta1, e.beta2, e.i, e.j))
    }

    /// The canonical radians of every minutia direction, in minutia order
    /// (`directions.len() == minutia_count`).
    pub fn raw_directions(&self) -> impl Iterator<Item = f64> + '_ {
        self.directions.iter().map(|d| d.radians())
    }

    /// Every minutia kind, in minutia order.
    pub fn raw_kinds(&self) -> impl Iterator<Item = MinutiaKind> + '_ {
        self.kinds.iter().copied()
    }

    /// Reassembles a prepared table from its raw parts (the inverse of the
    /// `raw_*` accessors), validating every structural invariant
    /// `score_tables` relies on before constructing anything:
    ///
    /// * `directions` and `kinds` must each hold exactly `minutia_count`
    ///   values (scoring indexes both arrays by minutia id);
    /// * every entry's `i` and `j` must be `< minutia_count` (they index
    ///   `kinds`/`directions` and the one-to-one bitmaps unchecked);
    /// * every direction must already be canonical, in `(-pi, pi]` — the
    ///   value [`Direction::radians`] produces — so reconstruction is
    ///   bit-exact (re-wrapping is not);
    /// * distances must be finite and non-decreasing (the association scan
    ///   is a two-pointer walk over distance-sorted tables).
    ///
    /// Violations come back as a typed description, never a panic — this
    /// is the boundary that makes hostile serialized tables safe to load.
    pub fn from_raw_parts(
        entries: Vec<(f64, f64, f64, u16, u16)>,
        directions: Vec<f64>,
        kinds: Vec<MinutiaKind>,
        minutia_count: usize,
    ) -> Result<PreparedPairTable, String> {
        if directions.len() != minutia_count {
            return Err(format!(
                "directions holds {} values for {minutia_count} minutiae",
                directions.len()
            ));
        }
        if kinds.len() != minutia_count {
            return Err(format!(
                "kinds holds {} values for {minutia_count} minutiae",
                kinds.len()
            ));
        }
        let directions = directions
            .into_iter()
            .enumerate()
            .map(|(at, radians)| {
                Direction::try_from_canonical_radians(radians)
                    .ok_or_else(|| format!("direction {at} ({radians}) is not canonical"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut prev = f64::NEG_INFINITY;
        let entries = entries
            .into_iter()
            .enumerate()
            .map(|(at, (d, beta1, beta2, i, j))| {
                if usize::from(i) >= minutia_count || usize::from(j) >= minutia_count {
                    return Err(format!(
                        "entry {at} references minutiae ({i}, {j}) of {minutia_count}"
                    ));
                }
                if !d.is_finite() || d < prev {
                    return Err(format!("entry {at} breaks the distance sort ({d})"));
                }
                prev = d;
                Ok(PairEntry {
                    d,
                    beta1,
                    beta2,
                    i,
                    j,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedPairTable {
            entries,
            directions,
            kinds,
            minutia_count,
        })
    }
}

/// The Bozorth3-family pair-table matcher. See the module docs for the
/// algorithm.
#[derive(Debug, Clone, Default)]
pub struct PairTableMatcher {
    config: PairTableConfig,
    metrics: crate::metrics::PairTableMetrics,
}

impl PairTableMatcher {
    /// Creates a matcher with explicit tuning parameters.
    pub fn new(config: PairTableConfig) -> Self {
        PairTableMatcher {
            config,
            metrics: Default::default(),
        }
    }

    /// Registers this matcher's work counters (comparisons, table entries,
    /// association counts, rotation-cluster sizes) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &fp_telemetry::Telemetry) -> Self {
        self.metrics = crate::metrics::PairTableMetrics::new(telemetry);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PairTableConfig {
        &self.config
    }

    fn build_table(&self, template: &Template) -> PreparedPairTable {
        let ms = template.minutiae();
        let mut entries = Vec::new();
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                let d = ms[i].pos.distance(&ms[j].pos);
                if d < self.config.min_pair_distance || d > self.config.max_pair_distance {
                    continue;
                }
                let line = ms[i].pos.direction_to(&ms[j].pos);
                let beta1 = ms[i].direction.signed_delta(line);
                let beta2 = ms[j].direction.signed_delta(line);
                entries.push(PairEntry {
                    d,
                    beta1,
                    beta2,
                    i: i as u16,
                    j: j as u16,
                });
            }
        }
        entries.sort_by(|a, b| a.d.partial_cmp(&b.d).expect("distances are finite"));
        self.metrics.table_entries.record(entries.len() as u64);
        PreparedPairTable {
            entries,
            directions: ms.iter().map(|m| m.direction).collect(),
            kinds: ms.iter().map(|m| m.kind).collect(),
            minutia_count: ms.len(),
        }
    }

    /// Wraps an angle difference into `(-pi, pi]`.
    #[inline]
    fn wrap(a: f64) -> f64 {
        let r = a.rem_euclid(std::f64::consts::TAU);
        if r > std::f64::consts::PI {
            r - std::f64::consts::TAU
        } else {
            r
        }
    }

    #[inline]
    fn angles_close(a: f64, b: f64, tol: f64) -> bool {
        Self::wrap(a - b).abs() <= tol
    }

    fn score_tables(&self, gallery: &PreparedPairTable, probe: &PreparedPairTable) -> MatchScore {
        self.metrics.comparisons.incr();
        if gallery.is_empty() || probe.is_empty() {
            return MatchScore::ZERO;
        }
        let cfg = &self.config;

        // Pass 1: find compatible pair associations with the two-pointer
        // distance window, clustering their implied rotations.
        //
        // An association is (gallery entry, probe entry, orientation flag):
        // direct maps (i->k, j->l), swapped maps (i->l, j->k).
        struct Assoc {
            g_i: u16,
            g_j: u16,
            p_i: u16,
            p_j: u16,
            rotation: f64,
        }
        let mut assocs: Vec<Assoc> = Vec::new();
        let mut rotation_votes = vec![0u32; cfg.rotation_bins];
        let bin_of = |rot: f64| -> usize {
            let frac = (rot + std::f64::consts::PI) / std::f64::consts::TAU;
            ((frac * cfg.rotation_bins as f64) as usize).min(cfg.rotation_bins - 1)
        };

        let mut lo = 0usize;
        for g in &gallery.entries {
            let tol = cfg.distance_tolerance + cfg.relative_distance_tolerance * g.d;
            while lo < probe.entries.len() && probe.entries[lo].d < g.d - tol {
                lo += 1;
            }
            let mut idx = lo;
            while idx < probe.entries.len() && probe.entries[idx].d <= g.d + tol {
                let p = &probe.entries[idx];
                idx += 1;
                // Direct orientation: i->k, j->l.
                let kinds_direct = !cfg.require_kind_match
                    || (gallery.kinds[g.i as usize] == probe.kinds[p.i as usize]
                        && gallery.kinds[g.j as usize] == probe.kinds[p.j as usize]);
                if kinds_direct
                    && Self::angles_close(g.beta1, p.beta1, cfg.angle_tolerance)
                    && Self::angles_close(g.beta2, p.beta2, cfg.angle_tolerance)
                {
                    let rotation = Self::wrap(
                        probe.directions[p.i as usize].radians()
                            - gallery.directions[g.i as usize].radians(),
                    );
                    rotation_votes[bin_of(rotation)] += 1;
                    assocs.push(Assoc {
                        g_i: g.i,
                        g_j: g.j,
                        p_i: p.i,
                        p_j: p.j,
                        rotation,
                    });
                }
                // Swapped orientation: i->l, j->k (the probe pair traversed
                // the other way flips the connecting line by pi, so the
                // relative angles swap roles and rotate by pi).
                let kinds_swapped = !cfg.require_kind_match
                    || (gallery.kinds[g.i as usize] == probe.kinds[p.j as usize]
                        && gallery.kinds[g.j as usize] == probe.kinds[p.i as usize]);
                if kinds_swapped
                    && Self::angles_close(
                        g.beta1,
                        Self::wrap(p.beta2 + std::f64::consts::PI),
                        cfg.angle_tolerance,
                    )
                    && Self::angles_close(
                        g.beta2,
                        Self::wrap(p.beta1 + std::f64::consts::PI),
                        cfg.angle_tolerance,
                    )
                {
                    let rotation = Self::wrap(
                        probe.directions[p.j as usize].radians()
                            - gallery.directions[g.i as usize].radians(),
                    );
                    rotation_votes[bin_of(rotation)] += 1;
                    assocs.push(Assoc {
                        g_i: g.i,
                        g_j: g.j,
                        p_i: p.j,
                        p_j: p.i,
                        rotation,
                    });
                }
            }
        }
        self.metrics.associations.record(assocs.len() as u64);
        if assocs.is_empty() {
            return MatchScore::ZERO;
        }

        // Modal rotation via the vote histogram (wrap-aware pairwise sum of
        // adjacent bins smooths bin-edge splits).
        let mut best_bin = 0usize;
        let mut best_votes = 0u32;
        for b in 0..cfg.rotation_bins {
            let v = rotation_votes[b] + rotation_votes[(b + 1) % cfg.rotation_bins];
            if v > best_votes {
                best_votes = v;
                best_bin = b;
            }
        }
        let bin_width = std::f64::consts::TAU / cfg.rotation_bins as f64;
        let modal_rotation = -std::f64::consts::PI + bin_width * (best_bin as f64 + 1.0); // boundary of the smoothed pair

        // Pass 2: correspondences supported by rotation-consistent
        // associations.
        let mut support: HashMap<(u16, u16), u32> = HashMap::new();
        let mut cluster_size = 0u64;
        for a in &assocs {
            if Self::wrap(a.rotation - modal_rotation).abs() > cfg.rotation_window + bin_width / 2.0
            {
                continue;
            }
            cluster_size += 1;
            *support.entry((a.g_i, a.p_i)).or_insert(0) += 1;
            *support.entry((a.g_j, a.p_j)).or_insert(0) += 1;
        }
        self.metrics.cluster_size.record(cluster_size);
        if support.is_empty() {
            return MatchScore::ZERO;
        }

        // Greedy one-to-one extraction by support depth.
        let mut ranked: Vec<((u16, u16), u32)> = support.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut g_used = vec![false; gallery.minutia_count];
        let mut p_used = vec![false; probe.minutia_count];
        let mut raw = 0.0;
        for ((gi, pi), s) in ranked {
            if g_used[gi as usize] || p_used[pi as usize] {
                continue;
            }
            if s < cfg.min_support {
                continue;
            }
            g_used[gi as usize] = true;
            p_used[pi as usize] = true;
            let depth = (s.min(cfg.full_support) as f64) / cfg.full_support as f64;
            raw += 0.4 + 0.6 * depth;
        }
        // Size normalization (see `PairTableConfig::size_cap`).
        let smaller = gallery.minutia_count.min(probe.minutia_count);
        if smaller > cfg.size_cap {
            raw *= cfg.size_cap as f64 / smaller as f64;
        }
        MatchScore::new(raw)
    }
}

impl Matcher for PairTableMatcher {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.score_tables(&self.build_table(gallery), &self.build_table(probe))
    }

    fn name(&self) -> &str {
        "pair-table"
    }
}

impl PreparableMatcher for PairTableMatcher {
    type Prepared = PreparedPairTable;

    fn prepare(&self, template: &Template) -> PreparedPairTable {
        self.build_table(template)
    }

    fn compare_prepared(
        &self,
        gallery: &PreparedPairTable,
        probe: &PreparedPairTable,
    ) -> MatchScore {
        self.score_tables(gallery, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::geometry::{Point, RigidMotion, Vector};
    use fp_core::minutia::{Minutia, MinutiaKind};
    use fp_core::rng::SeedTree;
    use rand::Rng;

    /// A deterministic synthetic template with `n` well-spread minutiae.
    fn synthetic_template(seed: u64, n: usize) -> Template {
        let mut rng = SeedTree::new(seed).rng();
        let mut minutiae = Vec::new();
        let mut attempts = 0;
        while minutiae.len() < n && attempts < 10_000 {
            attempts += 1;
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae
                .iter()
                .any(|m: &Minutia| m.pos.distance(&pos) < 1.4)
            {
                continue;
            }
            let dir = Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU);
            let kind = if rng.gen::<bool>() {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            };
            minutiae.push(Minutia::new(pos, dir, kind, 1.0));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_templates_score_high() {
        let m = PairTableMatcher::default();
        let t = synthetic_template(1, 35);
        let s = m.compare(&t, &t).value();
        assert!(s > 20.0, "self-match score = {s}");
    }

    #[test]
    fn unrelated_templates_score_low() {
        let m = PairTableMatcher::default();
        let a = synthetic_template(2, 35);
        let b = synthetic_template(3, 35);
        let s = m.compare(&a, &b).value();
        assert!(s < 8.0, "impostor score = {s}");
    }

    #[test]
    fn score_is_invariant_under_rigid_motion() {
        let m = PairTableMatcher::default();
        let t = synthetic_template(4, 30);
        let moved = t.transformed(&RigidMotion::new(
            Direction::from_radians(0.5),
            Vector::new(4.0, -2.5),
        ));
        let self_score = m.compare(&t, &t).value();
        let moved_score = m.compare(&t, &moved).value();
        assert!(
            (self_score - moved_score).abs() < self_score * 0.15 + 1.0,
            "self {self_score} vs moved {moved_score}"
        );
    }

    #[test]
    fn empty_templates_score_zero() {
        let m = PairTableMatcher::default();
        let e = Template::builder(500.0).build().unwrap();
        let t = synthetic_template(5, 20);
        assert_eq!(m.compare(&e, &t).value(), 0.0);
        assert_eq!(m.compare(&t, &e).value(), 0.0);
        assert_eq!(m.compare(&e, &e).value(), 0.0);
    }

    #[test]
    fn prepared_path_matches_direct_path() {
        let m = PairTableMatcher::default();
        let a = synthetic_template(6, 28);
        let b = synthetic_template(7, 28);
        let pa = m.prepare(&a);
        let pb = m.prepare(&b);
        assert_eq!(m.compare(&a, &b), m.compare_prepared(&pa, &pb));
        assert_eq!(m.compare(&a, &a), m.compare_prepared(&pa, &pa));
    }

    #[test]
    fn partial_overlap_scores_between_self_and_impostor() {
        let m = PairTableMatcher::default();
        let t = synthetic_template(8, 36);
        // Keep only the lower half of the minutiae (simulates a small
        // capture window).
        let half: Vec<Minutia> = t
            .minutiae()
            .iter()
            .filter(|mi| mi.pos.y < 0.0)
            .copied()
            .collect();
        let partial = Template::builder(500.0)
            .capture_window_mm(20.0, 12.0)
            .extend(half)
            .build()
            .unwrap();
        let self_score = m.compare(&t, &t).value();
        let partial_score = m.compare(&t, &partial).value();
        let impostor = m.compare(&t, &synthetic_template(9, 36)).value();
        assert!(
            partial_score < self_score,
            "partial {partial_score} self {self_score}"
        );
        assert!(
            partial_score > impostor,
            "partial {partial_score} impostor {impostor}"
        );
    }

    #[test]
    fn jitter_degrades_score_gracefully() {
        let m = PairTableMatcher::default();
        let t = synthetic_template(10, 32);
        let mut rng = SeedTree::new(99).rng();
        let jittered: Vec<Minutia> = t
            .minutiae()
            .iter()
            .map(|mi| {
                Minutia::new(
                    Point::new(
                        mi.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                        mi.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                    ),
                    mi.direction
                        .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
                    mi.kind,
                    mi.reliability,
                )
            })
            .collect();
        let jt = Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(jittered)
            .build()
            .unwrap();
        let self_score = m.compare(&t, &t).value();
        let jitter_score = m.compare(&t, &jt).value();
        assert!(
            jitter_score > self_score * 0.5,
            "jitter {jitter_score} self {self_score}"
        );
    }

    #[test]
    fn raw_parts_round_trip_bit_exactly() {
        let m = PairTableMatcher::default();
        let table = m.prepare(&synthetic_template(12, 30));
        let rebuilt = PreparedPairTable::from_raw_parts(
            table.raw_entries().collect(),
            table.raw_directions().collect(),
            table.raw_kinds().collect(),
            table.minutia_count(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), table.len());
        assert_eq!(rebuilt.minutia_count(), table.minutia_count());
        for (a, b) in table.raw_entries().zip(rebuilt.raw_entries()) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
            assert_eq!((a.3, a.4), (b.3, b.4));
        }
        for (a, b) in table.raw_directions().zip(rebuilt.raw_directions()) {
            assert_eq!(a.to_bits(), b.to_bits(), "directions must survive bitwise");
        }
        // Same bytes in, same score bits out — the property fp-store's
        // parity gate rests on.
        let probe = m.prepare(&synthetic_template(13, 30));
        assert_eq!(
            m.compare_prepared(&table, &probe),
            m.compare_prepared(&rebuilt, &probe)
        );
    }

    #[test]
    fn hostile_raw_parts_are_rejected_not_panicked() {
        let dirs = vec![0.0, 1.0];
        let kinds = vec![MinutiaKind::RidgeEnding, MinutiaKind::Bifurcation];
        let ok =
            |entries| PreparedPairTable::from_raw_parts(entries, dirs.clone(), kinds.clone(), 2);
        assert!(ok(vec![(2.0, 0.0, 0.0, 0, 1)]).is_ok());
        // Minutia reference out of range (would index kinds/directions OOB).
        assert!(ok(vec![(2.0, 0.0, 0.0, 0, 2)]).is_err());
        // Distance sort violated (two-pointer walk assumes sorted).
        assert!(ok(vec![(3.0, 0.0, 0.0, 0, 1), (2.0, 0.0, 0.0, 1, 0)]).is_err());
        // Non-finite distance.
        assert!(ok(vec![(f64::NAN, 0.0, 0.0, 0, 1)]).is_err());
        // Length mismatches.
        assert!(
            PreparedPairTable::from_raw_parts(Vec::new(), dirs.clone(), kinds.clone(), 3).is_err()
        );
        assert!(PreparedPairTable::from_raw_parts(Vec::new(), vec![0.0], kinds, 2).is_err());
        // Non-canonical direction (4.0 > pi would break bit-exact storage).
        assert!(PreparedPairTable::from_raw_parts(
            Vec::new(),
            vec![0.0, 4.0],
            vec![MinutiaKind::RidgeEnding, MinutiaKind::Bifurcation],
            2
        )
        .is_err());
    }

    #[test]
    fn table_respects_distance_limits() {
        let m = PairTableMatcher::default();
        let t = synthetic_template(11, 25);
        let table = m.prepare(&t);
        for e in &table.entries {
            assert!(e.d >= m.config().min_pair_distance);
            assert!(e.d <= m.config().max_pair_distance);
        }
    }
}
