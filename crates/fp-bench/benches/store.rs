//! Persistent-store latency at the scaling study's 10k-entry scale:
//! enroll-from-scratch (the cost the store exists to avoid), segment
//! save, zero-reprep open, and LSM compaction after churn.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::synthetic_gallery;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;
use fp_store::GalleryStore;

const ENTRIES: usize = 10_000;

fn store_benches(c: &mut Criterion) {
    let (gallery, _probe) = synthetic_gallery(ENTRIES);
    let config = IndexConfig::scaled(gallery.len());
    let mut index = CandidateIndex::with_config(PairTableMatcher::default(), config);
    index.enroll_all(&gallery);

    let dir = std::env::temp_dir().join(format!("fp-store-bench-{}", std::process::id()));

    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    // The baseline the open path replaces: prepare + pack + hash every
    // template again.
    group.bench_function("enroll_10k", |b| {
        b.iter(|| {
            let mut fresh = CandidateIndex::with_config(PairTableMatcher::default(), config);
            fresh.enroll_all(black_box(&gallery));
            black_box(fresh.len())
        })
    });

    // Save: encode + write one 10k-entry segment plus the manifest.
    group.bench_function("save_10k", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = GalleryStore::create(&dir).expect("create");
            black_box(store.append_index(&index).expect("append"))
        })
    });

    // Open: parse the segment back into a searchable index — pure byte
    // shuffling, no template re-preparation.
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = GalleryStore::create(&dir).expect("create");
    let seq = store.append_index(&index).expect("append");
    group.bench_function("open_10k", |b| {
        b.iter(|| {
            let opened = GalleryStore::open(&dir)
                .expect("open")
                .open_index()
                .expect("load");
            black_box(opened.len())
        })
    });

    // Compact: decode + re-encode the survivors after 5% churn. The
    // churned manifest and segment bytes are cached in RAM and restored
    // before every iteration so each one compacts the same store.
    for at in 0..(ENTRIES as u32 / 20) {
        store.tombstone(seq, at * 20).expect("tombstone");
    }
    let manifest_bytes = std::fs::read(dir.join("MANIFEST")).expect("manifest bytes");
    let seg_name = format!("seg-{seq:08}.fpseg");
    let seg_bytes = std::fs::read(dir.join(&seg_name)).expect("segment bytes");
    group.bench_function("compact_10k", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");
            std::fs::write(dir.join("MANIFEST"), &manifest_bytes).expect("restore manifest");
            std::fs::write(dir.join(&seg_name), &seg_bytes).expect("restore segment");
            let mut store = GalleryStore::open(&dir).expect("open");
            black_box(store.compact().expect("compact").entries_dropped)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, store_benches);
criterion_main!(benches);
