//! Process-level tests of the cross-process 1:N stack: real `study
//! serve-shard` child processes over loopback, coordinator parity against
//! the in-process index, fault injection by killing a live child, and the
//! `check-serve` gate over a real `ext-scaling --remote-shards` run.

use std::path::Path;
use std::process::Command;
use std::time::Duration;

use fp_core::geometry::{Direction, Point};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardError};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::{Coordinator, RetryPolicy};
use rand::Rng;

fn study_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_study"))
}

fn field_mut<'a>(v: &'a mut serde_json::Value, key: &str) -> &'a mut serde_json::Value {
    match v {
        serde_json::Value::Object(map) => map.get_mut(key).expect("key present"),
        other => panic!("expected object at {key}, got {other:?}"),
    }
}

fn elem_mut(v: &mut serde_json::Value, i: usize) -> &mut serde_json::Value {
    match v {
        serde_json::Value::Array(items) => &mut items[i],
        other => panic!("expected array, got {other:?}"),
    }
}

fn remote_rows_mut(v: &mut serde_json::Value) -> &mut serde_json::Value {
    field_mut(
        field_mut(elem_mut(field_mut(v, "reports"), 0), "values"),
        "remote_rows",
    )
}

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0xC1]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn gallery(seed: u64, n: usize) -> Vec<Template> {
    (0..n)
        .map(|i| synthetic_template(seed * 1_000 + i as u64, 16 + (i * 7) % 16))
        .collect()
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 11,
    }
}

fn spawn_children(s: usize) -> (Vec<fp_serve::proc::ShardChild>, Vec<std::net::SocketAddr>) {
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..s {
        let child = spawn_shard(study_exe(), &["serve-shard"]).expect("serve-shard spawns");
        addrs.push(child.addr);
        children.push(child);
    }
    (children, addrs)
}

#[test]
fn real_child_processes_reach_parity_with_in_process_index() {
    let pool = gallery(41, 13);
    let config = IndexConfig::default();

    let mut unsharded = CandidateIndex::with_config(PairTableMatcher::default(), config);
    unsharded.enroll_all(&pool);

    let (mut children, addrs) = spawn_children(2);
    let mut remote = Coordinator::connect(&addrs, config, Duration::from_secs(10), fast_retry())
        .expect("coordinator connects");
    remote.enroll_all(&pool).expect("remote enroll");
    assert_eq!(remote.len(), pool.len());

    for probe_idx in [0usize, 4, 9] {
        let probe = synthetic_template(41 * 1_000 + probe_idx as u64, 20);
        let local = unsharded.search(&probe);
        let over_wire = remote.search(&probe).expect("remote search");
        assert_eq!(
            over_wire.candidates(),
            local.candidates(),
            "probe {probe_idx}: wire results must be byte-identical"
        );
        assert_eq!(over_wire.gallery_len(), local.gallery_len());
    }

    remote.shutdown_all().expect("clean shutdown");
    for child in &mut children {
        assert!(
            child.wait_exit(Duration::from_secs(10)),
            "child must exit after wire shutdown"
        );
    }
}

#[test]
fn killed_child_process_fails_loudly_after_retries() {
    let pool = gallery(43, 9);
    let (mut children, addrs) = spawn_children(2);
    let mut remote = Coordinator::connect(
        &addrs,
        IndexConfig::default(),
        Duration::from_secs(10),
        fast_retry(),
    )
    .expect("coordinator connects");
    remote.enroll_all(&pool).expect("remote enroll");

    let probe = synthetic_template(43_500, 18);
    remote
        .search(&probe)
        .expect("search works while both shards live");

    children[1].kill();
    match remote.search(&probe) {
        Err(ShardError::Unavailable { shard, detail }) => {
            assert_eq!(shard, 1, "the killed shard must be named");
            assert!(
                detail.contains("attempts"),
                "error must mention the exhausted retry budget: {detail}"
            );
        }
        Err(other) => panic!("expected Unavailable, got {other}"),
        Ok(_) => panic!("search against a killed shard must not return results"),
    }
}

#[test]
fn ext_scaling_remote_rung_passes_check_serve_gate() {
    let dir = std::env::temp_dir().join(format!("fp-study-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("results.json");

    let out = Command::new(study_exe())
        .args([
            "ext-scaling",
            "--subjects",
            "8",
            "--seed",
            "5",
            "--remote-shards",
            "2",
            "--json",
            json_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("cross-process rung"),
        "report must narrate the remote rung:\n{text}"
    );

    let raw = std::fs::read_to_string(&json_path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    let values = &parsed["reports"][0]["values"];
    assert_eq!(values["remote_shards"], 2);
    assert!(
        values["remote_error"].is_null(),
        "rung failed: {}",
        values["remote_error"]
    );
    let rows = values["remote_rows"].as_array().expect("remote_rows array");
    assert_eq!(rows.len(), 1);
    assert!(rows[0]["parity_checked"].as_u64().unwrap() > 0);

    // The gate passes on the genuine output...
    let out = Command::new(study_exe())
        .args(["check-serve", json_path.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("serve smoke ok"));

    // ...fails when a parity audit is forged to disagree...
    let mut forged: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    *field_mut(elem_mut(remote_rows_mut(&mut forged), 0), "parity_agreed") = serde_json::json!(0);
    let forged_path = dir.join("forged.json");
    std::fs::write(&forged_path, forged.to_string()).expect("fixture written");
    let out = Command::new(study_exe())
        .args(["check-serve", forged_path.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "parity mismatch must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parity"));

    // ...and fails with a hint when the rung never ran at all.
    let mut bare: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    *remote_rows_mut(&mut bare) = serde_json::json!([]);
    let bare_path = dir.join("bare.json");
    std::fs::write(&bare_path, bare.to_string()).expect("fixture written");
    let out = Command::new(study_exe())
        .args(["check-serve", bare_path.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "missing remote rows must fail the gate"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--remote-shards"));

    // The remote rung reports the same run fingerprint as the unsharded
    // top rung, so the fingerprint gate passes (deep: remote evidence is
    // present)...
    let out = Command::new(study_exe())
        .args([
            "check-fingerprint",
            json_path.to_str().expect("utf-8 path"),
            "--deep",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("fingerprint parity ok"));

    // ...the manifest subcommand prints every rung's chain and saves it...
    let manifest_path = dir.join("manifest.json");
    let out = Command::new(study_exe())
        .args([
            "fingerprint",
            json_path.to_str().expect("utf-8 path"),
            "--json",
            manifest_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("run-fingerprint manifest"), "{text}");
    assert!(text.contains("cross-process"), "{text}");
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).expect("manifest written"))
            .expect("valid json");
    let rungs = manifest["rungs"].as_array().expect("rungs array");
    assert!(rungs.iter().any(|r| r["kind"] == "remote"));
    assert!(rungs.iter().all(|r| r["runfp"].as_str().is_some()));

    // ...and a single forged hex digit in the remote rung's chain — the
    // footprint of one flipped score bit — is rejected.
    let mut drifted: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    let fp_field = field_mut(elem_mut(remote_rows_mut(&mut drifted), 0), "runfp");
    let genuine_fp = fp_field.as_str().expect("runfp present").to_string();
    let forged_fp: String = genuine_fp
        .chars()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                if c == '0' {
                    '1'
                } else {
                    '0'
                }
            } else {
                c
            }
        })
        .collect();
    *fp_field = serde_json::json!(forged_fp);
    let drifted_path = dir.join("drifted.json");
    std::fs::write(&drifted_path, drifted.to_string()).expect("fixture written");
    let out = Command::new(study_exe())
        .args([
            "check-fingerprint",
            drifted_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "a perturbed fingerprint must fail the gate"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverged"));

    std::fs::remove_dir_all(&dir).ok();
}
