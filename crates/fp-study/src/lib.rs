//! # fp-study
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of *"Interoperability in Fingerprint Recognition: A Large-Scale
//! Empirical Study"* (Lugini et al., DSN 2013) on the synthetic substrate.
//!
//! * [`config::StudyConfig`] — cohort size, seed, impostor sampling, score
//!   calibration; `StudyConfig::paper_scale()` reproduces the paper's
//!   494-subject design with its exact score-set sizes (Table 3).
//! * [`dataset::Dataset`] — the captured impressions: two sessions on each
//!   of the five devices for every subject's right index finger, plus
//!   NFIQ-like quality levels.
//! * [`scores::ScoreMatrix`] — the full genuine/impostor score matrices
//!   (DMG / DDMG / DMI / DDMI in the paper's notation), computed in
//!   parallel with the pair-table matcher's prepared fast path.
//! * [`experiments`] — one module per paper artifact (Figures 1–5, Tables
//!   3–6) plus the future-work extensions (matcher diversity, habituation,
//!   FNM prediction, multi-finger fusion). Each returns a [`report::Report`].
//!
//! The `study` binary drives everything:
//!
//! ```sh
//! cargo run --release -p fp-study --bin study -- all --subjects 150
//! cargo run --release -p fp-study --bin study -- table5 --subjects 494
//! ```

pub mod config;
pub mod dataset;
pub mod experiments;
pub mod findings;
pub mod parallel;
pub mod report;
pub mod scores;

pub use config::StudyConfig;
pub use dataset::Dataset;
pub use report::Report;
pub use scores::{GenuineScore, ScoreMatrix, StudyData};
