//! A strict recursive-descent JSON parser producing mini-serde `Content`.

use serde::Content;

use crate::Error;

pub(crate) fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; continue without
                            // the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}
