//! **Figure 3 (cross-device panel, published as Figure 4's histogram)** —
//! DDMG vs DDMI for enrollment on the Cross Match Guardian R2 (D0) and
//! verification on the i3 digID Mini (D1).
//!
//! The paper's observation: the genuine/impostor overlap grows under device
//! diversity — substantially more genuine scores drop below 7 than in the
//! same-device scenario, while the impostor distribution stays put. That
//! pair of facts (FNMR affected, FMR not) is the core finding of the study.

use fp_core::ids::DeviceId;
use fp_stats::histogram::Histogram;
use serde_json::json;

use crate::report::Report;
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let gallery = DeviceId(0);
    let probe = DeviceId(1);
    let ddmg = data.scores.genuine_values(gallery, probe);
    let ddmi = data.scores.impostor_cell(gallery, probe);
    let dmg = data.scores.genuine_values(gallery, gallery);
    let dmi = data.scores.impostor_cell(gallery, gallery);

    // Unit-width bins (the paper's captions quote per-unit bin counts),
    // with the range capped at 60 so extreme top scores land in the
    // overflow bin instead of growing the rendered report without bound.
    let hi = (ddmg.iter().cloned().fold(10.0, f64::max).ceil() + 1.0).min(60.0);
    let bins = hi as usize;
    let g_hist = Histogram::from_values(0.0, hi, bins, ddmg.iter().copied());
    let i_hist = Histogram::from_values(0.0, hi, bins, ddmi.iter().copied());

    let frac_below = |xs: &[f64]| xs.iter().filter(|&&s| s < 7.0).count() as f64 / xs.len() as f64;
    let ddmg_below = frac_below(&ddmg);
    let dmg_below = frac_below(&dmg);
    let ddmi_max = ddmi.iter().cloned().fold(0.0, f64::max);
    let dmi_max = dmi.iter().cloned().fold(0.0, f64::max);

    let mut body = String::from("DDMG (genuine, D0 gallery vs D1 probe):\n");
    body.push_str(&g_hist.render_ascii(40));
    body.push_str("\nDDMI (impostor, D0 gallery vs D1 probe):\n");
    body.push_str(&i_hist.render_ascii(40));
    body.push_str(&format!(
        "\nDDMI counts: 0-1: {}, 1-2: {}, 2-3: {} (paper caption: 19,889 / 4,024 / 229)\n\
         genuine below 7: same-device {:.1}%  vs  cross-device {:.1}%\n\
         impostor max:    same-device {dmi_max:.2} vs cross-device {ddmi_max:.2}\n",
        i_hist.count(0),
        i_hist.count(1),
        i_hist.count(2),
        dmg_below * 100.0,
        ddmg_below * 100.0,
    ));

    Report::new(
        "fig3",
        "DDMG vs DDMI distributions, D0 gallery / D1 probe (paper Figure 4 histogram)",
        body,
        json!({
            "gallery": "D0",
            "probe": "D1",
            "ddmg_below_7_fraction": ddmg_below,
            "dmg_below_7_fraction": dmg_below,
            "ddmi_max": ddmi_max,
            "dmi_max": dmi_max,
            "ddmg_histogram": (0..g_hist.bins()).map(|i| g_hist.count(i)).collect::<Vec<_>>(),
            "ddmi_histogram": (0..i_hist.bins()).map(|i| i_hist.count(i)).collect::<Vec<_>>(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn cross_device_increases_low_genuine_fraction() {
        let r = run(testdata::small());
        let cross = r.values["ddmg_below_7_fraction"].as_f64().unwrap();
        let same = r.values["dmg_below_7_fraction"].as_f64().unwrap();
        assert!(
            cross >= same,
            "cross-device low-genuine fraction {cross} below same-device {same}"
        );
    }

    #[test]
    fn impostor_ceiling_is_similar_across_scenarios() {
        // FMR is not affected by device diversity: the impostor maxima stay
        // in the same region.
        let r = run(testdata::small());
        let cross = r.values["ddmi_max"].as_f64().unwrap();
        let same = r.values["dmi_max"].as_f64().unwrap();
        assert!(
            (cross - same).abs() < 6.0,
            "impostor max moved: {same} -> {cross}"
        );
    }
}
