//! Fixed-bin histograms for score-distribution figures.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with uniform bins plus an overflow bin for
/// values `≥ hi`. Values below `lo` are clamped into the first bin (the
/// score distributions this is used for are non-negative by construction).
///
/// ```
/// use fp_stats::histogram::Histogram;
///
/// let h = Histogram::from_values(0.0, 10.0, 10, [0.5, 0.7, 3.2, 11.0]);
/// assert_eq!(h.count(0), 2);   // two scores in [0, 1)
/// assert_eq!(h.overflow(), 1); // 11.0 is beyond the range
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Builds a histogram from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = f64>>(
        lo: f64,
        hi: f64,
        bins: usize,
        values: I,
    ) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((value - self.lo) / w).floor();
        let idx = if idx < 0.0 { 0 } else { idx as usize };
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of bins (excluding overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Count of values `≥ hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `[start, end)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Iterates `(bin_start, bin_end, count)` over the regular bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(|i| {
            let (a, b) = self.bin_edges(i);
            (a, b, self.counts[i])
        })
    }

    /// Relative frequency of bin `i` (0 when the histogram is empty).
    pub fn frequency(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Renders a compact ASCII bar chart, one bin per line, for terminal
    /// reports.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (a, b, c) in self.iter() {
            let bar = "#".repeat(((c as f64 / peak as f64) * max_width as f64).round() as usize);
            out.push_str(&format!("{a:>8.1}-{b:<8.1} {c:>8} {bar}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>8}+{:<8} {:>8}\n", self.hi, "", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_conserved() {
        let values = [0.5, 1.5, 2.5, 9.9, 10.0, 25.0, -1.0];
        let h = Histogram::from_values(0.0, 10.0, 10, values);
        let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        assert_eq!(binned + h.overflow(), values.len() as u64);
        assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn values_land_in_correct_bins() {
        let h = Histogram::from_values(0.0, 10.0, 10, [0.0, 0.99, 1.0, 9.99]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    fn below_range_clamps_to_first_bin() {
        let h = Histogram::from_values(0.0, 10.0, 5, [-5.0]);
        assert_eq!(h.count(0), 1);
    }

    #[test]
    fn at_or_above_hi_goes_to_overflow() {
        let h = Histogram::from_values(0.0, 10.0, 5, [10.0, 11.0]);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn frequencies_sum_to_one_without_overflow() {
        let h = Histogram::from_values(0.0, 10.0, 4, [1.0, 3.0, 5.0, 7.0]);
        let sum: f64 = (0..4).map(|i| h.frequency(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let h = Histogram::from_values(0.0, 4.0, 4, [0.5, 1.5, 1.6, 3.0]);
        assert_eq!(h.render_ascii(20).lines().count(), 4);
    }
}
