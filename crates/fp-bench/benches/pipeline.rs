//! Throughput of the synthesis → acquisition → quality pipeline stages, and
//! of the raster (image-domain) pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::{bench_population, bench_seed, genuine_pair};
use fp_core::geometry::{Point, Rect};
use fp_core::ids::{DeviceId, Digit, Finger, SessionId};
use fp_image::binarize::adaptive_binarize;
use fp_image::enhance::gabor_enhance;
use fp_image::extract::{extract_minutiae, ExtractConfig};
use fp_image::orientation::estimate_orientation;
use fp_image::render::{render_master, RenderConfig};
use fp_image::segment::segment;
use fp_image::thin::zhang_suen;
use fp_quality::QualityAssessor;
use fp_sensor::CaptureProtocol;
use fp_synth::master::MasterPrint;

fn pipeline_benches(c: &mut Criterion) {
    let pop = bench_population(4);
    let subject = &pop.subjects()[0];

    let mut group = c.benchmark_group("synthesis");
    group.bench_function("master_print", |b| {
        b.iter(|| {
            black_box(MasterPrint::generate(
                black_box(&bench_seed().child(&[7])),
                Digit::Index,
                1.0,
            ))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("acquisition");
    let protocol = CaptureProtocol::new();
    for device in [DeviceId(0), DeviceId(3), DeviceId(4)] {
        group.bench_function(format!("capture_{device}"), |b| {
            b.iter(|| {
                black_box(protocol.capture(
                    black_box(subject),
                    Finger::RIGHT_INDEX,
                    device,
                    SessionId(0),
                ))
            })
        });
    }
    let impression = protocol.capture(subject, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0));
    group.bench_function("quality_assessment", |b| {
        let assessor = QualityAssessor::default();
        b.iter(|| black_box(assessor.assess(black_box(&impression))))
    });
    group.finish();

    let mut group = c.benchmark_group("raster");
    group.sample_size(10);
    let master = MasterPrint::generate(&bench_seed().child(&[1]), Digit::Index, 1.0);
    let window = Rect::centred(Point::ORIGIN, 12.0, 14.0).expect("valid window");
    let render_config = RenderConfig::default();
    group.bench_function("render_12x14mm_500dpi", |b| {
        b.iter(|| {
            black_box(render_master(
                black_box(&master),
                window,
                &render_config,
                &bench_seed().child(&[2]),
            ))
        })
    });
    let image = render_master(&master, window, &render_config, &bench_seed().child(&[2]));
    group.bench_function("orientation_estimation", |b| {
        b.iter(|| black_box(estimate_orientation(black_box(&image), 16)))
    });
    let field = estimate_orientation(&image, 16);
    let mask = segment(&image, 16, 0.25).eroded();
    group.bench_function("gabor_enhancement", |b| {
        b.iter(|| black_box(gabor_enhance(black_box(&image), &field, &mask, 9.0)))
    });
    let enhanced = gabor_enhance(&image, &field, &mask, 9.0);
    let binary = adaptive_binarize(&enhanced, &mask, 6);
    group.bench_function("thinning", |b| {
        b.iter(|| black_box(zhang_suen(black_box(&binary))))
    });
    let skeleton = zhang_suen(&binary);
    group.bench_function("minutiae_extraction", |b| {
        b.iter(|| {
            black_box(
                extract_minutiae(
                    black_box(&skeleton),
                    &mask,
                    window,
                    &ExtractConfig::default(),
                )
                .expect("valid extraction"),
            )
        })
    });
    group.finish();

    // The interop-critical path: one genuine cross-device comparison,
    // captures included.
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("cross_device_verification", |b| {
        let matcher = fp_match::PairTableMatcher::default();
        b.iter(|| {
            let (gallery, probe) = genuine_pair(black_box(subject), DeviceId(0), DeviceId(4));
            black_box(fp_core::Matcher::compare(
                &matcher,
                gallery.template(),
                probe.template(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
