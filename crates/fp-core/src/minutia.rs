//! Minutiae: the level-2 fingerprint features all matching is based on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::{Direction, Point, RigidMotion};

/// The type of a minutia point.
///
/// Real extraction pipelines report many exotic types (lakes, spurs,
/// crossovers); matchers — including NIST's Bozorth3 and the commercial SDK
/// used in the paper — collapse them to endings and bifurcations, so we model
/// exactly those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MinutiaKind {
    /// A ridge terminates.
    RidgeEnding,
    /// A ridge splits in two.
    Bifurcation,
}

impl MinutiaKind {
    /// Both kinds, endings first.
    pub const ALL: [MinutiaKind; 2] = [MinutiaKind::RidgeEnding, MinutiaKind::Bifurcation];
}

impl fmt::Display for MinutiaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinutiaKind::RidgeEnding => write!(f, "ending"),
            MinutiaKind::Bifurcation => write!(f, "bifurcation"),
        }
    }
}

/// A single minutia: position, direction of the ridge flow at the point, the
/// feature kind, and an extraction-reliability estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Minutia {
    /// Position in finger-centred millimetres.
    pub pos: Point,
    /// Ridge direction at the minutia (directed; endings point along the
    /// terminating ridge, bifurcations along the valley between branches).
    pub direction: Direction,
    /// Feature kind.
    pub kind: MinutiaKind,
    /// Extraction reliability in `[0, 1]`; 1 means certain. Sensors reduce
    /// this with noise, and quality assessment aggregates it.
    pub reliability: f64,
}

impl Minutia {
    /// Creates a minutia, clamping `reliability` into `[0, 1]` (NaN maps
    /// to 0: no evidence of reliability is zero reliability).
    pub fn new(pos: Point, direction: Direction, kind: MinutiaKind, reliability: f64) -> Self {
        let reliability = if reliability.is_nan() {
            0.0
        } else {
            reliability.clamp(0.0, 1.0)
        };
        Minutia {
            pos,
            direction,
            kind,
            reliability,
        }
    }

    /// Applies a rigid motion to the minutia (position and direction).
    pub fn transformed(&self, motion: &RigidMotion) -> Minutia {
        Minutia {
            pos: motion.apply(&self.pos),
            direction: motion.apply_direction(self.direction),
            kind: self.kind,
            reliability: self.reliability,
        }
    }

    /// Distance in millimetres to another minutia.
    pub fn distance(&self, other: &Minutia) -> f64 {
        self.pos.distance(&other.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vector;

    #[test]
    fn reliability_is_clamped() {
        let m = Minutia::new(
            Point::ORIGIN,
            Direction::ZERO,
            MinutiaKind::RidgeEnding,
            2.0,
        );
        assert_eq!(m.reliability, 1.0);
        let m = Minutia::new(
            Point::ORIGIN,
            Direction::ZERO,
            MinutiaKind::RidgeEnding,
            -0.5,
        );
        assert_eq!(m.reliability, 0.0);
        let m = Minutia::new(
            Point::ORIGIN,
            Direction::ZERO,
            MinutiaKind::RidgeEnding,
            f64::NAN,
        );
        assert_eq!(m.reliability, 0.0, "NaN reliability must not propagate");
    }

    #[test]
    fn transform_moves_position_and_direction_consistently() {
        let m = Minutia::new(
            Point::new(1.0, 0.0),
            Direction::ZERO,
            MinutiaKind::Bifurcation,
            0.8,
        );
        let quarter = RigidMotion::new(
            Direction::from_radians(std::f64::consts::FRAC_PI_2),
            Vector::ZERO,
        );
        let t = m.transformed(&quarter);
        assert!(t.pos.distance(&Point::new(0.0, 1.0)) < 1e-12);
        assert!((t.direction.radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(t.kind, m.kind);
        assert_eq!(t.reliability, m.reliability);
    }

    #[test]
    fn kind_display_is_stable() {
        assert_eq!(MinutiaKind::RidgeEnding.to_string(), "ending");
        assert_eq!(MinutiaKind::Bifurcation.to_string(), "bifurcation");
    }
}
