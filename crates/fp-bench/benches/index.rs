//! 1:N candidate-index latency: build, indexed search, and the exhaustive
//! brute-force baseline it replaces, at increasing gallery sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::gallery_fixtures;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;

fn index_benches(c: &mut Criterion) {
    for gallery_size in [50usize, 200] {
        let (gallery, probe) = gallery_fixtures(gallery_size);

        let group_name = format!("index_{gallery_size}");
        let mut group = c.benchmark_group(&group_name);
        group.bench_function("build", |b| {
            b.iter(|| {
                let mut index = CandidateIndex::with_config(
                    PairTableMatcher::default(),
                    IndexConfig::scaled(gallery.len()),
                );
                index.enroll_all(black_box(&gallery));
                black_box(index.len())
            })
        });

        let mut index = CandidateIndex::with_config(
            PairTableMatcher::default(),
            IndexConfig::scaled(gallery.len()),
        );
        index.enroll_all(&gallery);
        group.bench_function("search", |b| {
            b.iter(|| black_box(index.search(black_box(&probe))))
        });
        group.bench_function("brute_force", |b| {
            b.iter(|| black_box(index.brute_force(black_box(&probe))))
        });
        group.finish();
    }
}

criterion_group!(benches, index_benches);
criterion_main!(benches);
