//! Image-quality gating: how NFIQ-based acquisition control changes
//! cross-device error rates (the paper's Figure 5 / Table 6 story).
//!
//! NIST recommends reacquiring a finger up to three times when NFIQ is
//! worse than 3. This example quantifies what that buys in the
//! interoperability setting: FNMR with no gate, with a lenient gate
//! (NFIQ <= 3), and with a strict gate (NFIQ <= 2) on both sides.
//!
//! ```sh
//! cargo run --release --example quality_gating -- 80
//! ```

use fingerprint_interop::prelude::*;
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;

fn gated_fnmr(
    data: &StudyData,
    gallery: DeviceId,
    probe: DeviceId,
    max_level: u8,
    fmr: f64,
) -> (f64, usize) {
    let genuine: Vec<f64> = data
        .scores
        .genuine_cell(gallery, probe)
        .iter()
        .filter(|s| s.gallery_quality.value() <= max_level && s.probe_quality.value() <= max_level)
        .map(|s| s.score)
        .collect();
    let n = genuine.len();
    let set = ScoreSet::new(genuine, data.scores.impostor_cell(gallery, probe).to_vec());
    (set.fnmr_at_fmr(fmr), n)
}

fn main() {
    let subjects = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60usize);
    eprintln!("running {subjects}-subject study ...");
    let config = StudyConfig::builder().subjects(subjects).seed(404).build();
    let data = StudyData::generate(&config);
    let fmr = 1e-3;

    let scenarios = [
        ("same device (D0 -> D0)", DeviceId(0), DeviceId(0)),
        ("cross optical (D0 -> D2)", DeviceId(0), DeviceId(2)),
        ("ink to optical (D4 -> D0)", DeviceId(4), DeviceId(0)),
    ];
    println!(
        "\nFNMR at FMR = {:.1}% under acquisition quality gates:\n",
        fmr * 100.0
    );
    println!(
        "{:<28}{:>14}{:>18}{:>18}",
        "scenario", "no gate", "gate NFIQ<=3", "gate NFIQ<=2"
    );
    for (label, g, p) in scenarios {
        let (all, n_all) = gated_fnmr(&data, g, p, 5, fmr);
        let (lenient, n_len) = gated_fnmr(&data, g, p, 3, fmr);
        let (strict, n_strict) = gated_fnmr(&data, g, p, 2, fmr);
        println!(
            "{label:<28}{:>14}{:>18}{:>18}",
            format!("{all:.3} (n={n_all})"),
            format!("{lenient:.3} (n={n_len})"),
            format!("{strict:.3} (n={n_strict})"),
        );
    }
    println!(
        "\npaper finding: with one device, quality barely matters as long as one\n\
         side is decent; across devices, BOTH sides need good quality — the\n\
         stricter the gate, the more of the interoperability penalty is recovered\n\
         (at the cost of reacquisition: note the shrinking n)."
    );
}
