//! Skeleton post-processing: spur and island removal.
//!
//! Raw Zhang–Suen skeletons carry two artifact families that create false
//! minutiae: **spurs** (short dead-end branches sticking out of a ridge,
//! each ending in a fake ridge ending and rooting in a fake bifurcation)
//! and **islands** (tiny disconnected components from noise specks). Both
//! are removed by standard morphology before extraction.

use crate::binarize::BinaryImage;

/// 8-neighbour offsets.
const NEIGHBOURS: [(isize, isize); 8] = [
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (-1, -1),
];

fn degree(img: &BinaryImage, x: isize, y: isize) -> usize {
    NEIGHBOURS
        .iter()
        .filter(|&&(dx, dy)| img.at(x + dx, y + dy))
        .count()
}

/// Crossing number: half the 0/1 transitions around the 8-ring. 1 =
/// endpoint, 2 = ridge continuation, >= 3 = junction. Robust to the
/// diagonal-adjacency degree inflation next to a ridge line.
fn crossing_number(img: &BinaryImage, x: isize, y: isize) -> usize {
    let ring: Vec<bool> = NEIGHBOURS
        .iter()
        .map(|&(dx, dy)| img.at(x + dx, y + dy))
        .collect();
    let mut transitions = 0;
    for i in 0..8 {
        if ring[i] != ring[(i + 1) % 8] {
            transitions += 1;
        }
    }
    transitions / 2
}

/// Removes spur branches of length `<= max_length` pixels: walks from every
/// endpoint (degree 1); if a junction (degree >= 3) or another endpoint is
/// reached within the limit, the walked branch is erased. Repeats until a
/// fixed point (a long spur can shorten into a removable one).
pub fn remove_spurs(input: &BinaryImage, max_length: usize) -> BinaryImage {
    let mut img = input.clone();
    let (w, h) = (img.width(), img.height());
    loop {
        let mut removed_any = false;
        for y in 0..h {
            for x in 0..w {
                let (xi, yi) = (x as isize, y as isize);
                if !img.at(xi, yi)
                    || crossing_number(&img, xi, yi) != 1
                    || degree(&img, xi, yi) != 1
                {
                    continue;
                }
                // Walk the branch from this endpoint until the pixel where
                // it attaches to the main structure (two or more onward
                // neighbours), a dead end, or the length limit.
                let mut branch = vec![(xi, yi)];
                let mut prev = (xi, yi);
                let mut cur = (xi, yi);
                let mut reached_junction = false;
                while branch.len() <= max_length {
                    let onward: Vec<(isize, isize)> = NEIGHBOURS
                        .iter()
                        .map(|&(dx, dy)| (cur.0 + dx, cur.1 + dy))
                        .filter(|&(nx, ny)| img.at(nx, ny) && (nx, ny) != prev)
                        .collect();
                    match onward.len() {
                        0 => break, // isolated segment; island removal handles it
                        1 => {
                            branch.push(onward[0]);
                            prev = cur;
                            cur = onward[0];
                        }
                        _ => {
                            // cur touches the main structure: the spur is
                            // everything walked so far, cur included.
                            reached_junction = true;
                            break;
                        }
                    }
                }
                if reached_junction && branch.len() <= max_length {
                    for (bx, by) in &branch {
                        img.set(*bx as usize, *by as usize, false);
                    }
                    removed_any = true;
                }
            }
        }
        if !removed_any {
            return img;
        }
    }
}

/// Removes connected components with fewer than `min_size` pixels
/// (8-connectivity).
pub fn remove_islands(input: &BinaryImage, min_size: usize) -> BinaryImage {
    let (w, h) = (input.width(), input.height());
    let mut img = input.clone();
    let mut visited = vec![false; w * h];
    for start_y in 0..h {
        for start_x in 0..w {
            let idx = start_y * w + start_x;
            if visited[idx] || !img.at(start_x as isize, start_y as isize) {
                continue;
            }
            // Flood fill to collect the component.
            let mut component = vec![(start_x, start_y)];
            let mut stack = vec![(start_x, start_y)];
            visited[idx] = true;
            while let Some((cx, cy)) = stack.pop() {
                for &(dx, dy) in &NEIGHBOURS {
                    let nx = cx as isize + dx;
                    let ny = cy as isize + dy;
                    if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                        continue;
                    }
                    let nidx = ny as usize * w + nx as usize;
                    if !visited[nidx] && img.at(nx, ny) {
                        visited[nidx] = true;
                        component.push((nx as usize, ny as usize));
                        stack.push((nx as usize, ny as usize));
                    }
                }
            }
            if component.len() < min_size {
                for (cx, cy) in component {
                    img.set(cx, cy, false);
                }
            }
        }
    }
    img
}

/// The standard cleanup sequence applied between thinning and extraction.
pub fn clean_skeleton(skel: &BinaryImage, spur_length: usize, min_island: usize) -> BinaryImage {
    remove_islands(&remove_spurs(skel, spur_length), min_island)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&str]) -> BinaryImage {
        let h = rows.len();
        let w = rows[0].len();
        let mut data = Vec::with_capacity(w * h);
        for r in rows {
            for c in r.chars() {
                data.push(c == '#');
            }
        }
        BinaryImage::from_data(w, h, data)
    }

    #[test]
    fn short_spur_is_removed_long_ridge_stays() {
        // A ridge with a 3-pixel spur hanging off it.
        let img = from_rows(&[
            "............",
            "....#.......",
            "....#.......",
            "....#.......",
            "############",
            "............",
        ]);
        let cleaned = remove_spurs(&img, 5);
        // The spur is gone...
        assert!(!cleaned.at(4, 1));
        assert!(!cleaned.at(4, 2));
        assert!(!cleaned.at(4, 3));
        // ...and the main ridge survives.
        for x in 0..12 {
            assert!(cleaned.at(x, 4), "ridge pixel {x} removed");
        }
    }

    #[test]
    fn long_branches_survive_spur_removal() {
        let img = from_rows(&[
            "....#.......",
            "....#.......",
            "....#.......",
            "....#.......",
            "....#.......",
            "....#.......",
            "....#.......",
            "############",
        ]);
        let cleaned = remove_spurs(&img, 4);
        // The vertical branch is 7 long: not a spur.
        assert!(cleaned.at(4, 0));
        assert!(cleaned.at(4, 6));
    }

    #[test]
    fn islands_below_threshold_vanish() {
        let img = from_rows(&[
            "##..........",
            "##..........",
            "......####..",
            "......####..",
            "............",
        ]);
        let cleaned = remove_islands(&img, 5);
        assert!(!cleaned.at(0, 0), "4-pixel island survived");
        assert!(cleaned.at(7, 2), "8-pixel component removed");
    }

    #[test]
    fn clean_skeleton_composes_both() {
        let img = from_rows(&[
            "#...........",
            "............",
            "....#.......",
            "....#.......",
            "############",
            "............",
        ]);
        let cleaned = clean_skeleton(&img, 4, 3);
        assert!(!cleaned.at(0, 0)); // island
        assert!(!cleaned.at(4, 2)); // spur
        assert!(cleaned.at(6, 4)); // ridge
    }

    #[test]
    fn empty_image_is_stable() {
        let img = from_rows(&["....", "....", "...."]);
        assert_eq!(clean_skeleton(&img, 5, 4).count_ones(), 0);
    }
}
