//! Avalanche and determinism properties of the RUNFP run fingerprint.
//!
//! The fingerprint's whole value is that two executions agree on one u64
//! exactly when they agreed on every behavior-relevant bit. That claim has
//! two halves, and each gets a property suite here:
//!
//! * **Sensitivity** — any single perturbation of what a search returned
//!   (one flipped score bit, one changed candidate id, two swapped ranks)
//!   or of what configured the run (any `IndexConfig` field, the seed)
//!   must change the fingerprint.
//! * **Determinism** — re-running the same searches must reproduce the
//!   value bit-for-bit: across shard counts (the sharded index folds the
//!   same merged lists as the unsharded one) and across threads (the
//!   cumulative combine is commutative, so completion order is
//!   irrelevant).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_core::MatchScore;
use fp_index::{Candidate, CandidateIndex, IndexConfig, SearchResult, ShardedIndex};
use fp_match::PairTableMatcher;
use fp_telemetry::{FingerprintChain, RunFingerprint};
use proptest::prelude::*;
use rand::Rng;

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5D]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn second_capture(template: &Template, seed: u64) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5E]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() <= 0.08 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(fp_core::dist::normal(&mut rng, 0.0, 0.15)),
        Vector::new(
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
        .transformed(&motion)
}

fn gallery(seed: u64, n: usize) -> Vec<Template> {
    (0..n)
        .map(|i| synthetic_template(seed * 1_000 + i as u64, 16 + (i * 7) % 16))
        .collect()
}

/// A synthetic shortlist: distinct ids, strictly positive finite scores.
/// (Sort order does not matter for the fold — the chain hashes whatever
/// sequence it is given — so perturbation tests need not re-sort.)
fn shortlist(ids: &[u32], scores: &[f64], gallery_len: usize) -> SearchResult {
    let candidates: Vec<Candidate> = ids
        .iter()
        .zip(scores)
        .map(|(&id, &s)| Candidate {
            id,
            score: MatchScore::new(s),
        })
        .collect();
    SearchResult::from_parts(candidates, gallery_len)
}

fn fold_value(result: &SearchResult, base: FingerprintChain) -> u64 {
    let mut chain = base;
    chain.fold(result);
    chain.value()
}

/// Strategy: 1..12 `(id, score)` pairs with positive finite scores.
fn candidate_lists() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..10_000, 0.5f64..100.0), 1..12)
}

/// Drops duplicate ids and splits into parallel id/score vectors.
fn distinct(mut pairs: Vec<(u32, f64)>) -> (Vec<u32>, Vec<f64>) {
    pairs.sort_by_key(|p| p.0);
    pairs.dedup_by_key(|p| p.0);
    pairs.into_iter().unzip()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single mantissa bit of any candidate's score changes
    /// the fingerprint: scores are folded as raw IEEE-754 bits, so the
    /// chain sees exactly the bit that drifted. (Mantissa bits 0..52 keep
    /// the perturbed score positive and finite, so `MatchScore::new`
    /// cannot clamp the perturbation away.)
    #[test]
    fn single_score_bit_flip_changes_the_fingerprint(
        pairs in candidate_lists(),
        pick in 0usize..12,
        bit in 0u32..52,
        seed in 0u64..1_000,
    ) {
        let (ids, scores) = distinct(pairs);
        let base = IndexConfig::default().fingerprint_base(seed);
        let genuine = shortlist(&ids, &scores, 10_000);

        let victim = pick % ids.len();
        let mut forged_scores = scores.clone();
        forged_scores[victim] = f64::from_bits(scores[victim].to_bits() ^ (1u64 << bit));
        let forged = shortlist(&ids, &forged_scores, 10_000);

        prop_assert!(
            fold_value(&genuine, base) != fold_value(&forged, base),
            "score bit {} of candidate {} flipped undetected",
            bit,
            victim
        );
    }

    /// Changing any single candidate id changes the fingerprint.
    #[test]
    fn candidate_id_change_changes_the_fingerprint(
        pairs in candidate_lists(),
        pick in 0usize..12,
        delta in 1u32..1_000,
        seed in 0u64..1_000,
    ) {
        let (ids, scores) = distinct(pairs);
        let base = IndexConfig::default().fingerprint_base(seed);
        let genuine = shortlist(&ids, &scores, 10_000);

        let victim = pick % ids.len();
        let mut forged_ids = ids.clone();
        forged_ids[victim] = forged_ids[victim].wrapping_add(delta);
        let forged = shortlist(&forged_ids, &scores, 10_000);

        prop_assert_ne!(fold_value(&genuine, base), fold_value(&forged, base));
    }

    /// Swapping two distinct candidates' ranks changes the fingerprint:
    /// the fold is order-dependent and each candidate is folded with its
    /// rank, so the same multiset in a different order is a different run.
    #[test]
    fn rank_swap_changes_the_fingerprint(
        pairs in candidate_lists(),
        pick in 0usize..12,
        seed in 0u64..1_000,
    ) {
        let (ids, scores) = distinct(pairs);
        prop_assume!(ids.len() >= 2);
        let base = IndexConfig::default().fingerprint_base(seed);
        let genuine = shortlist(&ids, &scores, 10_000);

        let a = pick % (ids.len() - 1);
        // ids are distinct by construction, so swapping adjacent
        // candidates always changes the folded sequence.
        let mut swapped_ids = ids.clone();
        swapped_ids.swap(a, a + 1);
        let mut swapped_scores = scores.clone();
        swapped_scores.swap(a, a + 1);
        let swapped = shortlist(&swapped_ids, &swapped_scores, 10_000);

        prop_assert_ne!(fold_value(&genuine, base), fold_value(&swapped, base));
    }

    /// Every `IndexConfig` field and the run seed are load-bearing: a
    /// perturbation of any one of them moves the base chain, so two runs
    /// configured differently can never share a fingerprint by accident.
    #[test]
    fn every_config_field_and_the_seed_move_the_base_chain(
        seed in 0u64..10_000,
        bump in 1usize..64,
        f64_bump in 0.01f64..2.0,
    ) {
        let config = IndexConfig::default();
        let genuine = config.fingerprint_base(seed).value();

        let variants = [
            IndexConfig { shortlist: config.shortlist + bump, ..config },
            IndexConfig { max_cylinders: config.max_cylinders + bump, ..config },
            IndexConfig { lss_depth: config.lss_depth + bump, ..config },
            IndexConfig { distance_bin: config.distance_bin + f64_bump, ..config },
            IndexConfig { angle_bins: config.angle_bins + bump, ..config },
        ];
        for (i, variant) in variants.iter().enumerate() {
            prop_assert!(
                variant.fingerprint_base(seed).value() != genuine,
                "config field {} perturbed undetected",
                i
            );
        }
        prop_assert_ne!(config.fingerprint_base(seed ^ 1).value(), genuine);
    }
}

/// Fold-order determinism across shard counts: the sharded index merges
/// per-shard parts into the global-fusion order before folding, so for
/// every S (including an S exceeding the gallery, leaving shards empty)
/// the cumulative run fingerprint equals the unsharded one after the same
/// probes at the same budgets.
#[test]
fn sharded_run_fingerprints_equal_unsharded_for_every_shard_count() {
    const N: usize = 12;
    const SEED: u64 = 2013;
    let templates = gallery(9, N);
    let config = IndexConfig::default();

    let mut unsharded =
        CandidateIndex::with_config(PairTableMatcher::default(), config).with_run_seed(SEED);
    unsharded.enroll_all(&templates);

    let probes: Vec<Template> = (0..3)
        .map(|p| second_capture(&templates[p * 4], 31 + p as u64))
        .collect();
    for probe in &probes {
        for budget in [0usize, N / 2, N] {
            let _ = unsharded.search_with_budget(probe, budget);
        }
    }
    let reference = unsharded.run_fingerprint();
    assert_eq!(reference.searches, (probes.len() * 3) as u64);

    for s in [1usize, 2, 3, 7] {
        let mut sharded =
            ShardedIndex::with_config(PairTableMatcher::default(), config, s).with_run_seed(SEED);
        sharded.enroll_all(&templates);
        for probe in &probes {
            for budget in [0usize, N / 2, N] {
                let _ = sharded.search_with_budget(probe, budget);
            }
        }
        let snapshot = sharded.run_fingerprint();
        assert_eq!(
            snapshot, reference,
            "S={s}: sharded run fingerprint diverged from unsharded"
        );
    }
}

/// Thread determinism: eight workers draining a shared queue of searches
/// in whatever order the scheduler picks reach the same cumulative
/// fingerprint as a single thread folding them sequentially — the
/// accumulator combines per-search chains commutatively.
#[test]
fn eight_threads_reach_the_single_thread_fingerprint() {
    const WORKERS: usize = 8;
    const SEARCHES: usize = 64;
    let base = IndexConfig::default().fingerprint_base(77);

    // Synthetic per-search results: cheap, distinct, deterministic.
    let results: Vec<SearchResult> = (0..SEARCHES)
        .map(|i| {
            let ids: Vec<u32> = (0..(1 + i % 5) as u32).map(|k| k * 7 + i as u32).collect();
            let scores: Vec<f64> = ids.iter().map(|&id| 50.0 - f64::from(id) * 0.25).collect();
            shortlist(&ids, &scores, 1_000)
        })
        .collect();

    let sequential = RunFingerprint::new(base);
    for result in &results {
        sequential.record_item(result);
    }

    for round in 0..4 {
        let concurrent = RunFingerprint::new(base);
        let next = Arc::new(AtomicUsize::new(0));
        let results = Arc::new(results.clone());
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                let runfp = concurrent.clone();
                let next = Arc::clone(&next);
                let results = Arc::clone(&results);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= results.len() {
                        break;
                    }
                    runfp.record_item(&results[i]);
                });
            }
        });
        assert_eq!(
            concurrent.snapshot(),
            sequential.snapshot(),
            "round {round}: thread interleaving changed the cumulative fingerprint"
        );
    }
}
