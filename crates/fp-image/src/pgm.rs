//! Binary PGM (P5) encoding and decoding — the no-dependency way to look at
//! rendered fingerprints with any image viewer.

use std::io::{Read, Write};

use fp_core::{Error, Result};

use crate::image::GrayImage;

/// Writes `img` as an 8-bit binary PGM stream. Pixel values are clamped to
/// `[0, 1]` and scaled to 0–255.
///
/// A `&mut` reference can be passed for any `Write` (e.g. `&mut Vec<u8>` or
/// a `File`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(img: &GrayImage, mut writer: W) -> std::io::Result<()> {
    write!(writer, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .data()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    writer.write_all(&bytes)
}

/// Reads an 8-bit binary PGM stream into a [`GrayImage`] with values in
/// `[0, 1]`.
///
/// # Errors
///
/// Returns an error when the stream is not a valid binary (P5) PGM or the
/// pixel payload is truncated.
pub fn read_pgm<R: Read>(mut reader: R) -> Result<GrayImage> {
    let mut raw = Vec::new();
    reader
        .read_to_end(&mut raw)
        .map_err(|e| Error::invalid("pgm", format!("read failed: {e}")))?;

    // Parse the header: magic, width, height, maxval — whitespace separated,
    // with '#' comments allowed.
    let mut pos = 0usize;
    let mut token = |raw: &[u8]| -> Result<String> {
        // Skip whitespace and comments.
        loop {
            while pos < raw.len() && raw[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < raw.len() && raw[pos] == b'#' {
                while pos < raw.len() && raw[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < raw.len() && !raw[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(Error::invalid("pgm", "unexpected end of header"));
        }
        Ok(String::from_utf8_lossy(&raw[start..pos]).into_owned())
    };

    if token(&raw)? != "P5" {
        return Err(Error::invalid("pgm", "not a binary PGM (missing P5 magic)"));
    }
    let width: usize = token(&raw)?
        .parse()
        .map_err(|_| Error::invalid("pgm", "bad width"))?;
    let height: usize = token(&raw)?
        .parse()
        .map_err(|_| Error::invalid("pgm", "bad height"))?;
    let maxval: usize = token(&raw)?
        .parse()
        .map_err(|_| Error::invalid("pgm", "bad maxval"))?;
    if maxval == 0 || maxval > 255 {
        return Err(Error::invalid(
            "pgm",
            format!("unsupported maxval {maxval}"),
        ));
    }
    pos += 1; // single whitespace after maxval
    let need = width * height;
    if raw.len() < pos + need {
        return Err(Error::invalid(
            "pgm",
            format!("truncated payload: need {need}, have {}", raw.len() - pos),
        ));
    }
    let data: Vec<f32> = raw[pos..pos + need]
        .iter()
        .map(|&b| b as f32 / maxval as f32)
        .collect();
    GrayImage::from_data(width, height, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_image_up_to_quantization() {
        let img = GrayImage::from_data(3, 2, vec![0.0, 0.25, 0.5, 0.75, 1.0, 0.1]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back.width(), 3);
        assert_eq!(back.height(), 2);
        for (a, b) in img.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P5\n# a comment\n2 1\n255\n");
        buf.extend_from_slice(&[0u8, 255u8]);
        let img = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(img.at(0, 0), 0.0);
        assert_eq!(img.at(1, 0), 1.0);
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(read_pgm(&b"P2\n1 1\n255\n0"[..]).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"P5\n4 4\n255\n");
        buf.extend_from_slice(&[0u8; 3]);
        assert!(read_pgm(buf.as_slice()).is_err());
    }

    #[test]
    fn values_clamp_on_write() {
        let img = GrayImage::from_data(2, 1, vec![-0.5, 1.5]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back.at(0, 0), 0.0);
        assert_eq!(back.at(1, 0), 1.0);
    }
}
