//! Tiny data-parallel helper on `std::thread::scope` — no extra runtime
//! dependency for the score-matrix computation.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n`, in parallel across the machine's
/// cores, collecting results in index order.
///
/// `f` is called exactly once per index (work-stealing via an atomic
/// counter), so it may be expensive; it must be `Sync` because multiple
/// worker threads share it.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // SAFETY-free sharing: each worker writes disjoint slots; we hand out
    // slot ownership through a Mutex-free pattern by collecting into
    // per-thread vectors instead.
    let results: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    for chunk in results {
        for (i, value) in chunk {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_all_indices_in_order() {
        let out = parallel_map(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn each_index_visited_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
        let _ = parallel_map(500, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }
}
