//! Structured log events with severity levels.
//!
//! The study harness used to narrate itself with bare `eprintln!`; those
//! diagnostics vanished the moment the terminal scrolled. Events recorded
//! here land in the flight recorder's bounded buffer — exported alongside
//! the span tree (`--trace`) or as JSON Lines (`--events`) — *and* are
//! mirrored to stderr so interactive runs read exactly as before. A
//! disabled handle skips the recording but keeps the mirror: diagnostics
//! are never silently lost.

use serde::{Deserialize, Serialize};

use crate::trace::thread_lane;
use crate::Telemetry;

/// Event severity. `Debug` is recorded but not mirrored to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Verbose diagnostics; recorded, not mirrored.
    Debug,
    /// Normal progress narration.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// The operation failed.
    Error,
}

impl Level {
    /// Lower-case name, as used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Nanoseconds since the telemetry handle was created.
    pub ts_ns: u64,
    /// Trace lane of the emitting thread.
    pub thread: u64,
    /// Severity.
    pub level: Level,
    /// Human-readable message.
    pub message: String,
    /// Structured key-value payload.
    pub fields: Vec<(String, String)>,
}

impl Telemetry {
    /// Emits a structured event: recorded in the flight recorder when
    /// enabled, mirrored to stderr at `Info` and above either way.
    pub fn event(&self, level: Level, message: &str) {
        self.event_with(level, message, &[]);
    }

    /// [`Telemetry::event`] with structured fields.
    pub fn event_with(&self, level: Level, message: &str, fields: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            inner.trace.push_event(EventRecord {
                ts_ns: inner.trace.now_ns(),
                thread: thread_lane(),
                level,
                message: message.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
        if level >= Level::Info {
            if fields.is_empty() {
                eprintln!("{message}");
            } else {
                let payload: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                eprintln!("{message} ({})", payload.join(", "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_recorded_in_order_with_levels() {
        let t = Telemetry::enabled();
        t.event(Level::Debug, "setup");
        t.event_with(Level::Warn, "cell slow", &[("cell", "g0p4".to_string())]);
        let trace = t.trace_snapshot();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].level, Level::Debug);
        assert_eq!(trace.events[1].message, "cell slow");
        assert_eq!(
            trace.events[1].fields,
            vec![("cell".to_string(), "g0p4".to_string())]
        );
        assert!(trace.events[0].ts_ns <= trace.events[1].ts_ns);
    }

    #[test]
    fn disabled_handle_records_nothing_but_does_not_panic() {
        let t = Telemetry::disabled();
        t.event(Level::Error, "mirrored to stderr only");
        assert!(t.trace_snapshot().events.is_empty());
    }

    #[test]
    fn events_jsonl_is_one_parseable_line_per_event() {
        let t = Telemetry::enabled();
        t.event(Level::Info, "first");
        t.event_with(Level::Error, "second", &[("k", "v".to_string())]);
        let jsonl = t.trace_snapshot().events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed: EventRecord = serde_json::from_str(line).expect("valid json line");
            assert!(!parsed.message.is_empty());
        }
        let second: EventRecord = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.level, Level::Error);
    }

    #[test]
    fn level_order_supports_filtering() {
        assert!(Level::Error > Level::Warn);
        assert!(Level::Warn > Level::Info);
        assert!(Level::Info > Level::Debug);
        assert_eq!(Level::Warn.to_string(), "warn");
    }
}
