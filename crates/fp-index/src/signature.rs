//! Per-minutia binarized cylinder codes for the shortlist prefilter.
//!
//! Each template keeps one packed binary code per MCC cylinder (binarized at
//! the cylinder's *own* mean activation, so dense and sparse impressions
//! binarize comparably), restricted to the template's most reliable
//! minutiae. Two templates are compared by **local similarity sort**: every
//! probe cylinder finds its best Dice-style match among the gallery
//! cylinders, and only the strongest `lss_depth` local agreements are
//! averaged. A card-scan probe carrying hundreds of spurious minutiae still
//! scores its genuine live-scan mate highly — the spurious cylinders simply
//! never make the sorted prefix — where any pooled whole-template descriptor
//! would drown the overlap.
//!
//! The cylinders live in each minutia's own rotated frame, so the codes
//! inherit the MCC rotation/translation invariance; comparing a cylinder
//! pair is a handful of XOR+popcount words.

use fp_core::template::Template;
use fp_match::{MccMatcher, PreparableMatcher};

/// The packed per-cylinder binary codes of one template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CylinderCodes {
    /// `len * words_per` packed words, cylinder-major.
    words: Box<[u64]>,
    /// Set-bit count per cylinder.
    ones: Box<[u32]>,
    words_per: usize,
}

/// A borrowed, layout-agnostic view of one template's packed cylinder
/// codes: `len * words_per` little-endian `u64` words (cylinder-major)
/// plus the per-cylinder set-bit counts. Both [`CylinderCodes`] and the
/// structure-of-arrays [`crate::CodeArena`] expose their codes through
/// this view, so the scalar reference scorer and the blocked kernel are
/// provably reading the same bytes.
#[derive(Debug, Clone, Copy)]
pub struct CodeView<'a> {
    pub(crate) words: &'a [u64],
    pub(crate) ones: &'a [u32],
    pub(crate) words_per: usize,
}

impl<'a> CodeView<'a> {
    /// Number of coded cylinders.
    pub fn len(&self) -> usize {
        self.ones.len()
    }

    /// Whether the view holds no codes.
    pub fn is_empty(&self) -> bool {
        self.ones.is_empty()
    }

    /// Packed words per cylinder.
    pub fn words_per(&self) -> usize {
        self.words_per
    }

    /// The `i`-th cylinder's packed words and set-bit count.
    pub fn cylinder(&self, i: usize) -> (&'a [u64], u32) {
        (
            &self.words[i * self.words_per..(i + 1) * self.words_per],
            self.ones[i],
        )
    }
}

/// Reusable scratch for one stage-1 scoring pass: the per-probe-cylinder
/// local bests that local similarity sort selects from. Callers allocate
/// one per search and reuse it across every gallery entry, so neither the
/// scalar reference path nor the blocked kernel allocates per entry.
#[derive(Debug, Default)]
pub struct Stage1Scratch {
    pub(crate) bests: Vec<f64>,
}

impl Stage1Scratch {
    /// An empty scratch; buffers grow to the probe's cylinder count on
    /// first use and are reused afterwards.
    pub fn new() -> Stage1Scratch {
        Stage1Scratch::default()
    }
}

impl CylinderCodes {
    /// Extracts codes for the `max_cylinders` most reliable minutiae of
    /// `template` (ties broken by minutia order) that produced a valid
    /// cylinder. Every valid cylinder is binarized at its own mean cell
    /// activation. Empty and very sparse templates yield no codes; their
    /// [`similarity`](Self::similarity) against anything is zero, so the
    /// shortlist falls back to the bucket-vote channel alone.
    pub fn extract(mcc: &MccMatcher, template: &Template, max_cylinders: usize) -> CylinderCodes {
        let minutiae = template.minutiae();
        let mut order: Vec<usize> = (0..minutiae.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            minutiae[b]
                .reliability
                .partial_cmp(&minutiae[a].reliability)
                .expect("reliability is finite")
                .then(a.cmp(&b))
        });
        let mut keep = vec![false; minutiae.len()];
        for &i in order.iter().take(max_cylinders) {
            keep[i] = true;
        }

        let prepared = mcc.prepare(template);
        let mut words: Vec<u64> = Vec::new();
        let mut ones: Vec<u32> = Vec::new();
        let mut words_per = 0usize;
        for (i, (cells, valid)) in prepared.cylinders().enumerate() {
            if !valid || !keep.get(i).copied().unwrap_or(false) {
                continue;
            }
            words_per = cells.len().div_ceil(64);
            let base = words.len();
            words.resize(base + words_per, 0);
            let mut set = 0u32;
            let mean: f32 = cells.iter().sum::<f32>() / cells.len() as f32;
            for (cell, &v) in cells.iter().enumerate() {
                if v > mean {
                    words[base + cell / 64] |= 1u64 << (cell % 64);
                    set += 1;
                }
            }
            ones.push(set);
        }
        CylinderCodes {
            words: words.into_boxed_slice(),
            ones: ones.into_boxed_slice(),
            words_per,
        }
    }

    /// Reassembles codes from their raw packed parts: `ones.len()`
    /// cylinders of `words_per` little-endian words each, cylinder-major.
    /// Intended for tests, benches and (de)serialization — [`extract`]
    /// (Self::extract) is the production constructor.
    ///
    /// Panics unless `words.len() == ones.len() * words_per` and every
    /// `ones[i]` equals the popcount of its cylinder's words — the
    /// invariant both scoring kernels rely on (a pair is skipped exactly
    /// when its combined set-bit mass is zero).
    pub fn from_raw(words: Vec<u64>, ones: Vec<u32>, words_per: usize) -> CylinderCodes {
        assert_eq!(
            words.len(),
            ones.len() * words_per,
            "words must hold exactly words_per words per cylinder"
        );
        for (i, &set) in ones.iter().enumerate() {
            let actual: u32 = words[i * words_per..(i + 1) * words_per]
                .iter()
                .map(|w| w.count_ones())
                .sum();
            assert_eq!(set, actual, "ones[{i}] must equal its cylinder's popcount");
        }
        CylinderCodes {
            words: words.into_boxed_slice(),
            ones: ones.into_boxed_slice(),
            words_per,
        }
    }

    /// Number of coded cylinders.
    pub fn len(&self) -> usize {
        self.ones.len()
    }

    /// Whether the template produced no codes.
    pub fn is_empty(&self) -> bool {
        self.ones.is_empty()
    }

    /// A borrowed view of the packed codes (the common currency of the
    /// scalar reference scorer and the blocked [`crate::CodeArena`]
    /// kernel).
    pub fn view(&self) -> CodeView<'_> {
        CodeView {
            words: &self.words,
            ones: &self.ones,
            words_per: self.words_per,
        }
    }

    /// Local-similarity-sort score of this (probe) code set against a
    /// gallery code set: each probe cylinder takes its best Dice-style
    /// similarity `1 - hamming / (ones_p + ones_g)` over all gallery
    /// cylinders, and the strongest `max(1, min(len_p, len_g, lss_depth))`
    /// of those local bests are averaged — note the clamp: `lss_depth == 0`
    /// is treated as depth 1, so a caller that wants "no code channel"
    /// must not enroll codes rather than pass a zero depth
    /// ([`crate::IndexConfig`] rejects `lss_depth == 0` outright). In
    /// `[0, 1]`; 0 when either side is empty.
    pub fn similarity(&self, gallery: &CylinderCodes, lss_depth: usize) -> f64 {
        self.similarity_counted(gallery, lss_depth).0
    }

    /// [`similarity`](Self::similarity) plus the number of packed-`u64`
    /// Hamming word comparisons it performed — `max(words_p, words_g)` per
    /// cylinder pair actually XOR+popcounted (pairs whose combined set-bit
    /// mass is zero are skipped before touching any word). This is the
    /// true work measure the `index.search.hamming_ops` counter meters; the
    /// old per-gallery-entry tally undercounted by the whole
    /// cylinders² x words fan-out.
    ///
    /// Allocates a fresh [`Stage1Scratch`] per call; batch callers scoring
    /// many gallery entries should hold one scratch and use
    /// [`similarity_counted_scratch`](Self::similarity_counted_scratch).
    pub fn similarity_counted(&self, gallery: &CylinderCodes, lss_depth: usize) -> (f64, u64) {
        let mut scratch = Stage1Scratch::new();
        self.similarity_counted_scratch(gallery, lss_depth, &mut scratch)
    }

    /// [`similarity_counted`](Self::similarity_counted) with a
    /// caller-provided scratch, so scoring a whole gallery performs zero
    /// per-entry allocations. This is **the scalar reference path**: the
    /// blocked [`crate::CodeArena`] kernel is required (and property-
    /// tested) to be byte-identical to it.
    pub fn similarity_counted_scratch(
        &self,
        gallery: &CylinderCodes,
        lss_depth: usize,
        scratch: &mut Stage1Scratch,
    ) -> (f64, u64) {
        reference_similarity(&self.view(), &gallery.view(), lss_depth, scratch)
    }
}

/// The scalar reference scorer over borrowed code views — one probe code
/// set against one gallery code set, exactly the loop `similarity_counted`
/// has always run (per probe cylinder, the best Dice-style similarity over
/// every gallery cylinder; the strongest `max(1, min(len_p, len_g,
/// lss_depth))` bests averaged). Every optimized kernel is validated
/// against this function bit for bit.
pub(crate) fn reference_similarity(
    probe: &CodeView<'_>,
    gallery: &CodeView<'_>,
    lss_depth: usize,
    scratch: &mut Stage1Scratch,
) -> (f64, u64) {
    if probe.is_empty() || gallery.is_empty() {
        return (0.0, 0);
    }
    let mut word_ops = 0u64;
    let bests = &mut scratch.bests;
    bests.clear();
    for i in 0..probe.len() {
        let (pw, po) = probe.cylinder(i);
        let mut best = 0.0f64;
        for j in 0..gallery.len() {
            let (gw, go) = gallery.cylinder(j);
            let mass = po + go;
            if mass == 0 {
                continue;
            }
            word_ops += pw.len().max(gw.len()) as u64;
            let sim = 1.0 - f64::from(hamming(pw, gw)) / f64::from(mass);
            if sim > best {
                best = sim;
            }
        }
        bests.push(best);
    }
    let depth = probe.len().min(gallery.len()).min(lss_depth).max(1);
    sort_bests_desc(bests);
    (bests[..depth].iter().sum::<f64>() / depth as f64, word_ops)
}

/// Sorts local bests descending under [`f64::total_cmp`]. Real kernels
/// only ever produce finite bests (`1 - h/mass` over non-negative
/// integers, mass > 0), but a defective future kernel emitting a NaN must
/// degrade a score, never abort the search mid-run the way the previous
/// `partial_cmp(..).expect(..)` comparator did. `total_cmp` is a total
/// order agreeing with `partial_cmp` on all finite values, so this is
/// byte-identical on every input the shipping kernels can produce.
pub(crate) fn sort_bests_desc(bests: &mut [f64]) {
    bests.sort_unstable_by(|a, b| b.total_cmp(a));
}

/// Hamming distance between two packed codes. Codes of different widths
/// (templates prepared under different MCC configs) count every bit of the
/// excess words — an absent word on the narrower side reads as all-zero,
/// so each excess set bit is one disagreement. Public so the kernel
/// equivalence suite can pin the tail semantics directly.
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    let common = a.len().min(b.len());
    let mut distance = 0u32;
    for i in 0..common {
        distance += (a[i] ^ b[i]).count_ones();
    }
    for w in &a[common..] {
        distance += w.count_ones();
    }
    for w in &b[common..] {
        distance += w.count_ones();
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::geometry::{Direction, Point};
    use fp_core::minutia::{Minutia, MinutiaKind};
    use fp_core::rng::SeedTree;
    use fp_core::template::Template;
    use rand::Rng;

    fn template(seed: u64, n: usize) -> Template {
        let mut rng = SeedTree::new(seed).rng();
        let mut minutiae: Vec<Minutia> = Vec::new();
        let mut attempts = 0;
        while minutiae.len() < n && attempts < 10_000 {
            attempts += 1;
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
                continue;
            }
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                MinutiaKind::RidgeEnding,
                rng.gen::<f64>() * 0.5 + 0.5,
            ));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .unwrap()
    }

    fn codes(seed: u64, n: usize, cap: usize) -> CylinderCodes {
        CylinderCodes::extract(&MccMatcher::default(), &template(seed, n), cap)
    }

    #[test]
    fn self_similarity_is_one() {
        let c = codes(1, 30, 24);
        assert!(!c.is_empty());
        assert!(c.ones.iter().all(|&o| o > 0));
        assert_eq!(c.similarity(&c, 12), 1.0);
    }

    #[test]
    fn distinct_templates_score_below_one() {
        let a = codes(2, 30, 24);
        let b = codes(3, 30, 24);
        assert!(a.similarity(&b, 12) < 1.0);
    }

    #[test]
    fn genuine_mate_outranks_an_impostor() {
        // A rigidly moved copy of the template re-codes to (nearly) the same
        // cylinders; an unrelated template does not.
        let base = template(4, 30);
        let moved = base.transformed(&fp_core::geometry::RigidMotion::new(
            Direction::from_radians(0.3),
            fp_core::geometry::Vector::new(1.0, -0.5),
        ));
        let mcc = MccMatcher::default();
        let a = CylinderCodes::extract(&mcc, &base, 24);
        let b = CylinderCodes::extract(&mcc, &moved, 24);
        let imp = codes(5, 30, 24);
        assert!(a.similarity(&b, 12) > a.similarity(&imp, 12));
    }

    #[test]
    fn max_cylinders_caps_the_code_count() {
        let full = codes(6, 30, usize::MAX);
        let capped = codes(6, 30, 8);
        assert!(full.len() > 8);
        assert_eq!(capped.len(), 8);
    }

    #[test]
    fn empty_template_has_no_codes_and_scores_zero() {
        let mcc = MccMatcher::default();
        let empty = Template::builder(500.0).build().unwrap();
        let zero = CylinderCodes::extract(&mcc, &empty, 24);
        assert!(zero.is_empty());
        assert_eq!(zero.similarity(&zero, 12), 0.0);
        assert_eq!(zero.similarity(&codes(7, 25, 24), 12), 0.0);
        assert_eq!(codes(7, 25, 24).similarity(&zero, 12), 0.0);
    }

    #[test]
    fn counted_similarity_matches_and_meters_word_ops() {
        let a = codes(2, 30, 24);
        let b = codes(3, 30, 24);
        let (sim, ops) = a.similarity_counted(&b, 12);
        assert_eq!(sim, a.similarity(&b, 12));
        // Every cylinder pair with nonzero combined mass compares
        // `words_per` packed words (both sides share a width here).
        assert!(a.ones.iter().all(|&o| o > 0) && b.ones.iter().all(|&o| o > 0));
        assert_eq!(
            ops,
            (a.len() * b.len() * a.words_per) as u64,
            "word ops must count the full cylinder-pair fan-out"
        );
        // Empty sides never touch a word.
        let empty = CylinderCodes::extract(
            &MccMatcher::default(),
            &Template::builder(500.0).build().unwrap(),
            24,
        );
        assert_eq!(a.similarity_counted(&empty, 12), (0.0, 0));
        assert_eq!(empty.similarity_counted(&a, 12), (0.0, 0));
    }

    #[test]
    fn hamming_handles_width_mismatch() {
        assert_eq!(hamming(&[0b1011], &[]), 3);
        assert_eq!(hamming(&[], &[0b1011]), 3);
        assert_eq!(hamming(&[0b1011, u64::MAX], &[0b1001]), 65);
    }

    #[test]
    fn bests_sort_survives_nan_without_aborting() {
        // A defective kernel emitting NaN must never panic the sort (the
        // old partial_cmp comparator aborted the whole search). total_cmp
        // orders +NaN above +inf, so the ordering stays deterministic.
        let mut bests = vec![0.25, f64::NAN, 1.0, 0.0];
        sort_bests_desc(&mut bests);
        assert!(bests[0].is_nan());
        assert_eq!(&bests[1..], &[1.0, 0.25, 0.0]);
        // Finite-only inputs sort exactly as partial_cmp did.
        let mut finite = vec![0.25, 1.0, 0.0, 0.75];
        sort_bests_desc(&mut finite);
        assert_eq!(finite, vec![1.0, 0.75, 0.25, 0.0]);
    }

    #[test]
    fn from_raw_round_trips_extracted_codes() {
        let c = codes(11, 30, 24);
        let rebuilt = CylinderCodes::from_raw(c.words.to_vec(), c.ones.to_vec(), c.words_per);
        assert_eq!(rebuilt, c);
        assert_eq!(rebuilt.similarity(&c, 12), 1.0);
    }

    #[test]
    #[should_panic(expected = "popcount")]
    fn from_raw_rejects_inconsistent_ones() {
        let _ = CylinderCodes::from_raw(vec![0b111], vec![2], 1);
    }

    #[test]
    fn scratch_path_matches_the_allocating_path() {
        let a = codes(2, 30, 24);
        let b = codes(3, 30, 24);
        let mut scratch = Stage1Scratch::new();
        for depth in [1usize, 4, 12, 100] {
            assert_eq!(
                a.similarity_counted_scratch(&b, depth, &mut scratch),
                a.similarity_counted(&b, depth),
            );
        }
    }
}
