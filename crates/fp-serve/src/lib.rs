//! # fp-serve
//!
//! Cross-process sharded 1:N search: the scaling seam of `fp-index` (stage-1
//! channel scores in, one global fusion, exact per-shard re-rank out)
//! stretched over a process boundary, byte-identical to the in-process
//! result.
//!
//! The crate has four layers:
//!
//! * [`wire`] — a std-only, versioned, length-prefixed binary protocol
//!   (magic + version + frame type + request id + CRC32) with explicit
//!   little-endian encode/decode for templates, stage-1 score arrays and
//!   re-ranked candidates. Every `f64` travels as its IEEE-754 bit pattern,
//!   so remote scores are **bit-exact** copies of what the shard computed.
//!   No serde. Wire v3's `request_id` header field lets many requests ride
//!   one connection concurrently.
//! * [`mux`] — [`mux::MuxConn`]: the client half of multiplexing. Callers
//!   `begin` requests (fresh id, frame written) and `finish` them later;
//!   any number of begin/finish pairs from any number of threads overlap
//!   on one socket, and responses rejoin their callers by id no matter
//!   what order the server answers in.
//! * [`server`] — [`ShardServer`]: one process owning one
//!   [`fp_index::CandidateIndex`] behind a TCP listener. Each connection
//!   gets a reader thread; requests execute on a bounded server-wide
//!   worker pool with admission control — past the queue watermark a
//!   request is shed immediately with a typed `OVERLOADED` frame, never
//!   queued into the dark.
//! * [`coordinator`] — [`Coordinator`]: holds one multiplexed connection
//!   per shard, implements the same [`fp_index::ShardBackend`] seam as an
//!   in-process shard, pipelines stage-1 across shards (every request on
//!   the wire before the first response is awaited), runs the single
//!   global best-rank fusion locally, pipelines per-shard re-rank slices,
//!   and S-way merges under the same strict `(score desc, id asc)` order
//!   as [`fp_index::ShardedIndex`]. Per-request deadlines, bounded
//!   deterministic retry with exponential backoff, and typed
//!   [`fp_index::ShardError`]s: a dead shard fails the search loudly —
//!   truncated results are never returned. `&self` searches are
//!   thread-safe, so N client threads can drive one coordinator at once.
//!
//! [`proc`] rounds it out with child-process plumbing (`spawn_shard` /
//! [`proc::ShardChild`]) used by `study ext-scaling --remote-shards N`.
//!
//! ## Why byte-identical is cheap here
//!
//! Stage-1 channel scores are pure functions of (probe, entry, config);
//! features are recomputed shard-side from the probe template, and both
//! sides run the same code on the same bits. The only cross-shard
//! computation — best-rank fusion over the stitched global score arrays and
//! the final merge — happens exactly once, on the coordinator, using the
//! very same `fp_index::shard` helpers the in-process [`ShardedIndex`]
//! uses. Equality of results is therefore structural, not a numerical
//! accident; `study check-serve` audits it end-to-end anyway.
//!
//! [`ShardedIndex`]: fp_index::ShardedIndex

pub mod coordinator;
pub mod metrics;
pub mod mux;
pub mod proc;
pub mod server;
pub mod slowlog;
pub mod wire;

pub use coordinator::{Coordinator, RemoteShard, RemoteTrace, RetryPolicy};
pub use metrics::ServeMetrics;
pub use mux::{MuxConn, MuxError, Ticket};
pub use server::ShardServer;
pub use slowlog::{ShardBreakdown, SlowLog, SlowLogEntry};
pub use wire::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, ServerTiming, TraceContext,
    WireError,
};
