//! Compares two `BENCH_*.json` snapshots and gates on regressions.
//!
//! ```text
//! bench-diff BASELINE.json NEW.json [--fail-pct 15] [--warn-pct 5]
//! ```
//!
//! Exits non-zero when any bench present in both snapshots is slower than
//! the fail threshold (widened per bench to the baseline's own p95 noise),
//! or when a required baseline bench is missing from the new snapshot. By
//! default every baseline bench is required; a filtered bench run passes
//! repeatable `--require PREFIX` flags naming the slice of the baseline it
//! is answerable for.

use std::process::ExitCode;

use fp_bench::diff::{diff, render, BenchSnapshot};

const USAGE: &str =
    "usage: bench-diff BASELINE.json NEW.json [--fail-pct N] [--warn-pct N] [--require PREFIX]...";

struct Args {
    baseline: String,
    new: String,
    fail_pct: f64,
    warn_pct: f64,
    require: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut fail_pct = 15.0;
    let mut warn_pct = 5.0;
    let mut require = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-pct" => {
                fail_pct = args
                    .next()
                    .ok_or("--fail-pct needs a value")?
                    .parse()
                    .map_err(|e| format!("--fail-pct: {e}"))?;
            }
            "--warn-pct" => {
                warn_pct = args
                    .next()
                    .ok_or("--warn-pct needs a value")?
                    .parse()
                    .map_err(|e| format!("--warn-pct: {e}"))?;
            }
            "--require" => {
                require.push(args.next().ok_or("--require needs a bench-name prefix")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline, new] = positional.try_into().map_err(|_| USAGE.to_string())?;
    Ok(Args {
        baseline,
        new,
        fail_pct: fail_pct / 100.0,
        warn_pct: warn_pct / 100.0,
        require,
    })
}

fn load(path: &str) -> Result<BenchSnapshot, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchSnapshot::from_json(&raw).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (old, new) = match (load(&args.baseline), load(&args.new)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(msg), _) | (_, Err(msg)) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if old.host != new.host {
        eprintln!(
            "note: snapshots measured on different hosts ({} vs {}) — timings may not be comparable",
            old.host, new.host
        );
    }
    let report = diff(&old, &new, args.fail_pct, args.warn_pct);
    print!("{}", render(&report));
    let missing = report.missing_required(&args.require);
    let mut failed = false;
    if !missing.is_empty() {
        for name in &missing {
            eprintln!(
                "bench gate failed: required bench `{name}` is missing from {}",
                args.new
            );
        }
        failed = true;
    }
    if !report.passed() {
        eprintln!(
            "bench gate failed: {} regression(s) beyond the {:.0}% threshold",
            report.regressions(),
            args.fail_pct * 100.0
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
