//! Telemetry instruments for the capture pipeline.
//!
//! [`CaptureMetrics`] counts impressions per device and tallies the
//! acquisition loss channels (condition dropout, vignette losses, window
//! clipping) plus spurious detections. The `Default` bundle is disabled —
//! every record is a no-op — so the uninstrumented capture path pays
//! nothing. All values are pure functions of the seed: same-seed runs
//! report identical tallies.

use fp_core::ids::DeviceId;
use fp_telemetry::{Counter, Telemetry, ValueHistogram};

use crate::device::DEVICES;

/// Instruments for [`crate::Acquisition`] / [`crate::CaptureProtocol`].
#[derive(Debug, Clone, Default)]
pub struct CaptureMetrics {
    /// `sensor.d{d}.impressions` — impressions captured per device.
    impressions: [Counter; DEVICES.len()],
    /// `sensor.minutiae.dropped` — master minutiae lost to
    /// condition-dependent dropout (including the contact-edge band).
    dropped: Counter,
    /// `sensor.minutiae.vignetted` — minutiae eaten by the illumination
    /// vignette near the window edge.
    vignetted: Counter,
    /// `sensor.minutiae.clipped` — minutiae that landed outside the device
    /// capture window.
    clipped: Counter,
    /// `sensor.minutiae.spurious` — spurious minutiae added by dirt, ink
    /// blobs and bridged valleys.
    spurious: Counter,
    /// `sensor.minutiae_per_impression` — extracted template sizes.
    minutiae: ValueHistogram,
}

impl CaptureMetrics {
    /// Registers the capture instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> CaptureMetrics {
        CaptureMetrics {
            impressions: std::array::from_fn(|d| {
                telemetry.counter(&format!("sensor.d{d}.impressions"))
            }),
            dropped: telemetry.counter("sensor.minutiae.dropped"),
            vignetted: telemetry.counter("sensor.minutiae.vignetted"),
            clipped: telemetry.counter("sensor.minutiae.clipped"),
            spurious: telemetry.counter("sensor.minutiae.spurious"),
            minutiae: telemetry.value("sensor.minutiae_per_impression"),
        }
    }

    /// Records one finished impression (any capture path, including ink
    /// rescans).
    pub(crate) fn record_impression(&self, device: DeviceId, minutia_count: usize) {
        self.impressions[device.0 as usize].incr();
        self.minutiae.record(minutia_count as u64);
    }

    /// Records the loss tallies of one acquisition pass.
    pub(crate) fn record_losses(&self, dropped: u64, vignetted: u64, clipped: u64, spurious: u64) {
        self.dropped.add(dropped);
        self.vignetted.add(vignetted);
        self.clipped.add(clipped);
        self.spurious.add(spurious);
    }
}
