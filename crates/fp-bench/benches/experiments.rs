//! One benchmark per paper artifact: running `cargo bench --bench
//! experiments` regenerates every table and figure of Lugini et al. (DSN
//! 2013) on the shared bench study and reports the cost of each.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::{bench_config, bench_study};
use fp_study::dataset::Dataset;
use fp_study::experiments;
use fp_study::scores::{ScoreMatrix, StudyData};

fn experiments_benches(c: &mut Criterion) {
    let data = bench_study();

    let mut group = c.benchmark_group("paper_artifacts");
    group.sample_size(10);
    for id in experiments::ALL_IDS {
        // The extension analyses recompute whole score matrices; keep the
        // headline group to the paper's own tables and figures.
        if id.starts_with("ext-") {
            continue;
        }
        group.bench_function(id, |b| {
            b.iter(|| {
                let report =
                    experiments::run(black_box(id), black_box(&data)).expect("known experiment id");
                black_box(report.values);
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    for id in ["ext-habituation", "ext-prediction"] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let report =
                    experiments::run(black_box(id), black_box(&data)).expect("known experiment id");
                black_box(report.values);
            })
        });
    }
    group.finish();

    // The substrate the experiments consume: dataset capture and score-matrix
    // computation.
    let mut group = c.benchmark_group("study_generation");
    group.sample_size(10);
    let config = bench_config();
    group.bench_function("dataset_capture", |b| {
        b.iter(|| black_box(Dataset::generate(black_box(&config))))
    });
    let dataset = Dataset::generate(&config);
    group.bench_function("score_matrix_pairtable", |b| {
        let matcher = fp_match::PairTableMatcher::default();
        b.iter(|| black_box(ScoreMatrix::compute(black_box(&dataset), &matcher)))
    });
    group.bench_function("full_study", |b| {
        b.iter(|| black_box(StudyData::generate(black_box(&config))))
    });
    group.finish();
}

criterion_group!(benches, experiments_benches);
criterion_main!(benches);
