//! **Extension: identification scaling (1:N search throughput)** — how far
//! the two-stage candidate index stretches beyond the paper's 494-subject
//! cohort.
//!
//! The study's closed-set experiment asks *how accurate* identification is;
//! this one asks *how expensive*. Galleries of `subjects`, `5 x subjects`
//! and `10 x subjects` synthetic templates are enrolled into an
//! [`fp_index::CandidateIndex`] and probed with jittered second captures in
//! two perturbation profiles (same-device-like and cross-device-like, the
//! same distortion scales the sensor model applies). Each rung reports
//! indexed search throughput, an exhaustive-scan baseline on a probe
//! subsample, the speedup, shortlist recall, and rank-1 agreement with
//! brute force.
//!
//! Gallery templates here come from a cheap direct minutiae sampler rather
//! than the full synthesis/render/capture pipeline: the index only sees
//! minutiae, and a 10x ladder through the image pipeline would swamp the
//! experiment with rendering cost that has nothing to do with search.

use fp_core::dist::normal;
use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardedIndex};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::{Coordinator, RetryPolicy};
use fp_telemetry::Telemetry;
use rand::Rng;
use serde_json::json;

use crate::config::StudyConfig;
use crate::parallel::parallel_map_metered;
use crate::report::Report;

/// Gallery ladder: multiples of `config.subjects`.
const LADDER: [usize; 3] = [1, 5, 10];

/// Probes searched per rung (capped so the ladder stays wall-clock-bounded).
const MAX_PROBES: usize = 96;

/// Exhaustive-scan audits per rung (brute force is the expensive baseline).
const MAX_AUDITS: usize = 12;

/// One rung of the gallery ladder.
struct ScalingRow {
    gallery: usize,
    shortlist: usize,
    probes: usize,
    recall: f64,
    rank1: f64,
    audit_sampled: usize,
    audit_agreed: usize,
    build_seconds: f64,
    searches_per_second: f64,
    brute_searches_per_second: f64,
    /// Run fingerprint (hex) over exactly the rung's probe loop — the
    /// chain is snapshotted before the audits re-search the index, so
    /// sharded and remote rungs running the same probes must report the
    /// very same value.
    runfp: String,
}

/// One rung of the shard ladder (always over the top gallery rung).
struct ShardRow {
    shards: usize,
    probes: usize,
    recall: f64,
    build_seconds: f64,
    searches_per_second: f64,
    speedup_vs_1: f64,
    parity_checked: usize,
    parity_agreed: usize,
    /// Run fingerprint (hex) over the rung's probe loop; must equal the
    /// unsharded top rung's.
    runfp: String,
}

/// The cross-process rung: `remote_shards` child `serve-shard` processes
/// behind an `fp-serve` coordinator, always over the top gallery rung.
struct RemoteRow {
    shards: usize,
    probes: usize,
    recall: f64,
    build_seconds: f64,
    searches_per_second: f64,
    /// Parity audits against the unsharded top-rung index (full candidate
    /// lists: ids AND scores, in order).
    parity_checked: usize,
    parity_agreed: usize,
    /// The same audits against an in-process `ShardedIndex` with the same
    /// shard count — pins remote == in-process sharded == unsharded.
    parity_sharded_agreed: usize,
    /// Run fingerprint (hex) over the rung's probe loop; must equal both
    /// the unsharded top rung's and the in-process shard rows'.
    runfp: String,
}

/// Shard counts to run: powers of two up to `max`, plus `max` itself when
/// it is not a power of two. `max = 0` disables the ladder.
fn shard_ladder(max: usize) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut s = 1;
    while s <= max {
        ladder.push(s);
        s *= 2;
    }
    if max >= 1 && ladder.last() != Some(&max) {
        ladder.push(max);
    }
    ladder
}

/// A deterministic synthetic template with `n` well-spread minutiae.
/// Shared with the load harness (`ext_load`), which enrolls the same kind
/// of gallery.
pub(crate) fn synthetic_template(seeds: &SeedTree, id: u64, n: usize) -> Template {
    let mut rng = seeds.child(&[0x5C, id]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            1.0,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .expect("synthetic template is valid")
}

/// Perturbation profile of a probe capture.
#[derive(Clone, Copy)]
pub(crate) struct Profile {
    drop: f64,
    jitter_mm: f64,
    jitter_rad: f64,
    motion_mm: f64,
    motion_rad: f64,
}

/// Roughly a second capture on the same device.
pub(crate) const SAME_DEVICE: Profile = Profile {
    drop: 0.06,
    jitter_mm: 0.10,
    jitter_rad: 0.04,
    motion_mm: 0.8,
    motion_rad: 0.10,
};

/// Roughly a capture on a different device (heavier loss and distortion).
pub(crate) const CROSS_DEVICE: Profile = Profile {
    drop: 0.14,
    jitter_mm: 0.20,
    jitter_rad: 0.09,
    motion_mm: 1.4,
    motion_rad: 0.16,
};

/// A jittered re-capture of `template` under `profile`.
pub(crate) fn recapture(
    template: &Template,
    seeds: &SeedTree,
    id: u64,
    profile: Profile,
) -> Template {
    let mut rng = seeds.child(&[0x5D, id]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() < profile.drop {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + normal(&mut rng, 0.0, profile.jitter_mm),
                m.pos.y + normal(&mut rng, 0.0, profile.jitter_mm),
            ),
            m.direction
                .rotated(normal(&mut rng, 0.0, profile.jitter_rad)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(normal(&mut rng, 0.0, profile.motion_rad)),
        Vector::new(
            normal(&mut rng, 0.0, profile.motion_mm),
            normal(&mut rng, 0.0, profile.motion_mm),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .expect("recaptured template is valid")
        .transformed(&motion)
}

/// Runs the experiment.
pub fn run(config: &StudyConfig) -> Report {
    run_with(config, &Telemetry::disabled())
}

/// [`run`] with telemetry: the index's build/search instruments land in
/// `telemetry`. Accuracy numbers (recall, rank-1, audit agreement) are pure
/// functions of the seed; throughput numbers vary with the machine.
pub fn run_with(config: &StudyConfig, telemetry: &Telemetry) -> Report {
    let seeds = SeedTree::new(config.seed).child(&[0xE5]);
    let max_gallery = config.subjects * LADDER[LADDER.len() - 1];

    // One template pool, shared by every rung as a prefix: rung results at
    // size N are independent of the ladder above them.
    let pool: Vec<Template> = parallel_map_metered(max_gallery, telemetry, "scaling.pool", |i| {
        synthetic_template(&seeds, i as u64, 22 + i % 14)
    });

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut top_index: Option<CandidateIndex<PairTableMatcher>> = None;
    for multiple in LADDER {
        let gallery = config.subjects * multiple;
        let _span = telemetry.span_with(
            &format!("scaling.gallery{gallery}"),
            &[("gallery", gallery.to_string())],
        );
        let mut index =
            CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::scaled(gallery))
                .with_telemetry(telemetry)
                .with_run_seed(config.seed);
        let build_start = std::time::Instant::now();
        index.enroll_all(&pool[..gallery]);
        let build_seconds = build_start.elapsed().as_secs_f64();
        let shortlist = index.config().shortlist.min(gallery);

        // Probes spread over the whole gallery, alternating the two
        // perturbation profiles.
        let probes = gallery.min(MAX_PROBES);
        let stride = gallery / probes;
        let probe_of = |p: usize| -> (usize, Template) {
            let subject = p * stride;
            let profile = if p.is_multiple_of(2) {
                SAME_DEVICE
            } else {
                CROSS_DEVICE
            };
            (
                subject,
                recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile),
            )
        };

        let search_start = std::time::Instant::now();
        let outcomes: Vec<(bool, bool)> =
            parallel_map_metered(probes, telemetry, "scaling.search", |p| {
                let (subject, probe) = probe_of(p);
                let result = index.search(&probe);
                let rank = result.genuine_rank(subject as u32);
                (rank.is_some(), rank == Some(1))
            });
        let search_seconds = search_start.elapsed().as_secs_f64();
        let in_shortlist = outcomes.iter().filter(|(hit, _)| *hit).count();
        let rank1_hits = outcomes.iter().filter(|(_, r1)| *r1).count();
        // Snapshot the run fingerprint NOW: the audits below re-search the
        // index, and the rung's reported chain must cover exactly the
        // probe loop the sharded/remote rungs replay.
        let runfp = index.run_fingerprint().hex();

        // Exhaustive-scan baseline and agreement audit on a probe subsample.
        let audits = probes.min(MAX_AUDITS);
        let audit_stride = probes / audits;
        let brute_start = std::time::Instant::now();
        let agreed_flags: Vec<bool> =
            parallel_map_metered(audits, telemetry, "scaling.audit", |a| {
                let (_, probe) = probe_of(a * audit_stride);
                let exhaustive = index.brute_force(&probe);
                let indexed = index.search(&probe);
                indexed.best().map(|c| c.id) == exhaustive.best().map(|c| c.id)
            });
        let brute_seconds = brute_start.elapsed().as_secs_f64();
        let audit_agreed = agreed_flags.iter().filter(|&&ok| ok).count();

        rows.push(ScalingRow {
            gallery,
            shortlist,
            probes,
            recall: in_shortlist as f64 / probes as f64,
            rank1: rank1_hits as f64 / probes as f64,
            audit_sampled: audits,
            audit_agreed,
            build_seconds,
            searches_per_second: probes as f64 / search_seconds.max(1e-9),
            // Each audit also re-runs the indexed search; subtract its
            // (much smaller) cost estimate to keep the baseline honest.
            brute_searches_per_second: audits as f64
                / (brute_seconds - audits as f64 * search_seconds.max(1e-9) / probes as f64)
                    .max(1e-9),
            runfp,
        });
        if multiple == LADDER[LADDER.len() - 1] {
            top_index = Some(index);
        }
    }

    // Shard ladder over the top rung: same gallery, same config, same
    // probes — the sharded results are provably identical to the unsharded
    // index, so recall must match the top rung *exactly* and the parity
    // audit compares full candidate lists, not just rank-1.
    let mut shard_rows: Vec<ShardRow> = Vec::new();
    if config.shards >= 1 {
        let gallery = max_gallery;
        let unsharded = top_index.as_ref().expect("ladder is non-empty");
        let probes = gallery.min(MAX_PROBES);
        let stride = gallery / probes;
        let probe_of = |p: usize| -> (usize, Template) {
            let subject = p * stride;
            let profile = if p.is_multiple_of(2) {
                SAME_DEVICE
            } else {
                CROSS_DEVICE
            };
            (
                subject,
                recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile),
            )
        };
        for s in shard_ladder(config.shards) {
            let _span = telemetry.span_with(
                &format!("scaling.shards{s}"),
                &[("gallery", gallery.to_string()), ("shards", s.to_string())],
            );
            let mut sharded = ShardedIndex::with_config(
                PairTableMatcher::default(),
                IndexConfig::scaled(gallery),
                s,
            )
            .with_telemetry(telemetry)
            .with_run_seed(config.seed);
            let build_start = std::time::Instant::now();
            sharded.enroll_all(&pool[..gallery]);
            let build_seconds = build_start.elapsed().as_secs_f64();

            // Sequential probe loop: each search fans out across the shard
            // threads internally, so this measures per-search latency.
            let search_start = std::time::Instant::now();
            let mut in_shortlist = 0usize;
            for p in 0..probes {
                let (subject, probe) = probe_of(p);
                if sharded
                    .search(&probe)
                    .genuine_rank(subject as u32)
                    .is_some()
                {
                    in_shortlist += 1;
                }
            }
            let search_seconds = search_start.elapsed().as_secs_f64();
            let searches_per_second = probes as f64 / search_seconds.max(1e-9);
            // Snapshot before the parity audits re-search this index.
            let runfp = sharded.run_fingerprint().hex();

            // Exact-parity audit: full candidate lists (ids AND scores, in
            // order) against the unsharded top-rung index.
            let audits = probes.min(MAX_AUDITS);
            let audit_stride = probes / audits;
            let mut parity_agreed = 0usize;
            for a in 0..audits {
                let (_, probe) = probe_of(a * audit_stride);
                if sharded.search(&probe).candidates() == unsharded.search(&probe).candidates() {
                    parity_agreed += 1;
                }
            }

            let base = shard_rows
                .first()
                .map(|r| r.searches_per_second)
                .unwrap_or(searches_per_second);
            shard_rows.push(ShardRow {
                shards: s,
                probes,
                recall: in_shortlist as f64 / probes as f64,
                build_seconds,
                searches_per_second,
                speedup_vs_1: searches_per_second / base.max(1e-9),
                parity_checked: audits,
                parity_agreed,
                runfp,
            });
        }
    }

    // Cross-process rung: N `serve-shard` children over loopback behind a
    // coordinator, audited for byte-identical parity against both the
    // unsharded index and an in-process sharded index.
    let mut remote_rows: Vec<RemoteRow> = Vec::new();
    let mut remote_error: Option<String> = None;
    if config.remote_shards >= 1 {
        let gallery = max_gallery;
        let unsharded = top_index.as_ref().expect("ladder is non-empty");
        match remote_rung(config, telemetry, &pool, unsharded, &seeds, gallery) {
            Ok(row) => remote_rows.push(row),
            Err(e) => remote_error = Some(e),
        }
    }

    let mut body = format!(
        "identification scaling: gallery ladder x{:?} of {} subjects, \
         {MAX_PROBES} probes per rung (two capture-perturbation profiles)\n\n\
         {:<10}{:>10}{:>9}{:>10}{:>9}{:>12}{:>12}{:>10}\n",
        LADDER,
        config.subjects,
        "gallery",
        "shortlist",
        "build s",
        "recall",
        "rank-1",
        "search/s",
        "brute/s",
        "speedup"
    );
    for r in &rows {
        body.push_str(&format!(
            "{:<10}{:>10}{:>9.2}{:>10.3}{:>9.3}{:>12.1}{:>12.1}{:>10.1}\n",
            r.gallery,
            r.shortlist,
            r.build_seconds,
            r.recall,
            r.rank1,
            r.searches_per_second,
            r.brute_searches_per_second,
            r.searches_per_second / r.brute_searches_per_second.max(1e-9),
        ));
    }
    let last = rows.last().expect("ladder is non-empty");
    body.push_str(&format!(
        "\nat {} gallery entries the shortlist scores {} candidates exactly \
         ({:.0}x fewer exact comparisons than an exhaustive scan);\n\
         rank-1 matched brute force on {} of {} audited probes\n",
        last.gallery,
        last.shortlist,
        last.gallery as f64 / last.shortlist.max(1) as f64,
        rows.iter().map(|r| r.audit_agreed).sum::<usize>(),
        rows.iter().map(|r| r.audit_sampled).sum::<usize>(),
    ));
    if !shard_rows.is_empty() {
        body.push_str(&format!(
            "\nshard ladder over the {}-entry gallery (per-shard stage-1 + \
             stage-2 threads, one global fusion):\n\
             {:<8}{:>9}{:>10}{:>12}{:>10}{:>10}\n",
            max_gallery, "shards", "build s", "recall", "search/s", "speedup", "parity"
        ));
        for r in &shard_rows {
            body.push_str(&format!(
                "{:<8}{:>9.2}{:>10.3}{:>12.1}{:>10.2}{:>7}/{}\n",
                r.shards,
                r.build_seconds,
                r.recall,
                r.searches_per_second,
                r.speedup_vs_1,
                r.parity_agreed,
                r.parity_checked,
            ));
        }
    }

    if !remote_rows.is_empty() {
        body.push_str(&format!(
            "\ncross-process rung over the {max_gallery}-entry gallery \
             (serve-shard children over loopback, fp-serve wire protocol):\n\
             {:<8}{:>9}{:>10}{:>12}{:>17}{:>17}\n",
            "shards", "build s", "recall", "search/s", "parity(unshard)", "parity(sharded)"
        ));
        for r in &remote_rows {
            body.push_str(&format!(
                "{:<8}{:>9.2}{:>10.3}{:>12.1}{:>14}/{}{:>14}/{}\n",
                r.shards,
                r.build_seconds,
                r.recall,
                r.searches_per_second,
                r.parity_agreed,
                r.parity_checked,
                r.parity_sharded_agreed,
                r.parity_checked,
            ));
        }
    }
    if let Some(e) = &remote_error {
        body.push_str(&format!("\ncross-process rung FAILED: {e}\n"));
    }
    body.push_str(&format!(
        "\nrun fingerprint (top rung, seed {}): {} — sharded and remote \
         rungs over the same probes must report this exact value\n",
        config.seed, last.runfp
    ));

    Report::new(
        "ext-scaling",
        "1:N search throughput and recall vs gallery size",
        body,
        json!({
            "base_subjects": config.subjects,
            "ladder": LADDER,
            "shards": config.shards,
            "remote_shards": config.remote_shards,
            "seed": config.seed,
            "remote_error": remote_error,
            "remote_rows": remote_rows
                .iter()
                .map(|r| json!({
                    "shards": r.shards,
                    "probes": r.probes,
                    "recall": r.recall,
                    "build_seconds": r.build_seconds,
                    "searches_per_second": r.searches_per_second,
                    "parity_checked": r.parity_checked,
                    "parity_agreed": r.parity_agreed,
                    "parity_sharded_agreed": r.parity_sharded_agreed,
                    "runfp": r.runfp,
                }))
                .collect::<Vec<_>>(),
            "shard_rows": shard_rows
                .iter()
                .map(|r| json!({
                    "shards": r.shards,
                    "probes": r.probes,
                    "recall": r.recall,
                    "build_seconds": r.build_seconds,
                    "searches_per_second": r.searches_per_second,
                    "speedup_vs_1": r.speedup_vs_1,
                    "parity_checked": r.parity_checked,
                    "parity_agreed": r.parity_agreed,
                    "runfp": r.runfp,
                }))
                .collect::<Vec<_>>(),
            "rows": rows
                .iter()
                .map(|r| json!({
                    "gallery": r.gallery,
                    "shortlist": r.shortlist,
                    "probes": r.probes,
                    "recall": r.recall,
                    "rank1": r.rank1,
                    "audit_sampled": r.audit_sampled,
                    "audit_agreed": r.audit_agreed,
                    "build_seconds": r.build_seconds,
                    "searches_per_second": r.searches_per_second,
                    "brute_searches_per_second": r.brute_searches_per_second,
                    "runfp": r.runfp,
                }))
                .collect::<Vec<_>>(),
        }),
    )
}

/// Runs the cross-process rung: spawns `config.remote_shards` `serve-shard`
/// children of this very binary (`FP_SERVE_SHARD_EXE` overrides the
/// executable, e.g. for tests driving a library build), enrolls the top
/// gallery rung through an `fp-serve` [`Coordinator`], and audits full
/// candidate-list parity against both the unsharded index and an
/// in-process [`ShardedIndex`] with the same shard count.
///
/// Children are killed on every exit path ([`fp_serve::proc::ShardChild`]
/// kills on drop); errors are returned as strings so a failed rung shows up
/// loudly in the report (and fails `check-serve`) without aborting the
/// in-process ladder results.
fn remote_rung(
    config: &StudyConfig,
    telemetry: &Telemetry,
    pool: &[Template],
    unsharded: &CandidateIndex<PairTableMatcher>,
    seeds: &SeedTree,
    gallery: usize,
) -> Result<RemoteRow, String> {
    use std::time::{Duration, Instant};

    let s = config.remote_shards;
    let _span = telemetry.span_with(
        &format!("scaling.remote{s}"),
        &[("gallery", gallery.to_string()), ("shards", s.to_string())],
    );
    let exe = match std::env::var_os("FP_SERVE_SHARD_EXE") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let mut children = Vec::with_capacity(s);
    for _ in 0..s {
        children.push(
            spawn_shard(&exe, &["serve-shard"])
                .map_err(|e| format!("spawn {exe:?} serve-shard: {e}"))?,
        );
    }
    let addrs: Vec<std::net::SocketAddr> = children.iter().map(|c| c.addr).collect();

    let index_config = IndexConfig::scaled(gallery);
    let mut remote = Coordinator::connect(
        &addrs,
        index_config,
        Duration::from_secs(60),
        RetryPolicy::default(),
    )
    .map_err(|e| e.to_string())?
    .with_telemetry(telemetry)
    .with_run_seed(config.seed);

    let build_start = Instant::now();
    remote
        .enroll_all(&pool[..gallery])
        .map_err(|e| e.to_string())?;
    let build_seconds = build_start.elapsed().as_secs_f64();

    // The in-process sharded reference at the same shard count: the audit
    // pins remote == in-process sharded == unsharded, full lists.
    let mut sharded = ShardedIndex::with_config(PairTableMatcher::default(), index_config, s);
    sharded.enroll_all(&pool[..gallery]);

    let probes = gallery.min(MAX_PROBES);
    let stride = gallery / probes;
    let probe_of = |p: usize| -> (usize, Template) {
        let subject = p * stride;
        let profile = if p.is_multiple_of(2) {
            SAME_DEVICE
        } else {
            CROSS_DEVICE
        };
        (
            subject,
            recapture(&pool[subject], seeds, (gallery + subject) as u64, profile),
        )
    };

    let search_start = Instant::now();
    let mut in_shortlist = 0usize;
    for p in 0..probes {
        let (subject, probe) = probe_of(p);
        let result = remote.search(&probe).map_err(|e| e.to_string())?;
        if result.genuine_rank(subject as u32).is_some() {
            in_shortlist += 1;
        }
    }
    let search_seconds = search_start.elapsed().as_secs_f64();
    // Snapshot before the parity audits, then scrape every shard's served
    // chain: a shard whose recorded chain disagrees with what the
    // coordinator decoded fails the whole rung loudly.
    let runfp = remote.run_fingerprint().hex();
    remote
        .verify_fingerprints()
        .map_err(|e| format!("fingerprint verification: {e}"))?;

    let audits = probes.min(MAX_AUDITS);
    let audit_stride = probes / audits;
    let mut parity_agreed = 0usize;
    let mut parity_sharded_agreed = 0usize;
    for a in 0..audits {
        let (_, probe) = probe_of(a * audit_stride);
        let remote_result = remote.search(&probe).map_err(|e| e.to_string())?;
        if remote_result.candidates() == unsharded.search(&probe).candidates() {
            parity_agreed += 1;
        }
        if remote_result.candidates() == sharded.search(&probe).candidates() {
            parity_sharded_agreed += 1;
        }
    }

    // Clean wire-level shutdown, then reap; ShardChild kills stragglers.
    let _ = remote.shutdown_all();
    for child in &mut children {
        child.wait_exit(Duration::from_secs(5));
    }

    Ok(RemoteRow {
        shards: s,
        probes,
        recall: in_shortlist as f64 / probes as f64,
        build_seconds,
        searches_per_second: probes as f64 / search_seconds.max(1e-9),
        parity_checked: audits,
        parity_agreed,
        parity_sharded_agreed,
        runfp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Report {
        run(&StudyConfig::builder()
            .subjects(12)
            .seed(9)
            .impostors_per_cell(10)
            .build())
    }

    #[test]
    fn ladder_has_three_rungs_with_expected_sizes() {
        let r = tiny();
        let rows = r.values["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0]["gallery"], 12);
        assert_eq!(rows[1]["gallery"], 60);
        assert_eq!(rows[2]["gallery"], 120);
    }

    #[test]
    fn recall_and_rank1_are_high_at_small_scale() {
        // Every rung's shortlist (min 48) covers these tiny galleries
        // entirely except the last; recall must stay near-perfect and the
        // audits must agree with brute force.
        let r = tiny();
        for row in r.values["rows"].as_array().unwrap() {
            assert!(row["recall"].as_f64().unwrap() >= 0.97, "{row}");
            assert!(row["rank1"].as_f64().unwrap() >= 0.9, "{row}");
            assert_eq!(row["audit_agreed"], row["audit_sampled"], "{row}");
        }
    }

    #[test]
    fn shard_ladder_is_off_by_default_and_spans_powers_of_two() {
        let r = tiny();
        assert_eq!(r.values["shards"], 0);
        assert!(r.values["shard_rows"].as_array().unwrap().is_empty());
        assert_eq!(r.values["remote_shards"], 0);
        assert!(r.values["remote_rows"].as_array().unwrap().is_empty());
        assert!(r.values["remote_error"].is_null());
        assert_eq!(shard_ladder(0), Vec::<usize>::new());
        assert_eq!(shard_ladder(1), vec![1]);
        assert_eq!(shard_ladder(4), vec![1, 2, 4]);
        assert_eq!(shard_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(shard_ladder(6), vec![1, 2, 4, 6]);
    }

    #[test]
    fn shard_rows_show_exact_parity_with_the_unsharded_index() {
        let r = run(&StudyConfig::builder()
            .subjects(12)
            .seed(9)
            .impostors_per_cell(10)
            .shards(4)
            .build());
        let rows = r.values["rows"].as_array().unwrap();
        let top_recall = rows.last().unwrap()["recall"].as_f64().unwrap();
        let top_runfp = rows.last().unwrap()["runfp"].as_str().unwrap();
        assert_eq!(top_runfp.len(), 16, "runfp is 16 hex digits: {top_runfp}");
        let shard_rows = r.values["shard_rows"].as_array().unwrap();
        assert_eq!(shard_rows.len(), 3); // shards 1, 2, 4
        for (i, row) in shard_rows.iter().enumerate() {
            assert_eq!(row["shards"], [1, 2, 4][i] as u64, "{row}");
            // Sharded search is provably identical to unsharded: every
            // audited candidate list must match and recall must equal the
            // top rung's recall exactly (same probes, same budget).
            assert_eq!(row["parity_agreed"], row["parity_checked"], "{row}");
            assert!(row["parity_checked"].as_u64().unwrap() > 0, "{row}");
            assert_eq!(row["recall"].as_f64().unwrap(), top_recall, "{row}");
            // The O(1) parity proof: same probes, same budget, same seed
            // ⇒ the same run-fingerprint chain, whatever the shard count.
            assert_eq!(row["runfp"].as_str().unwrap(), top_runfp, "{row}");
        }
    }

    #[test]
    fn accuracy_fields_are_deterministic() {
        let a = tiny();
        let b = tiny();
        let rows_a = a.values["rows"].as_array().unwrap();
        let rows_b = b.values["rows"].as_array().unwrap();
        for (ra, rb) in rows_a.iter().zip(rows_b) {
            for key in [
                "gallery",
                "shortlist",
                "probes",
                "recall",
                "rank1",
                "audit_agreed",
                "runfp",
            ] {
                assert_eq!(ra[key], rb[key], "{key}");
            }
        }
    }
}
