//! Zhang–Suen skeletonization of binary ridge maps.

use crate::binarize::BinaryImage;

/// Returns the 8-neighbourhood of `(x, y)` in the Zhang–Suen order
/// P2..P9 (N, NE, E, SE, S, SW, W, NW).
#[inline]
fn neighbours(img: &BinaryImage, x: isize, y: isize) -> [bool; 8] {
    [
        img.at(x, y - 1),
        img.at(x + 1, y - 1),
        img.at(x + 1, y),
        img.at(x + 1, y + 1),
        img.at(x, y + 1),
        img.at(x - 1, y + 1),
        img.at(x - 1, y),
        img.at(x - 1, y - 1),
    ]
}

/// Number of 0→1 transitions around the neighbourhood ring.
#[inline]
fn transitions(n: &[bool; 8]) -> usize {
    let mut count = 0;
    for i in 0..8 {
        if !n[i] && n[(i + 1) % 8] {
            count += 1;
        }
    }
    count
}

/// Thins a binary ridge map to a one-pixel-wide skeleton using the
/// Zhang–Suen (1984) two-subiteration algorithm.
pub fn zhang_suen(input: &BinaryImage) -> BinaryImage {
    let (w, h) = (input.width(), input.height());
    let mut img = input.clone();
    let mut changed = true;
    let mut to_clear: Vec<(usize, usize)> = Vec::new();
    while changed {
        changed = false;
        for phase in 0..2 {
            to_clear.clear();
            for y in 0..h {
                for x in 0..w {
                    if !img.at(x as isize, y as isize) {
                        continue;
                    }
                    let n = neighbours(&img, x as isize, y as isize);
                    let b: usize = n.iter().filter(|&&v| v).count();
                    if !(2..=6).contains(&b) || transitions(&n) != 1 {
                        continue;
                    }
                    // n = [P2, P3, P4, P5, P6, P7, P8, P9]
                    let (c1, c2) = if phase == 0 {
                        // P2*P4*P6 == 0  and  P4*P6*P8 == 0
                        (n[0] && n[2] && n[4], n[2] && n[4] && n[6])
                    } else {
                        // P2*P4*P8 == 0  and  P2*P6*P8 == 0
                        (n[0] && n[2] && n[6], n[0] && n[4] && n[6])
                    };
                    if !c1 && !c2 {
                        to_clear.push((x, y));
                    }
                }
            }
            if !to_clear.is_empty() {
                changed = true;
                for &(x, y) in &to_clear {
                    img.set(x, y, false);
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&str]) -> BinaryImage {
        let h = rows.len();
        let w = rows[0].len();
        let mut data = Vec::with_capacity(w * h);
        for r in rows {
            for c in r.chars() {
                data.push(c == '#');
            }
        }
        BinaryImage::from_data(w, h, data)
    }

    #[test]
    fn thick_horizontal_bar_thins_to_a_line() {
        let img = from_rows(&[
            "..........",
            ".########.",
            ".########.",
            ".########.",
            ".########.",
            "..........",
        ]);
        let skel = zhang_suen(&img);
        // The skeleton is one pixel thick; bar ends may erode, but the
        // central columns survive with exactly one pixel each.
        let mut singles = 0;
        for x in 2..8 {
            let count = (0..6).filter(|&y| skel.at(x, y)).count();
            assert!(count <= 1, "column {x} has {count} skeleton pixels");
            singles += count;
        }
        assert!(singles >= 4, "only {singles} skeleton columns survived");
        assert!(skel.count_ones() < img.count_ones() / 2);
    }

    #[test]
    fn single_pixel_line_is_stable() {
        let img = from_rows(&["......", ".####.", "......"]);
        let skel = zhang_suen(&img);
        assert_eq!(skel.count_ones(), img.count_ones());
    }

    #[test]
    fn empty_image_stays_empty() {
        let img = from_rows(&["....", "....", "...."]);
        assert_eq!(zhang_suen(&img).count_ones(), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // pixel indices mirror the grid
    fn skeleton_is_connected_for_l_shape() {
        let img = from_rows(&[
            "........", ".###....", ".###....", ".######.", ".######.", "........",
        ]);
        let skel = zhang_suen(&img);
        assert!(skel.count_ones() >= 4, "skeleton vanished");
        // Flood fill from any skeleton pixel reaches all skeleton pixels.
        let mut seen = [false; 8 * 6];
        let start = (0..8 * 6)
            .find(|i| skel.data()[*i])
            .expect("nonempty skeleton");
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(i) = stack.pop() {
            let (x, y) = ((i % 8) as isize, (i / 8) as isize);
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let (nx, ny) = (x + dx, y + dy);
                    if skel.at(nx, ny) {
                        let j = ny as usize * 8 + nx as usize;
                        if !seen[j] {
                            seen[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        for i in 0..8 * 6 {
            if skel.data()[i] {
                assert!(seen[i], "skeleton disconnected at {i}");
            }
        }
    }
}
