//! Run fingerprints: an incremental, seeded 64-bit hash chain (RUNFP).
//!
//! The study's cross-process honesty checks used to be heavyweight full
//! candidate-list compares that cannot run on every search. A RUNFP chain
//! compresses the *behavior* of a run — config, seed, and every search's
//! ordered candidate list `(id, score, rank)` with scores folded as raw
//! `f64` bits — into a single `u64` that two independent executions can
//! compare in O(1). Sharded and unsharded searches fold the same merged
//! candidate lists in the same global-fusion order, so exactness of the
//! distributed index becomes a single integer equality.
//!
//! Everything here is std-only: the mix is an xxhash/splitmix-style
//! multiply-xor-shift avalanche, not a cryptographic MAC. It detects
//! drift (a shard scoring differently, a forged score bit, a reordered
//! candidate), not adversaries.
//!
//! Two layers:
//!
//! * [`FingerprintChain`] — a pure value type. Folding is order-dependent:
//!   `fold_u64(a); fold_u64(b)` and `fold_u64(b); fold_u64(a)` diverge.
//!   Use one chain per logical unit (one search, one config block).
//! * [`RunFingerprint`] — a cheap-to-clone shared accumulator combining
//!   many per-search chain values **commutatively** (wrapping add of
//!   avalanched values), so concurrent searches on different threads
//!   reach the same cumulative value regardless of interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version tag folded into every chain; bump when fold semantics change.
pub const RUNFP_VERSION: u64 = 1;

/// Domain-separation tag: the ASCII bytes of `"RUNFP_V1"`.
const RUNFP_TAG: u64 = u64::from_le_bytes(*b"RUNFP_V1");

/// One multiply-xor-shift round folding `word` into `state`.
///
/// Constants are the splitmix64 finalizer's; the rotate decorrelates
/// consecutive words before the avalanche so `fold(a); fold(b)` and
/// `fold(b); fold(a)` diverge.
#[inline]
pub(crate) fn mix(state: u64, word: u64) -> u64 {
    let mut x = state
        .rotate_left(27)
        .wrapping_add(word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Full avalanche of a single word (splitmix64 finalizer). Used when
/// combining already-chained values commutatively.
#[inline]
fn avalanche(word: u64) -> u64 {
    mix(RUNFP_TAG, word)
}

/// Anything that can fold itself into a [`FingerprintChain`].
///
/// Implementations must be deterministic and fold every behavior-relevant
/// field in a fixed documented order; logging/debug/output options must be
/// excluded so cosmetic flags cannot change a fingerprint.
pub trait Fingerprinted {
    /// Folds this value's canonical encoding into `chain`.
    fn fold_into(&self, chain: &mut FingerprintChain);
}

impl Fingerprinted for u64 {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(*self);
    }
}

impl Fingerprinted for u32 {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(u64::from(*self));
    }
}

impl Fingerprinted for usize {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(*self as u64);
    }
}

impl Fingerprinted for f64 {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_f64(*self);
    }
}

impl Fingerprinted for str {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_str(self);
    }
}

impl<T: Fingerprinted> Fingerprinted for [T] {
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(self.len() as u64);
        for item in self {
            item.fold_into(chain);
        }
    }
}

/// An incremental seeded hash chain. `Copy`-cheap; order-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintChain {
    state: u64,
    folds: u64,
}

impl Default for FingerprintChain {
    fn default() -> FingerprintChain {
        FingerprintChain::new(0)
    }
}

impl FingerprintChain {
    /// A fresh chain: the tag, format version and `seed` are pre-folded,
    /// so two runs with different seeds diverge from the first word.
    pub fn new(seed: u64) -> FingerprintChain {
        let mut chain = FingerprintChain {
            state: RUNFP_TAG,
            folds: 0,
        };
        chain.fold_u64(RUNFP_VERSION);
        chain.fold_u64(seed);
        chain
    }

    /// Folds one raw word.
    #[inline]
    pub fn fold_u64(&mut self, word: u64) {
        self.state = mix(self.state, word);
        self.folds += 1;
    }

    /// Folds an `f64` as its raw IEEE-754 bits (no rounding, `-0.0` and
    /// `0.0` are distinct, every NaN payload is distinct).
    #[inline]
    pub fn fold_f64(&mut self, value: f64) {
        self.fold_u64(value.to_bits());
    }

    /// Folds a string: length first, then bytes in 8-byte little-endian
    /// words (zero-padded tail).
    pub fn fold_str(&mut self, s: &str) {
        self.fold_u64(s.len() as u64);
        for word in s.as_bytes().chunks(8) {
            let mut buf = [0u8; 8];
            buf[..word.len()].copy_from_slice(word);
            self.fold_u64(u64::from_le_bytes(buf));
        }
    }

    /// Folds any [`Fingerprinted`] value.
    #[inline]
    pub fn fold<T: Fingerprinted + ?Sized>(&mut self, item: &T) -> &mut Self {
        item.fold_into(self);
        self
    }

    /// The chain's current fingerprint: a final avalanche over the state
    /// and the fold count (so a truncated chain never collides with its
    /// own prefix). Non-destructive; folding may continue afterwards.
    pub fn value(&self) -> u64 {
        mix(self.state, self.folds)
    }

    /// Number of words folded so far.
    pub fn folds(&self) -> u64 {
        self.folds
    }
}

/// A point-in-time view of a [`RunFingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FingerprintSnapshot {
    /// The cumulative fingerprint.
    pub value: u64,
    /// Number of per-search chains recorded.
    pub searches: u64,
}

impl FingerprintSnapshot {
    /// The fingerprint as a fixed-width lowercase hex string — the wire
    /// and JSON representation (JSON numbers cannot hold all `u64`s).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.value)
    }
}

#[derive(Debug, Default)]
struct RunInner {
    base_state: u64,
    base_folds: u64,
    /// Commutative accumulator: wrapping sum of avalanched per-search
    /// chain values. `fetch_add` wraps, so thread interleaving is
    /// irrelevant — 8 workers and a single thread reach the same value.
    acc: AtomicU64,
    count: AtomicU64,
}

/// A shared cumulative run fingerprint.
///
/// Clones share state (like [`crate::Telemetry`]). Per-search chains are
/// started from a fixed base (seed + config) via [`RunFingerprint::begin`]
/// and folded back in with [`RunFingerprint::record`]; the cumulative
/// combine is commutative, so the final value is independent of the order
/// in which concurrent searches complete.
#[derive(Debug, Clone, Default)]
pub struct RunFingerprint {
    inner: Arc<RunInner>,
}

impl RunFingerprint {
    /// A fresh accumulator whose per-search chains all start from `base`
    /// (typically `FingerprintChain::new(seed)` with the index config
    /// folded in).
    pub fn new(base: FingerprintChain) -> RunFingerprint {
        RunFingerprint {
            inner: Arc::new(RunInner {
                base_state: base.state,
                base_folds: base.folds,
                acc: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// The base chain shared by every per-search chain.
    pub fn base(&self) -> FingerprintChain {
        FingerprintChain {
            state: self.inner.base_state,
            folds: self.inner.base_folds,
        }
    }

    /// Starts a per-search chain at the base.
    pub fn begin(&self) -> FingerprintChain {
        self.base()
    }

    /// Records a completed per-search chain and returns its value.
    pub fn record(&self, chain: &FingerprintChain) -> u64 {
        let value = chain.value();
        self.inner
            .acc
            .fetch_add(avalanche(value), Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Folds `item` into a fresh per-search chain and records it.
    pub fn record_item<T: Fingerprinted + ?Sized>(&self, item: &T) -> u64 {
        let mut chain = self.begin();
        chain.fold(item);
        self.record(&chain)
    }

    /// Number of recorded searches.
    pub fn searches(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// The cumulative fingerprint: the base chain folded with the search
    /// count and the commutative accumulator.
    pub fn value(&self) -> u64 {
        let mut chain = self.base();
        chain.fold_u64(self.inner.count.load(Ordering::Relaxed));
        chain.fold_u64(self.inner.acc.load(Ordering::Relaxed));
        chain.value()
    }

    /// A consistent snapshot (`value`, `searches`).
    pub fn snapshot(&self) -> FingerprintSnapshot {
        FingerprintSnapshot {
            value: self.value(),
            searches: self.searches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_deterministic() {
        let mut a = FingerprintChain::new(7);
        let mut b = FingerprintChain::new(7);
        for w in [1u64, 2, 3, u64::MAX] {
            a.fold_u64(w);
            b.fold_u64(w);
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.folds(), 6); // version + seed + 4 words
    }

    #[test]
    fn seed_changes_everything() {
        assert_ne!(
            FingerprintChain::new(1).value(),
            FingerprintChain::new(2).value()
        );
    }

    #[test]
    fn fold_order_matters_within_a_chain() {
        let mut ab = FingerprintChain::new(0);
        ab.fold_u64(1);
        ab.fold_u64(2);
        let mut ba = FingerprintChain::new(0);
        ba.fold_u64(2);
        ba.fold_u64(1);
        assert_ne!(ab.value(), ba.value());
    }

    #[test]
    fn prefix_never_matches_extension() {
        let mut chain = FingerprintChain::new(0);
        chain.fold_u64(42);
        let short = chain.value();
        chain.fold_u64(0);
        assert_ne!(short, chain.value(), "folding a zero must still move");
    }

    #[test]
    fn f64_folds_raw_bits() {
        let mut pos = FingerprintChain::new(0);
        pos.fold_f64(0.0);
        let mut neg = FingerprintChain::new(0);
        neg.fold_f64(-0.0);
        assert_ne!(pos.value(), neg.value());
    }

    #[test]
    fn strings_fold_length_then_bytes() {
        let mut a = FingerprintChain::new(0);
        a.fold_str("ab");
        let mut b = FingerprintChain::new(0);
        b.fold_str("ab\0");
        // Same padded words, different length prefix.
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn slices_fold_length_prefixed() {
        let mut a = FingerprintChain::new(0);
        a.fold(&[1u64, 2][..]);
        let mut b = FingerprintChain::new(0);
        b.fold(&[1u64, 2, 0][..]);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn run_fingerprint_is_order_independent() {
        let base = FingerprintChain::new(9);
        let forward = RunFingerprint::new(base);
        let backward = RunFingerprint::new(base);
        let searches: Vec<u64> = (0..32).collect();
        for &s in &searches {
            forward.record_item(&s);
        }
        for &s in searches.iter().rev() {
            backward.record_item(&s);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
        assert_eq!(forward.searches(), 32);
    }

    #[test]
    fn run_fingerprint_is_thread_deterministic() {
        let base = FingerprintChain::new(3);
        let sequential = RunFingerprint::new(base);
        for s in 0..64u64 {
            sequential.record_item(&s);
        }
        let parallel = RunFingerprint::new(base);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let handle = parallel.clone();
                scope.spawn(move || {
                    for s in (t * 8)..(t * 8 + 8) {
                        handle.record_item(&s);
                    }
                });
            }
        });
        assert_eq!(sequential.snapshot(), parallel.snapshot());
    }

    #[test]
    fn different_search_sets_diverge() {
        let base = FingerprintChain::new(0);
        let a = RunFingerprint::new(base);
        let b = RunFingerprint::new(base);
        a.record_item(&1u64);
        b.record_item(&2u64);
        assert_ne!(a.value(), b.value());
        // Count is folded: an empty run differs from one with a no-op fold.
        let empty = RunFingerprint::new(base);
        assert_ne!(empty.value(), a.value());
    }

    #[test]
    fn snapshot_hex_is_fixed_width() {
        let snapshot = FingerprintSnapshot {
            value: 0xab,
            searches: 1,
        };
        assert_eq!(snapshot.hex(), "00000000000000ab");
    }
}
