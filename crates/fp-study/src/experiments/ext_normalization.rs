//! **Extension: device-aware score normalization** (paper §II related
//! work — Poh, Kittler & Bourlai's quality/device-dependent score
//! normalization, adapted to our substrate).
//!
//! Interoperability hurts because every (gallery device, probe device)
//! cell has its own genuine-score distribution while a deployed system
//! applies *one global threshold*. If the device pair is known (or
//! inferred, as in Poh et al.), per-cell normalization can re-align the
//! distributions. We fit the normalizer on the first half of the cohort
//! and evaluate on the second half:
//!
//! `s' = s * (target / m_cell)` where `m_cell` is the cell's trimmed mean
//! genuine score on the training split — a monotone per-cell map, so
//! within-cell error tradeoffs are untouched; only the *global* threshold
//! placement improves.

use fp_core::ids::DeviceId;
use fp_stats::roc::ScoreSet;
use serde_json::json;

use crate::report::Report;
use crate::scores::StudyData;

/// Trimmed mean (drop the top/bottom 10%) — robust to the genuine tail.
fn trimmed_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let k = v.len() / 10;
    // Drop the top and bottom 10%; k < len/2, so the core is never empty.
    let core = &v[k..v.len() - k];
    core.iter().sum::<f64>() / core.len() as f64
}

/// Result of evaluating one operating condition.
#[derive(Debug, Clone, Copy)]
struct Operating {
    fnmr: f64,
    auc: f64,
}

fn evaluate(genuine: Vec<f64>, impostor: Vec<f64>, fmr: f64) -> Operating {
    let set = ScoreSet::new(genuine, impostor);
    Operating {
        fnmr: set.fnmr_at_fmr(fmr),
        auc: set.auc(),
    }
}

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let n = data.dataset.len();
    let split = n / 2;
    let fmr = data.dataset.config().table6_fmr;

    // Train: per-cell trimmed-mean genuine score over the first half.
    let mut gains = vec![vec![1.0f64; 5]; 5];
    let target = {
        // Global target level: the same-device D0 cell's training mean.
        let train: Vec<f64> = data
            .scores
            .genuine_cell(DeviceId(0), DeviceId(0))
            .iter()
            .take(split)
            .map(|s| s.score)
            .collect();
        trimmed_mean(&train)
    };
    for g in 0..5u8 {
        for p in 0..5u8 {
            let train: Vec<f64> = data
                .scores
                .genuine_cell(DeviceId(g), DeviceId(p))
                .iter()
                .take(split)
                .map(|s| s.score)
                .collect();
            let m = trimmed_mean(&train);
            if m > 1e-6 {
                gains[g as usize][p as usize] = target / m;
            }
        }
    }

    // Test: pool all cross-device cells of the held-out half, with one
    // global threshold, raw vs normalized.
    let mut raw_genuine = Vec::new();
    let mut norm_genuine = Vec::new();
    let mut raw_impostor = Vec::new();
    let mut norm_impostor = Vec::new();
    for g in 0..5u8 {
        for p in 0..5u8 {
            if g == p {
                continue;
            }
            let gain = gains[g as usize][p as usize];
            for s in data
                .scores
                .genuine_cell(DeviceId(g), DeviceId(p))
                .iter()
                .skip(split)
            {
                raw_genuine.push(s.score);
                norm_genuine.push(s.score * gain);
            }
            // Impostors: split the sampled cell the same way.
            let cell = data.scores.impostor_cell(DeviceId(g), DeviceId(p));
            let half = cell.len() / 2;
            for &s in &cell[half..] {
                raw_impostor.push(s);
                norm_impostor.push(s * gain);
            }
        }
    }
    let raw = evaluate(raw_genuine, raw_impostor, fmr);
    let norm = evaluate(norm_genuine, norm_impostor, fmr);

    let body = format!(
        "device-aware score normalization, trained on {split} subjects,\n\
         evaluated on the remaining {} (cross-device cells pooled under a\n\
         single global threshold, FMR = {:.2}%):\n\n\
         {:<26}{:>12}{:>12}\n\
         {:<26}{:>12.4}{:>12.4}\n\
         {:<26}{:>12.4}{:>12.4}\n\n\
         per-cell gain range: {:.2} .. {:.2}\n\n\
         reading: aligning each device pair's genuine level onto a common\n\
         scale recovers part of the interoperability penalty without touching\n\
         the matcher — the mitigation direction of Poh et al. [11]\n",
        n - split,
        fmr * 100.0,
        "metric",
        "raw",
        "normalized",
        "pooled cross FNMR",
        raw.fnmr,
        norm.fnmr,
        "pooled cross AUC",
        raw.auc,
        norm.auc,
        gains
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        gains.iter().flatten().cloned().fold(0.0, f64::max),
    );

    Report::new(
        "ext-normalization",
        "Device-aware score normalization (related work, Poh et al.)",
        body,
        json!({
            "fmr": fmr,
            "train_subjects": split,
            "raw_fnmr": raw.fnmr,
            "normalized_fnmr": norm.fnmr,
            "raw_auc": raw.auc,
            "normalized_auc": norm.auc,
            "gains": gains,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn normalization_does_not_hurt_auc_much() {
        let r = run(testdata::small());
        let raw = r.values["raw_auc"].as_f64().unwrap();
        let norm = r.values["normalized_auc"].as_f64().unwrap();
        assert!(norm > raw - 0.05, "AUC collapsed: {raw} -> {norm}");
    }

    #[test]
    fn gains_are_positive_and_bounded() {
        let r = run(testdata::small());
        for row in r.values["gains"].as_array().unwrap() {
            for cell in row.as_array().unwrap() {
                let g = cell.as_f64().unwrap();
                assert!(g > 0.05 && g < 20.0, "gain {g}");
            }
        }
    }

    #[test]
    fn same_device_cells_have_gain_near_target_ratio() {
        let r = run(testdata::small());
        // The D0,D0 cell defines the target, so its gain is ~1.
        let g00 = r.values["gains"][0][0].as_f64().unwrap();
        assert!((g00 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trimmed_mean_is_robust_to_outliers() {
        let mut xs: Vec<f64> = vec![10.0; 20];
        xs.push(1000.0);
        assert!((trimmed_mean(&xs) - 10.0).abs() < 1.0);
        assert_eq!(trimmed_mean(&[]), 1.0);
    }
}
