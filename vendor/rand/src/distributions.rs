//! The `Standard` distribution and uniform range sampling, matching the
//! algorithms of `rand` 0.8.5 exactly.

use crate::RngCore;

/// Types that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over all values for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // Low half first, as in rand 0.8.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

macro_rules! standard_int_via_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
standard_int_via_u32!(u8, u16, i8, i16, i32);

impl Distribution<i64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let x: u128 = self.sample(rng);
        x as i128
    }
}

#[cfg(target_pointer_width = "64")]
impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

#[cfg(target_pointer_width = "32")]
impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u32() as usize
    }
}

#[cfg(target_pointer_width = "64")]
impl Distribution<isize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> isize {
        rng.next_u64() as isize
    }
}

impl Distribution<f64> for Standard {
    /// `[0, 1)` from the high 53 bits of one `u64`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// `[0, 1)` from the high 24 bits of one `u32`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    /// Sign bit of one `u32`, as in rand 0.8.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

pub mod uniform {
    //! Uniform sampling over ranges with rand 0.8.5's single-sample
    //! algorithms (widening-multiply rejection for integers).

    use std::ops::{Range, RangeInclusive};

    use super::{Distribution, Standard};
    use crate::RngCore;

    /// Types samplable uniformly from a range via `Rng::gen_range`.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range types accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }

        #[inline]
        // Matches upstream rand's emptiness test exactly, NaN behavior
        // included, so seeded streams stay bit-identical.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_single_inclusive(low, high, rng)
        }

        #[inline]
        fn is_empty(&self) -> bool {
            RangeInclusive::is_empty(self)
        }
    }

    macro_rules! uniform_int {
        ($ty:ty, $uty:ty, $large:ty, $wide:ty) => {
            impl SampleUniform for $ty {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    assert!(low < high, "sample_single: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                #[inline]
                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    assert!(low <= high, "sample_single_inclusive: low > high");
                    let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $large;
                    // `range == 0` encodes the full integer range.
                    if range == 0 {
                        let x: $large = Standard.sample(rng);
                        return x as $ty;
                    }
                    // Rejection zone: largest multiple of `range` minus one,
                    // computed with the "shift into the top bits" trick.
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $large = Standard.sample(rng);
                        let m = (v as $wide) * (range as $wide);
                        let hi = (m >> <$large>::BITS) as $large;
                        let lo = m as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int!(u8, u8, u32, u64);
    uniform_int!(u16, u16, u32, u64);
    uniform_int!(u32, u32, u32, u64);
    uniform_int!(u64, u64, u64, u128);
    uniform_int!(usize, usize, u64, u128);
    uniform_int!(i8, u8, u32, u64);
    uniform_int!(i16, u16, u32, u64);
    uniform_int!(i32, u32, u32, u64);
    uniform_int!(i64, u64, u64, u128);
    uniform_int!(isize, usize, u64, u128);

    macro_rules! uniform_float {
        ($ty:ty) => {
            impl SampleUniform for $ty {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    debug_assert!(low.is_finite() && high.is_finite(), "non-finite bound");
                    let scale = high - low;
                    let value: $ty = Standard.sample(rng);
                    value * scale + low
                }

                #[inline]
                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    // rand 0.8 samples inclusive float ranges with the same
                    // scale-and-offset construction.
                    Self::sample_single(low, high, rng)
                }
            }
        };
    }

    uniform_float!(f32);
    uniform_float!(f64);
}
