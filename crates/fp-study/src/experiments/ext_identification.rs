//! **Extension: closed-set identification (1:N search)** — the operational
//! mode that motivates the paper's US-VISIT framing.
//!
//! Every subject is enrolled on the gallery device; each probe is searched
//! against the *whole* gallery and the true identity's rank is recorded.
//! Interoperability hits identification harder than verification: a genuine
//! score only needs to clear the threshold to verify, but it must beat
//! every impostor in the database to identify at rank 1.

use fp_core::ids::{DeviceId, SubjectId};
use fp_match::{PairTableMatcher, PreparableMatcher};
use fp_stats::cmc::{genuine_rank, CmcCurve};
use serde_json::json;

use crate::parallel::parallel_map;
use crate::report::Report;
use crate::scores::StudyData;

/// Gallery size cap: identification is O(gallery x probes), so very large
/// cohorts are subsampled (the rank statistics converge long before 150).
pub const MAX_GALLERY: usize = 150;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let n = data.dataset.len().min(MAX_GALLERY);
    let matcher = PairTableMatcher::default();
    let gallery_device = DeviceId(0);

    // Prepare the enrolled gallery once (D0, session 0).
    let gallery: Vec<_> = parallel_map(n, |s| {
        matcher.prepare(
            data.dataset
                .captures(SubjectId(s as u32), gallery_device)
                .gallery
                .template(),
        )
    });

    let mut rows = Vec::new();
    for probe_device in DeviceId::ALL {
        // Rank of the true identity for every probe (parallel over probes).
        let ranks: Vec<usize> = parallel_map(n, |s| {
            let probe = matcher.prepare(
                data.dataset
                    .captures(SubjectId(s as u32), probe_device)
                    .probe
                    .template(),
            );
            let genuine = matcher.compare_prepared(&gallery[s], &probe).value();
            let impostors: Vec<f64> = (0..n)
                .filter(|&j| j != s)
                .map(|j| matcher.compare_prepared(&gallery[j], &probe).value())
                .collect();
            genuine_rank(genuine, &impostors)
        });
        let curve = CmcCurve::from_ranks(ranks, 10);
        rows.push((probe_device, curve));
    }

    let mut body = format!(
        "closed-set identification: gallery = {n} subjects enrolled on D0\n\n\
         {:<10}{:>10}{:>10}{:>10}\n",
        "probe", "rank-1", "rank-5", "rank-10"
    );
    for (device, curve) in &rows {
        body.push_str(&format!(
            "{:<10}{:>10.3}{:>10.3}{:>10.3}\n",
            device.to_string(),
            curve.rank1(),
            curve.rate_at_rank(5),
            curve.rate_at_rank(10),
        ));
    }
    let same_rank1 = rows[0].1.rank1();
    let worst = rows
        .iter()
        .min_by(|a, b| a.1.rank1().partial_cmp(&b.1.rank1()).expect("finite rates"))
        .expect("non-empty");
    body.push_str(&format!(
        "\nsame-device rank-1: {same_rank1:.3}; worst cross-device: {} at {:.3}\n\
         identification amplifies the interoperability penalty: a probe must\n\
         out-score the entire enrolled database, not just clear a threshold\n",
        worst.0,
        worst.1.rank1(),
    ));

    Report::new(
        "ext-identification",
        "Closed-set identification across devices (US-VISIT scenario)",
        body,
        json!({
            "gallery_device": "D0",
            "gallery_size": n,
            "rows": rows
                .iter()
                .map(|(d, c)| json!({
                    "probe": d.to_string(),
                    "rank1": c.rank1(),
                    "rank5": c.rate_at_rank(5),
                    "rank10": c.rate_at_rank(10),
                }))
                .collect::<Vec<_>>(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn all_probe_devices_are_evaluated() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn rates_are_monotone_in_rank() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            let r1 = row["rank1"].as_f64().unwrap();
            let r5 = row["rank5"].as_f64().unwrap();
            let r10 = row["rank10"].as_f64().unwrap();
            assert!(r1 <= r5 + 1e-12 && r5 <= r10 + 1e-12, "{row}");
        }
    }

    #[test]
    fn same_device_identification_works_at_small_scale() {
        let r = run(testdata::small());
        let same = &r.values["rows"][0];
        assert!(
            same["rank1"].as_f64().unwrap() > 0.7,
            "same-device rank-1 {same}"
        );
    }
}
