//! Percentile bootstrap confidence intervals.
//!
//! Used by the prediction extension ("what is the probability of a false
//! non-match for a user enrolled on device X and verified on device Y?") to
//! attach uncertainty to FNMR point estimates.
//!
//! The resampler uses an internal SplitMix64 generator so this crate stays
//! dependency-free; determinism comes from the caller-provided seed.

/// A two-sided confidence interval with its point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Statistic evaluated on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// The confidence level used (e.g. 0.95).
    pub level: f64,
}

/// Minimal SplitMix64 stream for resampling.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` by rejection (avoids modulo bias).
    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }
}

/// Percentile-bootstrap confidence interval for `statistic` over `data`.
///
/// Returns `None` when `data` is empty, `resamples == 0`, or `level` is not
/// in `(0, 1)`.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() || resamples == 0 || !(0.0 < level && level < 1.0) {
        return None;
    }
    let estimate = statistic(data);
    let mut rng = SplitMix(seed ^ 0xB007_57AB_0000_0001);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.index(data.len())];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistic must not be NaN"));
    let alpha = (1.0 - level) / 2.0;
    let lower = crate::summary::quantile_sorted(&stats, alpha);
    let upper = crate::summary::quantile_sorted(&stats, 1.0 - alpha);
    Some(ConfidenceInterval {
        estimate,
        lower,
        upper,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let data: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_ci(&data, mean, 500, 0.95, 7).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.upper - ci.lower < 2.0, "interval too wide: {ci:?}");
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 50) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 800, 0.80, 3).unwrap();
        let wide = bootstrap_ci(&data, mean, 800, 0.99, 3).unwrap();
        assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_ci(&data, mean, 200, 0.9, 42).unwrap();
        let b = bootstrap_ci(&data, mean, 200, 0.9, 42).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 200, 0.9, 43).unwrap();
        assert!(a != c || a.estimate == c.estimate); // seed changes resamples
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(bootstrap_ci(&[], mean, 100, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean, 0, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean, 100, 1.0, 1).is_none());
    }

    #[test]
    fn constant_data_gives_zero_width_interval() {
        let data = [5.0; 30];
        let ci = bootstrap_ci(&data, mean, 100, 0.95, 9).unwrap();
        assert_eq!(ci.lower, 5.0);
        assert_eq!(ci.upper, 5.0);
    }
}
