//! Pre-registered telemetry instruments for the candidate index.
//!
//! Mirrors the matcher-metrics pattern in `fp-match`: one bundle of
//! counters and histograms registered via `with_telemetry`, every record a
//! relaxed atomic op, and the `Default` bundle fully inert. Counters and
//! work-size histograms measure *work* (pure functions of the enrolled
//! templates and probes, identical across same-seed runs); the duration
//! histograms measure wall time and vary with the machine.

use fp_telemetry::{Counter, DurationHistogram, Telemetry, ValueHistogram};

/// Instruments for [`crate::CandidateIndex`].
#[derive(Debug, Clone, Default)]
pub struct IndexMetrics {
    /// `index.enrolled` — gallery templates enrolled.
    pub(crate) enrolled: Counter,
    /// `index.searches` — 1:N searches served.
    pub(crate) searches: Counter,
    /// `index.search.hamming_ops` — cylinder-code set comparisons performed
    /// (one per gallery entry per search).
    pub(crate) hamming_ops: Counter,
    /// `index.search.bucket_hits` — geometric-hash vote increments.
    pub(crate) bucket_hits: Counter,
    /// `index.search.rerank_comparisons` — exact matcher comparisons spent
    /// re-ranking shortlists.
    pub(crate) rerank_comparisons: Counter,
    /// `index.search.candidates_pruned` — gallery entries excluded from
    /// exact re-ranking by the prefilter stages.
    pub(crate) candidates_pruned: Counter,
    /// `index.search.shortlist` — shortlist length per search.
    pub(crate) shortlist: ValueHistogram,
    /// `index.search.hamming_ops_per_search` — stage-1 cylinder-code
    /// comparisons per probe. The global counter hides outliers; this
    /// distribution shows when one probe paid far more than the median.
    pub(crate) hamming_per_search: ValueHistogram,
    /// `index.search.bucket_hits_per_search` — geometric-hash vote
    /// increments per probe (shortlist-quality outliers per search).
    pub(crate) bucket_hits_per_search: ValueHistogram,
    /// `index.build.seconds` — wall time of each enrollment batch.
    pub(crate) build_time: DurationHistogram,
    /// `index.search.seconds` — wall time per search.
    pub(crate) search_time: DurationHistogram,
    /// Handle for flight-recorder spans around enroll/search batches.
    pub(crate) telemetry: Telemetry,
}

impl IndexMetrics {
    /// Registers the index instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> IndexMetrics {
        IndexMetrics {
            enrolled: telemetry.counter("index.enrolled"),
            searches: telemetry.counter("index.searches"),
            hamming_ops: telemetry.counter("index.search.hamming_ops"),
            bucket_hits: telemetry.counter("index.search.bucket_hits"),
            rerank_comparisons: telemetry.counter("index.search.rerank_comparisons"),
            candidates_pruned: telemetry.counter("index.search.candidates_pruned"),
            shortlist: telemetry.value("index.search.shortlist"),
            hamming_per_search: telemetry.value("index.search.hamming_ops_per_search"),
            bucket_hits_per_search: telemetry.value("index.search.bucket_hits_per_search"),
            build_time: telemetry.duration("index.build.seconds"),
            search_time: telemetry.duration("index.search.seconds"),
            telemetry: telemetry.clone(),
        }
    }
}
