//! Comparing `BENCH_*.json` performance snapshots.
//!
//! A snapshot is what the bench harness writes under `--save`: a versioned
//! record of `{bench, median_ns, p95_ns, iters}` per benchmark. [`diff`]
//! compares an old (baseline) snapshot against a new one and classifies
//! every shared bench as regressed, warned, improved, or unchanged.
//!
//! Thresholds are noise-aware: the harness's p95 captures how jittery each
//! bench is on the measuring host, so the effective fail threshold for a
//! bench is `max(fail_pct, p95/median - 1)` of the *baseline* — a bench
//! whose own samples spread 30% cannot meaningfully fail a 15% gate.

use serde::Deserialize;

/// A `BENCH_*.json` file as written by the bench harness's `--save`.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchSnapshot {
    /// Schema version; only version 1 is understood.
    pub version: u32,
    /// Hostname the snapshot was measured on.
    pub host: String,
    /// One entry per measured benchmark.
    pub benches: Vec<BenchEntry>,
}

/// One benchmark's measurements within a snapshot.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchEntry {
    /// Full bench name (`group/bench`).
    pub bench: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: f64,
    /// Iterations per timed sample.
    pub iters: u64,
}

impl BenchSnapshot {
    /// Parses a snapshot from JSON, rejecting unknown schema versions.
    pub fn from_json(raw: &str) -> Result<BenchSnapshot, String> {
        let snapshot: BenchSnapshot =
            serde_json::from_str(raw).map_err(|e| format!("invalid snapshot JSON: {e}"))?;
        if snapshot.version != 1 {
            return Err(format!(
                "unsupported snapshot version {} (expected 1)",
                snapshot.version
            ));
        }
        Ok(snapshot)
    }
}

/// How one bench moved between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Slower than the effective fail threshold — gate fails.
    Regressed,
    /// Slower than the warn threshold but within the fail threshold.
    Warned,
    /// Faster than the warn threshold (in the improving direction).
    Improved,
    /// Within the warn band either way.
    Unchanged,
}

/// One bench's comparison between baseline and new snapshots.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Full bench name.
    pub bench: String,
    /// Baseline median ns/iter.
    pub old_ns: f64,
    /// New median ns/iter.
    pub new_ns: f64,
    /// Relative change: `new/old - 1` (positive = slower).
    pub change: f64,
    /// The fail threshold actually applied (after noise widening).
    pub fail_threshold: f64,
    /// Classification under the applied thresholds.
    pub verdict: Verdict,
}

/// Result of comparing two snapshots.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-bench deltas for benches present in both snapshots.
    pub deltas: Vec<BenchDelta>,
    /// Benches only in the baseline (removed).
    pub removed: Vec<String>,
    /// Benches only in the new snapshot (added).
    pub added: Vec<String>,
}

impl DiffReport {
    /// True when no shared bench regressed past its fail threshold.
    ///
    /// Missing benches are a separate failure axis: gate callers must also
    /// check [`DiffReport::missing_required`], since a bench that silently
    /// vanished from the candidate snapshot can never regress.
    pub fn passed(&self) -> bool {
        self.deltas.iter().all(|d| d.verdict != Verdict::Regressed)
    }

    /// Baseline benches absent from the candidate snapshot that the caller
    /// required to be present.
    ///
    /// With an empty `required` list every baseline bench is required — a
    /// candidate produced by a full bench run must cover the whole
    /// baseline. A non-empty list restricts the requirement to benches
    /// whose full name starts with one of the given prefixes, which is how
    /// a deliberately filtered bench run (e.g. `cargo bench -- wire_`)
    /// states which slice of the shared baseline it is answerable for.
    pub fn missing_required(&self, required: &[String]) -> Vec<String> {
        self.removed
            .iter()
            .filter(|name| required.is_empty() || required.iter().any(|p| name.starts_with(p)))
            .cloned()
            .collect()
    }

    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .count()
    }
}

/// Compares `old` (baseline) and `new` snapshots.
///
/// `fail_pct` and `warn_pct` are fractional thresholds (0.15 = 15%). The
/// effective fail threshold per bench is widened to the baseline's own
/// relative noise, `p95/median - 1`, when that exceeds `fail_pct`.
pub fn diff(old: &BenchSnapshot, new: &BenchSnapshot, fail_pct: f64, warn_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for entry in &old.benches {
        let Some(fresh) = new.benches.iter().find(|b| b.bench == entry.bench) else {
            report.removed.push(entry.bench.clone());
            continue;
        };
        let change = if entry.median_ns > 0.0 {
            fresh.median_ns / entry.median_ns - 1.0
        } else {
            0.0
        };
        let noise = if entry.median_ns > 0.0 {
            (entry.p95_ns / entry.median_ns - 1.0).max(0.0)
        } else {
            0.0
        };
        let fail_threshold = fail_pct.max(noise);
        let verdict = if change > fail_threshold {
            Verdict::Regressed
        } else if change > warn_pct {
            Verdict::Warned
        } else if change < -warn_pct {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        };
        report.deltas.push(BenchDelta {
            bench: entry.bench.clone(),
            old_ns: entry.median_ns,
            new_ns: fresh.median_ns,
            change,
            fail_threshold,
            verdict,
        });
    }
    for entry in &new.benches {
        if !old.benches.iter().any(|b| b.bench == entry.bench) {
            report.added.push(entry.bench.clone());
        }
    }
    report
}

/// Renders the report as an aligned human-readable table.
pub fn render(report: &DiffReport) -> String {
    let mut out = String::new();
    for d in &report.deltas {
        let tag = match d.verdict {
            Verdict::Regressed => "REGRESSED",
            Verdict::Warned => "warn",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
        };
        out.push_str(&format!(
            "{:<50} {:>12.1} -> {:>12.1} ns/iter  {:>+7.1}%  (fail at +{:.0}%)  {}\n",
            d.bench,
            d.old_ns,
            d.new_ns,
            d.change * 100.0,
            d.fail_threshold * 100.0,
            tag
        ));
    }
    for name in &report.removed {
        out.push_str(&format!("{name:<50} removed (present only in baseline)\n"));
    }
    for name in &report.added {
        out.push_str(&format!("{name:<50} added (absent from baseline)\n"));
    }
    let regressions = report.regressions();
    out.push_str(&format!(
        "{} benches compared, {} regression{}\n",
        report.deltas.len(),
        regressions,
        if regressions == 1 { "" } else { "s" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(entries: &[(&str, f64, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            version: 1,
            host: "test".to_string(),
            benches: entries
                .iter()
                .map(|(name, median, p95)| BenchEntry {
                    bench: name.to_string(),
                    median_ns: *median,
                    p95_ns: *p95,
                    iters: 100,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = snapshot(&[("a/x", 1000.0, 1050.0), ("a/y", 2000.0, 2100.0)]);
        let report = diff(&base, &base.clone(), 0.15, 0.05);
        assert!(report.passed());
        assert_eq!(report.regressions(), 0);
        assert!(report
            .deltas
            .iter()
            .all(|d| d.verdict == Verdict::Unchanged));
    }

    #[test]
    fn twenty_percent_regression_fails_the_default_gate() {
        let base = snapshot(&[("a/x", 1000.0, 1050.0)]);
        let new = snapshot(&[("a/x", 1200.0, 1260.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        assert!(!report.passed());
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.deltas[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn ten_percent_slowdown_warns_but_passes() {
        let base = snapshot(&[("a/x", 1000.0, 1050.0)]);
        let new = snapshot(&[("a/x", 1100.0, 1150.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        assert!(report.passed());
        assert_eq!(report.deltas[0].verdict, Verdict::Warned);
    }

    #[test]
    fn noisy_baselines_widen_the_fail_threshold() {
        // Baseline p95 is 40% over its median, so a 20% slowdown is within
        // the bench's own measured noise and must not fail a 15% gate.
        let base = snapshot(&[("a/noisy", 1000.0, 1400.0)]);
        let new = snapshot(&[("a/noisy", 1200.0, 1300.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        assert!(report.passed());
        assert_eq!(report.deltas[0].verdict, Verdict::Warned);
        assert!((report.deltas[0].fail_threshold - 0.4).abs() < 1e-12);
    }

    #[test]
    fn improvements_and_membership_changes_are_reported() {
        let base = snapshot(&[("a/x", 1000.0, 1050.0), ("a/gone", 500.0, 510.0)]);
        let new = snapshot(&[("a/x", 800.0, 840.0), ("a/new", 100.0, 105.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        assert!(report.passed());
        assert_eq!(report.deltas[0].verdict, Verdict::Improved);
        assert_eq!(report.removed, vec!["a/gone".to_string()]);
        assert_eq!(report.added, vec!["a/new".to_string()]);
        let table = render(&report);
        assert!(table.contains("improved"));
        assert!(table.contains("a/gone"));
        assert!(table.contains("a/new"));
        assert!(table.contains("1 benches compared, 0 regressions"));
    }

    #[test]
    fn missing_baseline_benches_are_required_by_default() {
        // A bench present in the baseline but absent from the candidate
        // must be surfaced by name — `passed()` alone cannot see it, and
        // a gate that ignores it would wave through a deleted benchmark.
        let base = snapshot(&[
            ("wire_x/encode", 1000.0, 1050.0),
            ("span/enabled", 300.0, 310.0),
        ]);
        let new = snapshot(&[("span/enabled", 305.0, 315.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        assert!(report.passed(), "no shared bench regressed");
        assert_eq!(
            report.missing_required(&[]),
            vec!["wire_x/encode".to_string()],
            "empty require list means the whole baseline is required"
        );
    }

    #[test]
    fn require_prefixes_scope_the_missing_bench_check() {
        let base = snapshot(&[
            ("wire_x/encode", 1000.0, 1050.0),
            ("wire_y/decode", 900.0, 950.0),
            ("span/enabled", 300.0, 310.0),
        ]);
        let new = snapshot(&[("wire_x/encode", 1010.0, 1060.0)]);
        let report = diff(&base, &new, 0.15, 0.05);
        // A filtered wire-only run is answerable for `wire_` benches: the
        // missing span bench is fine, the missing wire bench is not.
        assert_eq!(
            report.missing_required(&["wire_".to_string()]),
            vec!["wire_y/decode".to_string()]
        );
        // A prefix matching none of the removed benches requires nothing.
        assert!(report.missing_required(&["shard".to_string()]).is_empty());
        // Multiple prefixes union their requirements.
        assert_eq!(
            report.missing_required(&["shard".to_string(), "wire_y".to_string()]),
            vec!["wire_y/decode".to_string()]
        );
    }

    #[test]
    fn snapshot_parser_accepts_harness_output_and_rejects_bad_versions() {
        let raw = r#"{
  "version": 1,
  "host": "ci",
  "benches": [
    {"bench": "telemetry/span", "median_ns": 120.5, "p95_ns": 130.1, "iters": 1000}
  ]
}"#;
        let snap = BenchSnapshot::from_json(raw).expect("valid snapshot");
        assert_eq!(snap.host, "ci");
        assert_eq!(snap.benches.len(), 1);
        assert_eq!(snap.benches[0].bench, "telemetry/span");
        assert!(BenchSnapshot::from_json(r#"{"version": 2, "host": "x", "benches": []}"#).is_err());
        assert!(BenchSnapshot::from_json("not json").is_err());
    }
}
