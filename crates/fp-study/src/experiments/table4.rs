//! **Table 4** — Kendall rank-correlation p-values between same-device and
//! cross-device genuine scores.
//!
//! Per subject, the genuine score in the intra-device scenario `DX vs DX`
//! is paired with the genuine score in scenario `DX (gallery) vs DY
//! (probe)`, and Kendall's τ-b tests the association. The diagonal pairs a
//! vector with itself (τ = 1): with n = 494 that gives p ≈ 5e-242 — exactly
//! the magnitude on the paper's diagonal, which pins down the computation
//! the authors ran. The matrix is asymmetric because `X→Y` and `Y→X` are
//! different acquisition scenarios — the paper flags the same asymmetry as
//! its one surprising finding.

use fp_core::ids::DeviceId;
use fp_stats::kendall::kendall_tau_b;
use serde_json::json;

use crate::report::{render_device_matrix, Report};
use crate::scores::StudyData;

/// The paired test of one (row = intra device X, column = probe device Y)
/// cell: Kendall between DMG(X) and genuine(X→Y).
fn cell_test(data: &StudyData, x: DeviceId, y: DeviceId) -> Option<fp_stats::kendall::KendallTest> {
    let base = data.scores.genuine_values(x, x);
    let cross = data.scores.genuine_values(x, y);
    kendall_tau_b(&base, &cross)
}

/// Runs the experiment.
#[allow(clippy::needless_range_loop)] // matrix cells are cleanest as indices
pub fn run(data: &StudyData) -> Report {
    // The paper's Table 4 has rows D0..D3 (the intra-device baselines) and
    // columns DX-D0..DX-D4.
    let mut p_matrix = vec![vec![f64::NAN; 5]; 4];
    let mut tau_matrix = vec![vec![f64::NAN; 5]; 4];
    for x in 0..4u8 {
        for y in 0..5u8 {
            if let Some(t) = cell_test(data, DeviceId(x), DeviceId(y)) {
                p_matrix[x as usize][y as usize] = t.log10_p;
                tau_matrix[x as usize][y as usize] = t.tau;
            }
        }
    }

    let mut body = String::from(
        "p-values of Kendall's tau between DMG(DX) and genuine scores of\n\
         scenario DX (gallery) vs DY (probe), paired per subject:\n\n        ",
    );
    for y in 0..5 {
        body.push_str(&format!("{:>12}", format!("DX-D{y}")));
    }
    body.push('\n');
    for x in 0..4 {
        body.push_str(&format!("  D{x}    "));
        for y in 0..5 {
            let cell = if p_matrix[x][y].is_nan() {
                "-".to_string()
            } else {
                fp_stats::special::format_p(p_matrix[x][y])
            };
            body.push_str(&format!("{cell:>12}"));
        }
        body.push('\n');
    }
    body.push_str(&render_device_matrix(
        "\ntau values (rows D0-D3):",
        |g, p| {
            if g < 4 {
                format!("{:.3}", tau_matrix[g][p])
            } else {
                "-".to_string()
            }
        },
    ));
    body.push_str(
        "\npaper landmarks: diagonal ≈ 5e-242 at n = 494; matrix asymmetric;\n\
         the D4 (ten-print) column is the least correlated with DMG\n",
    );

    // Asymmetry witness: compare (x, y) and (y, x) for x != y, x, y < 4.
    let mut max_asym: f64 = 0.0;
    for x in 0..4usize {
        for y in 0..4usize {
            if x != y {
                let d = (p_matrix[x][y] - p_matrix[y][x]).abs();
                if d.is_finite() {
                    max_asym = max_asym.max(d);
                }
            }
        }
    }

    Report::new(
        "table4",
        "Kendall rank-correlation p-value matrix (paper Table 4)",
        body,
        json!({
            "log10_p": p_matrix,
            "tau": tau_matrix,
            "max_log10_asymmetry": max_asym,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn diagonal_is_perfect_correlation() {
        let data = testdata::small();
        let r = run(data);
        let tau = &r.values["tau"];
        for x in 0..4 {
            let t = tau[x][x].as_f64().unwrap();
            assert!((t - 1.0).abs() < 1e-9, "diag tau {t}");
        }
    }

    #[test]
    fn diagonal_p_is_the_extreme_of_each_row() {
        let data = testdata::small();
        let r = run(data);
        let p = &r.values["log10_p"];
        for x in 0..4 {
            let diag = p[x][x].as_f64().unwrap();
            for y in 0..5 {
                if y != x {
                    let off = p[x][y].as_f64().unwrap();
                    assert!(
                        diag <= off + 1e-9,
                        "row {x}: diag {diag} not <= off-diag {off}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_scale_diagonal_magnitude() {
        // At n subjects, tau = 1 gives a closed-form z; with n = 494 the
        // log10 p must be ≈ -241.3 (i.e. 5.4e-242). Verify the formula at
        // the test cohort size instead of regenerating a 494-subject study.
        let data = testdata::small();
        let n = data.dataset.len() as f64;
        let sigma = (2.0 * (2.0 * n + 5.0) / (9.0 * n * (n - 1.0))).sqrt();
        let expected = fp_stats::special::two_sided_log10_p(1.0 / sigma);
        let r = run(data);
        let got = r.values["log10_p"][0][0].as_f64().unwrap();
        assert!(
            (got - expected).abs() < 0.1,
            "got {got}, expected {expected}"
        );
    }
}
