//! # fp-core
//!
//! Shared vocabulary for the fingerprint-interoperability study: geometry in
//! physical units, angular arithmetic, minutiae and templates, identifier
//! newtypes, deterministic random-number utilities, and the [`Matcher`]
//! abstraction implemented by the matching crates.
//!
//! Everything downstream (synthesis, sensing, matching, statistics, the study
//! harness) is built on the types defined here, so this crate is deliberately
//! dependency-light and heavily validated.
//!
//! ## Coordinate conventions
//!
//! * Physical positions are expressed in **millimetres** in a finger-centred
//!   frame: the origin is the centre of the finger pad, `+x` points toward the
//!   right edge of the finger, `+y` toward the fingertip.
//! * **Directions** (minutia orientation, ridge tangents pointing a specific
//!   way) live on the circle `(-pi, pi]` — see [`geometry::Direction`].
//! * **Orientations** (undirected ridge flow) live on the half-circle
//!   `[0, pi)` — see [`geometry::Orientation`].
//!
//! ## Example
//!
//! ```
//! use fp_core::geometry::{Direction, Point};
//! use fp_core::minutia::{Minutia, MinutiaKind};
//! use fp_core::template::Template;
//!
//! # fn main() -> Result<(), fp_core::Error> {
//! let m = Minutia::new(
//!     Point::new(1.5, -2.0),
//!     Direction::from_radians(0.7),
//!     MinutiaKind::RidgeEnding,
//!     0.9,
//! );
//! let template = Template::builder(500.0)
//!     .capture_window_mm(20.0, 25.0)
//!     .push(m)
//!     .build()?;
//! assert_eq!(template.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod dist;
pub mod error;
pub mod geometry;
pub mod ids;
pub mod matcher;
pub mod minutia;
pub mod rng;
pub mod template;

pub use error::Error;
pub use matcher::{MatchScore, Matcher};

/// Crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;
