//! The `Strategy` trait and the concrete strategies the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating test inputs of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! `prop::collection::vec`.

    use super::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s of inner values with lengths in the given range.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_exclusive - self.len.lo) as u64;
            let len = self.len.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool_strategies {
    //! `prop::bool::{ANY, weighted}`.

    use super::Strategy;
    use crate::test_runner::TestRng;

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight {p} outside [0, 1]");
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}
