//! Local image quality maps — the image-domain counterpart of the
//! feature-level quality assessment in `fp-quality`.
//!
//! NFIQ-style quality tools fuse *local* measurements: ridge orientation
//! coherence (clear flow vs mush), local contrast (ink vs smudge), and
//! foreground coverage. This module computes a per-block quality in
//! `[0, 1]` from exactly those signals, which the extraction chain can use
//! to weight minutia reliability and which `fp-quality` accepts as an
//! image-path feature source.

use crate::image::GrayImage;
use crate::orientation::EstimatedField;
use crate::segment::Mask;

/// A per-block local quality map over an image.
#[derive(Debug, Clone)]
pub struct LocalQualityMap {
    block: usize,
    cols: usize,
    rows: usize,
    quality: Vec<f64>,
}

impl LocalQualityMap {
    /// Computes the map from an image, its estimated orientation field, and
    /// its foreground mask. Background blocks get quality 0.
    ///
    /// # Panics
    ///
    /// Panics when `field` and the image disagree on the block grid.
    pub fn compute(img: &GrayImage, field: &EstimatedField, mask: &Mask) -> LocalQualityMap {
        let block = field.block();
        assert_eq!(block, mask.block(), "field and mask block sizes must agree");
        let cols = img.width().div_ceil(block);
        let rows = img.height().div_ceil(block);
        let (_, global_var) = img.block_stats(0, 0, img.width(), img.height());
        let mut quality = Vec::with_capacity(cols * rows);
        for by in 0..rows {
            for bx in 0..cols {
                let x = bx * block;
                let y = by * block;
                if !mask.is_foreground(x, y) {
                    quality.push(0.0);
                    continue;
                }
                let coherence = field.coherence_at_pixel(x, y);
                let (_, var) = img.block_stats(x, y, block, block);
                // Contrast relative to the global level, saturating at 1.
                let contrast = if global_var <= f32::EPSILON {
                    0.0
                } else {
                    (var as f64 / global_var as f64).min(1.0)
                };
                quality.push((0.65 * coherence + 0.35 * contrast).clamp(0.0, 1.0));
            }
        }
        LocalQualityMap {
            block,
            cols,
            rows,
            quality,
        }
    }

    /// Quality of the block containing pixel `(x, y)`.
    pub fn at_pixel(&self, x: usize, y: usize) -> f64 {
        let bx = (x / self.block).min(self.cols - 1);
        let by = (y / self.block).min(self.rows - 1);
        self.quality[by * self.cols + bx]
    }

    /// Mean quality over foreground blocks (blocks with quality > 0);
    /// 0 for an all-background image.
    pub fn mean_foreground_quality(&self) -> f64 {
        let fg: Vec<f64> = self.quality.iter().copied().filter(|&q| q > 0.0).collect();
        if fg.is_empty() {
            0.0
        } else {
            fg.iter().sum::<f64>() / fg.len() as f64
        }
    }

    /// Fraction of blocks whose quality exceeds `threshold`.
    pub fn usable_fraction(&self, threshold: f64) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.quality.iter().filter(|&&q| q > threshold).count() as f64 / self.quality.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::estimate_orientation;
    use crate::segment::segment;

    fn grating(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::filled(w, h, 0.0).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    0.5 + 0.5 * (y as f32 * std::f32::consts::TAU / 9.0).cos(),
                );
            }
        }
        img
    }

    /// Left half clean grating, right half uniform noise-free grey.
    fn half_and_half(w: usize, h: usize) -> GrayImage {
        let mut img = grating(w, h);
        for y in 0..h {
            for x in w / 2..w {
                img.set(x, y, 0.5);
            }
        }
        img
    }

    #[test]
    fn clean_ridges_have_high_quality() {
        let img = grating(64, 64);
        let field = estimate_orientation(&img, 16);
        let mask = segment(&img, 16, 0.1);
        let q = LocalQualityMap::compute(&img, &field, &mask);
        assert!(q.at_pixel(32, 32) > 0.7, "quality {}", q.at_pixel(32, 32));
        assert!(q.mean_foreground_quality() > 0.6);
    }

    #[test]
    fn background_blocks_have_zero_quality() {
        let img = half_and_half(64, 64);
        let field = estimate_orientation(&img, 16);
        let mask = segment(&img, 16, 0.2);
        let q = LocalQualityMap::compute(&img, &field, &mask);
        assert_eq!(q.at_pixel(60, 32), 0.0);
        assert!(q.at_pixel(8, 32) > 0.5);
    }

    #[test]
    fn usable_fraction_reflects_structure() {
        let img = half_and_half(64, 64);
        let field = estimate_orientation(&img, 16);
        let mask = segment(&img, 16, 0.2);
        let q = LocalQualityMap::compute(&img, &field, &mask);
        let usable = q.usable_fraction(0.5);
        assert!(usable > 0.2 && usable < 0.8, "usable = {usable}");
    }

    #[test]
    fn flat_image_has_no_quality() {
        let img = GrayImage::filled(32, 32, 0.5).unwrap();
        let field = estimate_orientation(&img, 16);
        let mask = segment(&img, 16, 0.3);
        let q = LocalQualityMap::compute(&img, &field, &mask);
        assert_eq!(q.mean_foreground_quality(), 0.0);
        assert_eq!(q.usable_fraction(0.1), 0.0);
    }
}
