//! Typed errors for every way an on-disk gallery can be wrong.
//!
//! The decode paths never panic and never silently accept damaged bytes:
//! any byte flip, truncation, or hostile header lands in exactly one of
//! these variants. `what` names the artifact (`"segment"` or
//! `"manifest"`) so a gallery-level error message can point at the
//! offending file.

use std::fmt;

/// Everything that can go wrong opening, validating, or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (open, read, write, rename, remove).
    Io(std::io::Error),
    /// The file does not start with the expected magic.
    BadMagic {
        /// `"segment"` or `"manifest"`.
        what: &'static str,
    },
    /// The format version is newer (or older) than this build understands.
    /// Layout changes bump the version; an unknown version must never be
    /// decoded with the wrong layout.
    UnsupportedVersion {
        /// `"segment"` or `"manifest"`.
        what: &'static str,
        /// The version found in the header.
        version: u16,
    },
    /// The file ends before a declared structure does.
    Truncated {
        /// `"segment"` or `"manifest"`.
        what: &'static str,
        /// Which structure ran off the end (e.g. `"section table"`).
        context: &'static str,
    },
    /// A CRC32 over a header or section payload does not match the stored
    /// checksum — the canonical symptom of a flipped byte.
    CrcMismatch {
        /// `"segment"` or `"manifest"`.
        what: &'static str,
        /// Which checksummed region failed (e.g. `"header"`, `"tables"`).
        section: &'static str,
    },
    /// The bytes checksum fine but violate a structural invariant (bad
    /// section layout, out-of-range id, unsorted keys, non-canonical
    /// float, ...). Carries a human-readable detail.
    Corrupt {
        /// `"segment"` or `"manifest"`.
        what: &'static str,
        /// What exactly was violated.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::BadMagic { what } => write!(f, "{what}: bad magic"),
            StoreError::UnsupportedVersion { what, version } => {
                write!(f, "{what}: unsupported format version {version}")
            }
            StoreError::Truncated { what, context } => {
                write!(f, "{what}: truncated while reading {context}")
            }
            StoreError::CrcMismatch { what, section } => {
                write!(f, "{what}: CRC mismatch in {section}")
            }
            StoreError::Corrupt { what, detail } => write!(f, "{what}: corrupt: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> StoreError {
        StoreError::Io(err)
    }
}
