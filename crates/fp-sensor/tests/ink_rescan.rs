//! Invariants of the ink ten-print card model: both D4 "sessions" are scans
//! of the same physical impression, so they must be near-duplicates of each
//! other while remaining honest about scanner noise — and live-scan devices
//! must NOT behave this way.

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::Matcher;
use fp_match::PairTableMatcher;
use fp_sensor::CaptureProtocol;
use fp_synth::population::{Population, PopulationConfig};

fn subject(seed: u64) -> fp_synth::population::Subject {
    Population::generate(&PopulationConfig::new(seed, 1)).subjects()[0].clone()
}

#[test]
fn ink_sessions_share_the_presentation() {
    let protocol = CaptureProtocol::new();
    for seed in [1u64, 7, 42] {
        let s = subject(seed);
        let a = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(0));
        let b = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(1));
        // Same card: same presentation condition...
        assert_eq!(a.condition(), b.condition(), "seed {seed}");
        // ...but not literally the same template (scanner noise exists).
        assert_ne!(a.template(), b.template(), "seed {seed}");
        // Counts may only differ by extraction instability (a few percent).
        let (na, nb) = (a.template().len() as f64, b.template().len() as f64);
        assert!(
            (na - nb).abs() <= na * 0.15 + 2.0,
            "seed {seed}: counts {na} vs {nb} diverge too much for a rescan"
        );
    }
}

#[test]
fn live_scan_sessions_are_independent_presentations() {
    let protocol = CaptureProtocol::new();
    let s = subject(3);
    for device in [DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)] {
        let a = protocol.capture(&s, Finger::RIGHT_INDEX, device, SessionId(0));
        let b = protocol.capture(&s, Finger::RIGHT_INDEX, device, SessionId(1));
        assert_ne!(
            a.condition(),
            b.condition(),
            "{device}: sessions share a presentation"
        );
    }
}

#[test]
fn intra_card_scores_dominate_intra_livescan_scores() {
    // The modelling decision behind the paper's best-diagonal {D4,D4} cell:
    // rescans of one card must outscore two independent live captures.
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();
    let mut ink_total = 0.0;
    let mut live_total = 0.0;
    let n = 12;
    for seed in 0..n {
        let s = subject(100 + seed);
        let ink0 = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(0));
        let ink1 = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(1));
        ink_total += matcher.compare(ink0.template(), ink1.template()).value();
        let live0 = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0));
        let live1 = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(1));
        live_total += matcher.compare(live0.template(), live1.template()).value();
    }
    assert!(
        ink_total > live_total,
        "intra-card mean {:.1} not above intra-livescan mean {:.1}",
        ink_total / n as f64,
        live_total / n as f64
    );
}

#[test]
fn rescan_is_deterministic() {
    let protocol = CaptureProtocol::new();
    let s = subject(9);
    let a = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(1));
    let b = protocol.capture(&s, Finger::RIGHT_INDEX, DeviceId(4), SessionId(1));
    assert_eq!(a, b);
}

#[test]
fn swipe_stitching_degrades_self_consistency() {
    use fp_core::rng::SeedTree;
    use fp_sensor::device::NoiseProfile;
    use fp_sensor::{Acquisition, Device, DistortionSignature, SensingTechnology};

    // Identical parameters except the technology: swipe reconstruction adds
    // per-capture stitch artifacts that the touch variant does not have.
    let base = Device {
        id: DeviceId(0),
        model: "test capacitive",
        technology: SensingTechnology::CapacitiveTouch,
        resolution_dpi: 500.0,
        image_px: (400, 400),
        capture_mm: (20.3, 20.3),
        distortion: DistortionSignature::IDENTITY,
        noise: NoiseProfile {
            position_jitter: 0.06,
            direction_kappa: 110.0,
            base_dropout: 0.05,
            spurious_rate: 0.004,
            quality_bias: 0.1,
            vignette_band_mm: 2.0,
        },
    };
    let swipe = Device {
        technology: SensingTechnology::CapacitiveSwipe,
        ..base
    };
    let matcher = PairTableMatcher::default();
    let mut touch_total = 0.0;
    let mut swipe_total = 0.0;
    let n = 10;
    for seed in 0..n {
        let s = subject(500 + seed);
        let master = s.master_print(Finger::RIGHT_INDEX);
        let capture = |device: &Device, session: u8, tag: u64| {
            Acquisition.capture(
                &master,
                &s.skin(),
                device,
                s.id(),
                Finger::RIGHT_INDEX,
                SessionId(session),
                0.0,
                &SeedTree::new(9000 + seed * 10 + tag),
            )
        };
        let t0 = capture(&base, 0, 0);
        let t1 = capture(&base, 1, 1);
        touch_total += matcher.compare(t0.template(), t1.template()).value();
        let s0 = capture(&swipe, 0, 2);
        let s1 = capture(&swipe, 1, 3);
        swipe_total += matcher.compare(s0.template(), s1.template()).value();
    }
    assert!(
        swipe_total < touch_total,
        "swipe self-consistency {:.1} not below touch {:.1}",
        swipe_total / n as f64,
        touch_total / n as f64
    );
    assert!(
        swipe_total > 0.0,
        "swipe sensor produced no genuine evidence at all"
    );
}
