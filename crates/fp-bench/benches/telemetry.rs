//! Telemetry overhead: the disabled instruments must cost next to nothing
//! (no clock reads, no allocation), and the enabled ones only a relaxed
//! atomic or a clock read — cheap against a ~1 ms template comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_core::MatchScore;
use fp_index::{Candidate, IndexConfig, SearchResult};
use fp_telemetry::{RunFingerprint, Telemetry};

fn telemetry_benches(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    let enabled = Telemetry::enabled();

    let mut group = c.benchmark_group("counter");
    let off = disabled.counter("bench.counter");
    let on = enabled.counter("bench.counter");
    group.bench_function("disabled_add", |b| b.iter(|| off.add(black_box(3))));
    group.bench_function("enabled_add", |b| b.iter(|| on.add(black_box(3))));
    group.finish();

    let mut group = c.benchmark_group("value_histogram");
    let off = disabled.value("bench.value");
    let on = enabled.value("bench.value");
    group.bench_function("disabled_record", |b| b.iter(|| off.record(black_box(42))));
    group.bench_function("enabled_record", |b| b.iter(|| on.record(black_box(42))));
    group.finish();

    let mut group = c.benchmark_group("span");
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let _span = disabled.span(black_box("bench.span"));
        })
    });
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let _span = enabled.span(black_box("bench.span"));
        })
    });
    group.finish();

    // RUNFP cost: what every search pays to maintain the run fingerprint.
    // `fold_shortlist48` is one full per-search chain (a default-shortlist
    // result folded candidate by candidate); `record_shortlist48` adds the
    // commutative combine into the shared accumulator — the whole
    // per-search overhead, which must stay trivial against a ~25 ms
    // 2000-entry search.
    let shortlist: Vec<Candidate> = (0..48)
        .map(|i| Candidate {
            id: i * 41 % 2000,
            score: MatchScore::new(30.0 - f64::from(i) * 0.37),
        })
        .collect();
    let result = SearchResult::from_parts(shortlist, 2_000);
    let base = IndexConfig::default().fingerprint_base(7);
    let runfp = RunFingerprint::new(base);
    let mut group = c.benchmark_group("fingerprint");
    group.bench_function("fold_shortlist48", |b| {
        b.iter(|| {
            let mut chain = base;
            chain.fold(black_box(&result));
            black_box(chain.value())
        })
    });
    group.bench_function("record_shortlist48", |b| {
        b.iter(|| black_box(runfp.record_item(black_box(&result))))
    });
    group.finish();

    // End to end: the whole pipeline with and without instrumentation. The
    // two must be within noise of each other when telemetry is disabled.
    use fp_study::config::StudyConfig;
    use fp_study::scores::StudyData;
    let config = StudyConfig::builder()
        .subjects(4)
        .seed(11)
        .impostors_per_cell(8)
        .build();
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(StudyData::generate(black_box(&config))))
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| {
            let telemetry = Telemetry::enabled();
            black_box(StudyData::generate_with(black_box(&config), &telemetry))
        })
    });
    group.finish();
}

criterion_group!(benches, telemetry_benches);
criterion_main!(benches);
