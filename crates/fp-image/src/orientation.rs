//! Local ridge orientation estimation via structure tensors.
//!
//! The classic gradient-squared method (Kass–Witkin / Bazen–Gerez): the
//! doubled-angle representation `(gxx - gyy, 2 gxy)` of the gradient
//! covariance is smoothed per block, and the dominant orientation is half
//! the argument, rotated 90° because ridges run perpendicular to the
//! gradient.

use fp_core::geometry::Orientation;

use crate::filter;
use crate::image::GrayImage;

/// A per-block orientation field estimated from an image.
#[derive(Debug, Clone)]
pub struct EstimatedField {
    block: usize,
    cols: usize,
    rows: usize,
    orientations: Vec<Orientation>,
    coherences: Vec<f64>,
}

impl EstimatedField {
    /// Block size in pixels used for estimation.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Orientation of the block containing pixel `(x, y)`.
    pub fn orientation_at_pixel(&self, x: usize, y: usize) -> Orientation {
        let bx = (x / self.block).min(self.cols - 1);
        let by = (y / self.block).min(self.rows - 1);
        self.orientations[by * self.cols + bx]
    }

    /// Coherence (0..1) of the block containing pixel `(x, y)`.
    pub fn coherence_at_pixel(&self, x: usize, y: usize) -> f64 {
        let bx = (x / self.block).min(self.cols - 1);
        let by = (y / self.block).min(self.rows - 1);
        self.coherences[by * self.cols + bx]
    }

    /// Mean coherence over all blocks — a global ridge-clarity measure.
    pub fn mean_coherence(&self) -> f64 {
        if self.coherences.is_empty() {
            0.0
        } else {
            self.coherences.iter().sum::<f64>() / self.coherences.len() as f64
        }
    }
}

/// Estimates the block orientation field of `img`.
///
/// # Panics
///
/// Panics when `block` is zero.
pub fn estimate_orientation(img: &GrayImage, block: usize) -> EstimatedField {
    assert!(block > 0, "block size must be positive");
    let smoothed = filter::gaussian_blur(img, 1.0);
    let (gx, gy) = filter::sobel(&smoothed);
    let cols = img.width().div_ceil(block);
    let rows = img.height().div_ceil(block);
    let mut orientations = Vec::with_capacity(cols * rows);
    let mut coherences = Vec::with_capacity(cols * rows);
    for by in 0..rows {
        for bx in 0..cols {
            let (mut gxx, mut gyy, mut gxy) = (0.0f64, 0.0f64, 0.0f64);
            for y in (by * block)..((by + 1) * block).min(img.height()) {
                for x in (bx * block)..((bx + 1) * block).min(img.width()) {
                    let dx = gx.at(x, y) as f64;
                    let dy = gy.at(x, y) as f64;
                    gxx += dx * dx;
                    gyy += dy * dy;
                    gxy += dx * dy;
                }
            }
            // Doubled-angle of the *gradient* direction; ridge orientation is
            // perpendicular.
            let theta_grad = 0.5 * (2.0 * gxy).atan2(gxx - gyy);
            let orientation = Orientation::from_radians(theta_grad + std::f64::consts::FRAC_PI_2);
            let denom = gxx + gyy;
            let coherence = if denom > 1e-12 {
                (((gxx - gyy).powi(2) + 4.0 * gxy * gxy).sqrt() / denom).clamp(0.0, 1.0)
            } else {
                0.0
            };
            orientations.push(orientation);
            coherences.push(coherence);
        }
    }
    EstimatedField {
        block,
        cols,
        rows,
        orientations,
        coherences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sinusoidal grating with ridges flowing along `orientation`.
    fn grating(orientation: f64, w: usize, h: usize, period: f32) -> GrayImage {
        let mut img = GrayImage::filled(w, h, 0.0).unwrap();
        // Waves vary along the normal to the ridge orientation.
        let (nx, ny) = (
            (orientation + std::f64::consts::FRAC_PI_2).cos() as f32,
            (orientation + std::f64::consts::FRAC_PI_2).sin() as f32,
        );
        for y in 0..h {
            for x in 0..w {
                let phase = (x as f32 * nx + y as f32 * ny) * std::f32::consts::TAU / period;
                img.set(x, y, 0.5 + 0.5 * phase.cos());
            }
        }
        img
    }

    #[test]
    fn recovers_horizontal_ridges() {
        let img = grating(0.0, 64, 64, 9.0);
        let field = estimate_orientation(&img, 16);
        let o = field.orientation_at_pixel(32, 32);
        assert!(
            o.separation(Orientation::from_radians(0.0)) < 0.1,
            "estimated {o}"
        );
        assert!(field.coherence_at_pixel(32, 32) > 0.8);
    }

    #[test]
    fn recovers_oblique_ridges() {
        for target in [0.5, 1.0, 2.0, 2.8] {
            let img = grating(target, 96, 96, 9.0);
            let field = estimate_orientation(&img, 16);
            let o = field.orientation_at_pixel(48, 48);
            assert!(
                o.separation(Orientation::from_radians(target)) < 0.12,
                "target {target}: estimated {o}"
            );
        }
    }

    #[test]
    fn flat_image_has_zero_coherence() {
        let img = GrayImage::filled(32, 32, 0.5).unwrap();
        let field = estimate_orientation(&img, 16);
        assert!(field.mean_coherence() < 1e-6);
    }

    #[test]
    fn grid_covers_image() {
        let img = GrayImage::filled(50, 30, 0.5).unwrap();
        let field = estimate_orientation(&img, 16);
        assert_eq!(field.grid(), (4, 2));
        // Accessing the far corner must not panic.
        let _ = field.orientation_at_pixel(49, 29);
    }
}
