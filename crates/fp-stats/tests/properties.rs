//! Property-based tests of the statistics stack.

use fp_stats::histogram::Histogram;
use fp_stats::kendall::kendall_tau_b;
use fp_stats::roc::ScoreSet;
use fp_stats::summary::{quantile, Summary};
use proptest::prelude::*;

fn scores() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..100.0f64, 1..80)
}

proptest! {
    // ---- Histogram ---------------------------------------------------------

    #[test]
    fn histogram_conserves_observations(values in prop::collection::vec(-10.0..110.0f64, 0..200)) {
        let h = Histogram::from_values(0.0, 100.0, 20, values.iter().copied());
        let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.overflow(), values.len() as u64);
    }

    #[test]
    fn histogram_frequencies_are_subprobabilities(values in scores()) {
        let h = Histogram::from_values(0.0, 100.0, 10, values.iter().copied());
        let total: f64 = (0..h.bins()).map(|i| h.frequency(i)).sum();
        prop_assert!(total <= 1.0 + 1e-9);
    }

    // ---- Summary / quantiles -------------------------------------------------

    #[test]
    fn quantiles_are_monotone_and_bounded(values in scores(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&values).unwrap();
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative_and_zero_for_constants(x in 0.0..10.0f64, n in 1usize..50) {
        let values = vec![x; n];
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.variance.abs() < 1e-12);
        prop_assert_eq!(s.min, s.max);
    }

    // ---- ScoreSet / FMR / FNMR ------------------------------------------------

    #[test]
    fn error_rates_are_monotone_in_threshold(genuine in scores(), impostor in scores()) {
        let set = ScoreSet::new(genuine, impostor);
        let mut prev_fmr = 1.0;
        let mut prev_fnmr = 0.0;
        for i in 0..60 {
            let t = i as f64 * 2.0 - 5.0;
            let fmr = set.fmr_at(t);
            let fnmr = set.fnmr_at(t);
            prop_assert!(fmr <= prev_fmr + 1e-12);
            prop_assert!(fnmr >= prev_fnmr - 1e-12);
            prop_assert!((0.0..=1.0).contains(&fmr));
            prop_assert!((0.0..=1.0).contains(&fnmr));
            prev_fmr = fmr;
            prev_fnmr = fnmr;
        }
    }

    #[test]
    fn threshold_at_fmr_is_always_conservative(
        genuine in scores(),
        impostor in scores(),
        target in 0.0..1.0f64,
    ) {
        let set = ScoreSet::new(genuine, impostor);
        let t = set.threshold_at_fmr(target);
        prop_assert!(set.fmr_at(t) <= target + 1e-12);
    }

    #[test]
    fn eer_balances_error_rates(genuine in scores(), impostor in scores()) {
        let set = ScoreSet::new(genuine, impostor);
        let (eer, t) = set.eer();
        prop_assert!((0.0..=1.0).contains(&eer));
        // At the reported threshold, the two rates bracket the EER value.
        let lo = set.fmr_at(t).min(set.fnmr_at(t));
        let hi = set.fmr_at(t).max(set.fnmr_at(t));
        prop_assert!(eer >= lo - 1e-9 && eer <= hi + 1e-9);
    }

    // ---- Kendall ----------------------------------------------------------------

    #[test]
    fn kendall_tau_stays_in_range(
        pairs in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 3..60)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(t) = kendall_tau_b(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&t.tau));
            prop_assert!(t.p_value >= 0.0 && t.p_value <= 2.0 + 1e-9);
            prop_assert!(t.log10_p <= 0.5);
        }
    }

    #[test]
    fn kendall_is_invariant_under_monotone_transform(
        pairs in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 3..50)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let y_scaled: Vec<f64> = y.iter().map(|v| v * 3.0 + 7.0).collect();
        match (kendall_tau_b(&x, &y), kendall_tau_b(&x, &y_scaled)) {
            (Some(a), Some(b)) => prop_assert!((a.tau - b.tau).abs() < 1e-12),
            (None, None) => {}
            _ => prop_assert!(false, "degeneracy changed under affine map"),
        }
    }

    #[test]
    fn kendall_negation_flips_tau(
        pairs in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 3..50)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        if let (Some(a), Some(b)) = (kendall_tau_b(&x, &y), kendall_tau_b(&x, &neg)) {
            prop_assert!((a.tau + b.tau).abs() < 1e-12);
        }
    }

    // ---- Bootstrap -----------------------------------------------------------------

    #[test]
    fn bootstrap_interval_brackets_estimate(values in scores(), seed in 0u64..1000) {
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let ci = fp_stats::bootstrap::bootstrap_ci(&values, mean, 100, 0.9, seed).unwrap();
        prop_assert!(ci.lower <= ci.estimate + 1e-9);
        prop_assert!(ci.estimate <= ci.upper + 1e-9);
    }
}
