//! **Gate: persistent gallery store parity** — search over a gallery
//! reopened from disk must be *byte-identical* to fresh in-memory
//! enrollment of the same entries, through every lifecycle event the
//! store supports.
//!
//! The fp-store unit tests prove the invariant on a small gallery; this
//! gate re-proves it on every CI run at system scale, over the same
//! synthetic cohort the scaling study uses, across five rungs:
//!
//! 1. **Open parity** — a two-segment gallery opened as a
//!    [`CandidateIndex`] returns bitwise-equal candidate lists and an
//!    equal RUNFP chain vs fresh enrollment (and records how much faster
//!    opening is than enrolling).
//! 2. **Sharded open parity** — the same store dealt into an in-process
//!    sharded index.
//! 3. **Serve-from-store** (with `--remote-shards`) — a real
//!    `serve-shard --gallery-dir` child answers the same probes without a
//!    single enroll RPC, is then SIGKILLed mid-run and restarted from the
//!    same directory, and still agrees — the crash-recovery path.
//! 4. **Churn parity** — tombstone a spread of entries, append a
//!    re-enrollment segment, and the live view still equals fresh
//!    enrollment of the survivors in live order.
//! 5. **Compact parity** — compaction reclaims the tombstones into one
//!    fresh segment without perturbing a byte, and every CRC checks out.
//!
//! Any divergence fails the gate loudly with the first offending probe.

use std::path::Path;
use std::time::{Duration, Instant};

use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::{Coordinator, RetryPolicy};
use fp_store::{CompactStats, GalleryStore};
use serde_json::json;

use crate::config::StudyConfig;
use crate::experiments::ext_scaling::{recapture, synthetic_template, CROSS_DEVICE, SAME_DEVICE};
use crate::report::Report;

/// Probes checked on every rung (each searches the whole gallery).
const MAX_PROBES: usize = 24;

/// What the parity pass measured.
struct StoreStats {
    gallery: usize,
    probes: usize,
    shards: usize,
    runfp: String,
    enroll_ms: f64,
    open_ms: f64,
    remote_checked: bool,
    churn_tombstoned: usize,
    churn_replacements: usize,
    compact: CompactStats,
    live_final: usize,
}

/// Refuses to clobber a directory that doesn't look like a gallery; clears
/// it when it does (the gate rebuilds the store from scratch every run).
fn prepare_dir(dir: &Path) -> Result<(), String> {
    if dir.exists() {
        let is_gallery = dir.join("MANIFEST").exists();
        let is_empty = std::fs::read_dir(dir)
            .map(|mut d| d.next().is_none())
            .unwrap_or(false);
        if !is_gallery && !is_empty {
            return Err(format!(
                "{} exists and holds no gallery MANIFEST; refusing to rebuild it",
                dir.display()
            ));
        }
        std::fs::remove_dir_all(dir).map_err(|e| format!("clear {}: {e}", dir.display()))?;
    }
    Ok(())
}

/// Candidate lists must agree element-wise; scores compare by bits via
/// `Candidate`'s derived equality.
fn assert_parity(
    rung: &str,
    p: usize,
    got: &fp_index::SearchResult,
    want: &fp_index::SearchResult,
) -> Result<(), String> {
    if got.candidates() != want.candidates() {
        return Err(format!(
            "probe {p}: {rung} candidate list diverged from fresh enrollment"
        ));
    }
    Ok(())
}

/// Builds the gate's synthetic gallery at `dir` as two segments — the
/// `study gallery build` entry point. Returns `(live entries, segments)`.
/// The cohort is identical to `study check-store`'s at the same
/// `--subjects`/`--seed`, so a built gallery can be served, inspected and
/// compacted by the other subcommands.
pub fn build_gallery(config: &StudyConfig, dir: &Path) -> Result<(usize, usize), String> {
    prepare_dir(dir)?;
    let seeds = SeedTree::new(config.seed).child(&[0xE5]);
    let gallery = config.subjects * 10;
    let pool: Vec<Template> = (0..gallery)
        .map(|i| synthetic_template(&seeds, i as u64, 22 + i % 14))
        .collect();
    let index_config = IndexConfig::scaled(gallery);
    let enroll = |templates: &[Template]| -> CandidateIndex<PairTableMatcher> {
        let mut index = CandidateIndex::with_config(PairTableMatcher::default(), index_config);
        index.enroll_all(templates);
        index
    };
    let mut store =
        GalleryStore::create(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let split = gallery * 3 / 5;
    store
        .append_index(&enroll(&pool[..split]))
        .map_err(|e| format!("append segment A: {e}"))?;
    store
        .append_index(&enroll(&pool[split..]))
        .map_err(|e| format!("append segment B: {e}"))?;
    Ok((store.live_len(), store.segments().len()))
}

/// Runs the gate: `Ok` with the stats, or the first divergence found.
fn check(config: &StudyConfig, dir: &Path) -> Result<StoreStats, String> {
    prepare_dir(dir)?;

    let seeds = SeedTree::new(config.seed).child(&[0xE5]);
    let gallery = config.subjects * 10;
    let pool: Vec<Template> = (0..gallery)
        .map(|i| synthetic_template(&seeds, i as u64, 22 + i % 14))
        .collect();
    let index_config = IndexConfig::scaled(gallery);
    let enroll = |templates: &[Template]| -> CandidateIndex<PairTableMatcher> {
        let mut index = CandidateIndex::with_config(PairTableMatcher::default(), index_config);
        index.enroll_all(templates);
        index
    };

    let probes = gallery.min(MAX_PROBES);
    let stride = gallery / probes;
    let probe_of = |p: usize| -> Template {
        let subject = p * stride;
        let profile = if p.is_multiple_of(2) {
            SAME_DEVICE
        } else {
            CROSS_DEVICE
        };
        recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile)
    };

    // The fresh-enrollment baseline every rung is compared against — and
    // the enroll-from-scratch cost the store exists to avoid paying twice.
    let start = Instant::now();
    let mut baseline = CandidateIndex::with_config(PairTableMatcher::default(), index_config)
        .with_run_seed(config.seed);
    baseline.enroll_all(&pool);
    let enroll_ms = start.elapsed().as_secs_f64() * 1e3;
    let baseline_results: Vec<_> = (0..probes).map(|p| baseline.search(&probe_of(p))).collect();
    let runfp = baseline.run_fingerprint().hex();

    // Build the store as TWO segments (60/40) so the open path exercises
    // multi-segment concatenation, not just a trivial single-file load.
    let mut store =
        GalleryStore::create(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let split = gallery * 3 / 5;
    let seq_a = store
        .append_index(&enroll(&pool[..split]))
        .map_err(|e| format!("append segment A: {e}"))?;
    store
        .append_index(&enroll(&pool[split..]))
        .map_err(|e| format!("append segment B: {e}"))?;

    // Rung 1: plain open parity (timed — the headline number).
    let start = Instant::now();
    let opened = GalleryStore::open(dir)
        .and_then(|s| s.open_index())
        .map_err(|e| format!("open gallery: {e}"))?
        .with_run_seed(config.seed);
    let open_ms = start.elapsed().as_secs_f64() * 1e3;
    if opened.len() != gallery {
        return Err(format!(
            "opened index has {} entries, enrolled {gallery}",
            opened.len()
        ));
    }
    for (p, want) in baseline_results.iter().enumerate() {
        assert_parity("opened-store", p, &opened.search(&probe_of(p)), want)?;
    }
    let runfp_opened = opened.run_fingerprint().hex();
    if runfp_opened != runfp {
        return Err(format!(
            "RUNFP diverged: fresh {runfp}, opened store {runfp_opened}"
        ));
    }

    // Rung 2: the same store dealt into an in-process sharded index.
    let shards = config.shards.max(2);
    let sharded = store
        .open_sharded(shards)
        .map_err(|e| format!("open sharded: {e}"))?
        .with_run_seed(config.seed);
    for (p, want) in baseline_results.iter().enumerate() {
        assert_parity("sharded-open", p, &sharded.search(&probe_of(p)), want)?;
    }
    let runfp_sharded = sharded.run_fingerprint().hex();
    if runfp_sharded != runfp {
        return Err(format!(
            "RUNFP diverged: fresh {runfp}, {shards}-shard open {runfp_sharded}"
        ));
    }

    // Rung 3: a real serve-shard child loads the gallery itself — zero
    // enroll RPCs — then survives a SIGKILL + restart from the same dir.
    let mut remote_checked = false;
    if config.remote_shards >= 1 {
        remote_rung(
            config,
            dir,
            index_config,
            &baseline_results,
            &probe_of,
            &runfp,
        )?;
        remote_checked = true;
    }

    // Rung 4: churn. Tombstone every 7th entry of segment A, append a
    // re-enrollment segment, and the live view must equal fresh
    // enrollment of the survivors in live order.
    for at in (0..split as u32).step_by(7) {
        store
            .tombstone(seq_a, at)
            .map_err(|e| format!("tombstone ({seq_a}, {at}): {e}"))?;
    }
    let churn_tombstoned = split.div_ceil(7);
    let replacements: Vec<Template> = (0..3)
        .map(|j| synthetic_template(&seeds, (gallery * 10 + j) as u64, 26))
        .collect();
    store
        .append_index(&enroll(&replacements))
        .map_err(|e| format!("append replacement segment: {e}"))?;

    let mut live: Vec<Template> = pool[..split]
        .iter()
        .enumerate()
        .filter(|(at, _)| at % 7 != 0)
        .map(|(_, t)| t.clone())
        .collect();
    live.extend_from_slice(&pool[split..]);
    live.extend_from_slice(&replacements);
    let mut fresh = CandidateIndex::with_config(PairTableMatcher::default(), index_config)
        .with_run_seed(config.seed);
    fresh.enroll_all(&live);
    let fresh_results: Vec<_> = (0..probes).map(|p| fresh.search(&probe_of(p))).collect();
    let fresh_runfp = fresh.run_fingerprint().hex();

    let churned = store
        .open_index()
        .map_err(|e| format!("open churned gallery: {e}"))?
        .with_run_seed(config.seed);
    if churned.len() != live.len() {
        return Err(format!(
            "churned live view has {} entries, expected {}",
            churned.len(),
            live.len()
        ));
    }
    for (p, want) in fresh_results.iter().enumerate() {
        assert_parity("churned-store", p, &churned.search(&probe_of(p)), want)?;
    }
    let runfp_churned = churned.run_fingerprint().hex();
    if runfp_churned != fresh_runfp {
        return Err(format!(
            "RUNFP diverged after churn: fresh {fresh_runfp}, opened {runfp_churned}"
        ));
    }

    // Rung 5: compact reclaims the tombstones without perturbing a byte.
    let compact = store.compact().map_err(|e| format!("compact: {e}"))?;
    if compact.segments_after != 1 || store.tombstone_count() != 0 {
        return Err(format!(
            "compact left {} segments and {} tombstones (expected 1 and 0)",
            compact.segments_after,
            store.tombstone_count()
        ));
    }
    if compact.bytes_after >= compact.bytes_before {
        return Err(format!(
            "compact did not reclaim space ({} -> {} bytes)",
            compact.bytes_before, compact.bytes_after
        ));
    }
    let compacted = store
        .open_index()
        .map_err(|e| format!("open compacted gallery: {e}"))?
        .with_run_seed(config.seed);
    for (p, want) in fresh_results.iter().enumerate() {
        assert_parity("compacted-store", p, &compacted.search(&probe_of(p)), want)?;
    }
    let runfp_compacted = compacted.run_fingerprint().hex();
    if runfp_compacted != fresh_runfp {
        return Err(format!(
            "RUNFP diverged after compact: fresh {fresh_runfp}, opened {runfp_compacted}"
        ));
    }
    let inspect = store.inspect().map_err(|e| format!("inspect: {e}"))?;
    if !inspect.all_crc_ok() {
        return Err("a compacted segment failed its CRC check".to_string());
    }

    Ok(StoreStats {
        gallery,
        probes,
        shards,
        runfp,
        enroll_ms,
        open_ms,
        remote_checked,
        churn_tombstoned,
        churn_replacements: replacements.len(),
        compact,
        live_final: live.len(),
    })
}

/// The cross-process rung: a `serve-shard --gallery-dir` child answers the
/// probe loop from the persisted gallery (no enroll RPCs), gets SIGKILLed,
/// is restarted from the same directory, and must still agree byte for
/// byte.
///
/// One child, not `--remote-shards` of them: the store persists the whole
/// gallery, and every child opening the same directory would serve every
/// entry. Serving one store across many hosts needs per-shard gallery
/// directories (see ROADMAP).
fn remote_rung(
    config: &StudyConfig,
    dir: &Path,
    index_config: IndexConfig,
    baseline_results: &[fp_index::SearchResult],
    probe_of: &dyn Fn(usize) -> Template,
    runfp: &str,
) -> Result<(), String> {
    let exe = match std::env::var_os("FP_SERVE_SHARD_EXE") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let dir_arg = dir.to_str().ok_or("gallery dir is not valid UTF-8")?;
    let args = ["serve-shard", "--gallery-dir", dir_arg];
    let probe_loop = |label: &str| -> Result<(), String> {
        let mut child = spawn_shard(&exe, &args)
            .map_err(|e| format!("spawn {exe:?} serve-shard --gallery-dir: {e}"))?;
        let remote = Coordinator::connect(
            &[child.addr],
            index_config,
            Duration::from_secs(60),
            RetryPolicy::default(),
        )
        .map_err(|e| format!("{label}: connect: {e}"))?
        .with_run_seed(config.seed);
        for (p, want) in baseline_results.iter().enumerate() {
            let result = remote
                .search(&probe_of(p))
                .map_err(|e| format!("{label}: probe {p}: {e}"))?;
            if result.candidates() != want.candidates() {
                return Err(format!(
                    "probe {p}: {label} candidate list diverged from fresh enrollment"
                ));
            }
        }
        let hex = remote.run_fingerprint().hex();
        if hex != runfp {
            return Err(format!("RUNFP diverged: fresh {runfp}, {label} {hex}"));
        }
        remote
            .verify_fingerprints()
            .map_err(|e| format!("{label}: fingerprint verification: {e}"))?;
        if label.starts_with("serve-from-store") {
            // First pass: crash the child instead of shutting it down —
            // the restart pass below must recover from the same directory.
            child.kill();
        } else {
            let _ = remote.shutdown_all();
            child.wait_exit(Duration::from_secs(5));
        }
        Ok(())
    };
    probe_loop("serve-from-store")?;
    probe_loop("serve-after-crash-restart")
}

/// Runs the gate and renders the report. `values["error"]` is `null` on
/// success; the CLI exit code keys off it.
pub fn run_check(config: &StudyConfig, gallery_dir: &Path) -> Report {
    match check(config, gallery_dir) {
        Ok(stats) => {
            let speedup = stats.enroll_ms / stats.open_ms.max(1e-9);
            let mut body = format!(
                "persistent-store parity over a {}-entry gallery ({} probes):\n\
                 \n\
                 open = fresh enrollment: candidate lists bitwise equal, RUNFP {}\n\
                 sharded open ({} shards): equal\n",
                stats.gallery, stats.probes, stats.runfp, stats.shards,
            );
            if stats.remote_checked {
                body.push_str(
                    "serve-shard --gallery-dir: equal, zero enroll RPCs, survived kill+restart\n",
                );
            } else {
                body.push_str("serve-shard --gallery-dir: skipped (run with --remote-shards 1)\n");
            }
            body.push_str(&format!(
                "churn ({} tombstones + {} re-enrollments): equal\n\
                 compact ({} -> {} segments, {} entries reclaimed, {} -> {} bytes): equal, all CRCs ok\n\
                 \n\
                 open {:.1} ms vs enroll {:.1} ms ({speedup:.0}x); {} live entries on disk\n",
                stats.churn_tombstoned,
                stats.churn_replacements,
                stats.compact.segments_before,
                stats.compact.segments_after,
                stats.compact.entries_dropped,
                stats.compact.bytes_before,
                stats.compact.bytes_after,
                stats.open_ms,
                stats.enroll_ms,
                stats.live_final,
            ));
            Report::new(
                "check-store",
                "persisted gallery = fresh enrollment (bitwise)",
                body,
                json!({
                    "error": null,
                    "gallery": stats.gallery,
                    "probes": stats.probes,
                    "shards": stats.shards,
                    "runfp": stats.runfp,
                    "enroll_ms": stats.enroll_ms,
                    "open_ms": stats.open_ms,
                    "remote_checked": stats.remote_checked,
                    "churn_tombstoned": stats.churn_tombstoned,
                    "churn_replacements": stats.churn_replacements,
                    "compact": serde_json::to_value(stats.compact).expect("serializable"),
                    "live_final": stats.live_final,
                }),
            )
        }
        Err(error) => Report::new(
            "check-store",
            "persisted gallery = fresh enrollment (bitwise)",
            format!("STORE PARITY FAILED: {error}\n"),
            json!({ "error": error }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    #[test]
    fn gate_passes_on_the_default_cohort() {
        let config = StudyConfig::builder().subjects(6).build();
        let dir = std::env::temp_dir().join(format!("fp-check-store-{}", std::process::id()));
        let report = run_check(&config, &dir);
        assert!(
            report.values["error"].is_null(),
            "store parity gate failed: {}",
            report.body
        );
        assert!(report.values["open_ms"].as_f64().unwrap() > 0.0);
        assert_eq!(report.values["compact"]["segments_after"], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_to_clobber_a_non_gallery_directory() {
        let dir = std::env::temp_dir().join(format!("fp-check-store-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("precious.txt"), "not a gallery").unwrap();
        let config = StudyConfig::builder().subjects(2).build();
        let report = run_check(&config, &dir);
        assert!(!report.values["error"].is_null());
        assert!(
            dir.join("precious.txt").exists(),
            "must not delete user files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
