#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests, bench
# compilation, the 1:N scaling smoke run, and the perf-regression gate.
# Mirrors .github/workflows/ci.yml so CI never surprises you.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline
# Workspace tests include the fp-index exactness/recall property suite and
# the fp-study golden-regression + determinism suite.
run cargo test -q --release --offline --workspace
# Benches must at least compile; the budgeted telemetry subset runs below.
run cargo bench --offline --no-run
# 1:N scaling smoke: a 200-subject ladder (200/1000/2000 galleries) plus a
# sharded ladder (1/2/4 shards over the 2000 gallery) must finish inside a
# 10-minute wall-clock budget, keep shortlist recall at spec on every rung,
# and show exact candidate-list parity between sharded and unsharded
# search. The gate itself is Rust (`study check-scaling`).
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    ext-scaling --subjects 200 --shards 4 --json target/ext-scaling-smoke.json
run cargo run -q --release --offline -p fp-study --bin study -- \
    check-scaling target/ext-scaling-smoke.json
# Cross-process smoke: the same ladder's top gallery served by two real
# `study serve-shard` child processes over loopback. `study check-serve`
# gates on exact candidate-list parity with BOTH in-process indexes, equal
# recall, and non-zero serve.* wire-traffic counters.
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    ext-scaling --subjects 200 --remote-shards 2 \
    --json target/ext-serve-smoke.json --metrics target/ext-serve-metrics.json
run cargo run -q --release --offline -p fp-study --bin study -- \
    check-serve target/ext-serve-smoke.json
# Concurrent-load smoke: the same 200-subject gallery on two serve-shard
# children, driven by concurrent client threads. `study check-load` gates
# on byte-identical candidate lists and an equal RUNFP chain vs a
# sequential in-process baseline, a deterministic 8-deep pipeline probe,
# an exact admission ledger (offered == accepted + overloaded), and
# monotone p50/p95/p99/p999 latency rungs; the rungs also feed a BENCH
# snapshot gated by bench-diff with very loose thresholds (loopback
# latency is the noisiest number a CI host produces).
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    load --subjects 200 --json target/load-smoke.json \
    --out target/BENCH_load_current.json
run cargo run -q --release --offline -p fp-study --bin study -- \
    check-load target/load-smoke.json
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_load_current.json --fail-pct 300 --warn-pct 50 \
    --require load/
# Distributed-tracing gate: a 2-shard serve-shard topology with one shard
# deliberately delayed. `study check-dist-trace` asserts the traced run is
# byte-identical (candidates + RUNFP) to the untraced run and an in-process
# baseline, the merged multi-process trace is one connected tree (every
# shard `server.request` span re-parented under the coordinator `serve.rpc`
# that issued it, one Chrome lane per process), and every slow-log exemplar
# names the delayed shard with server-reported work covering the injected
# delay. The merged trace and the exemplar log land in target/ as the same
# artifacts CI uploads.
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    check-dist-trace --remote-shards 2 \
    --trace target/dist-trace.json --slowlog target/dist-slowlog.jsonl
# Stage-1 kernel parity gate: the cache-blocked SoA arena kernel must be
# BITWISE identical to the scalar reference on an enrolled gallery (scores
# and hamming_ops meters), and the RUNFP chain over the same probe loop
# must be identical across unsharded, in-process sharded, and two real
# serve-shard child processes.
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    check-kernel --remote-shards 2
# Persistent-store gate: persist the 200-subject gallery, then prove every
# store path — open, sharded open, serve-shard --gallery-dir with a
# kill+restart, tombstone churn, compaction — yields candidate lists and a
# RUNFP chain byte-identical to fresh enrollment. The compacted gallery is
# left in target/store-gallery and its structural summary (per-segment
# sizes, per-section CRCs) in target/store-inspect.json, the same
# artifacts CI uploads.
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    check-store --subjects 200 --remote-shards 1 --gallery-dir target/store-gallery
run cargo run -q --release --offline -p fp-study --bin study -- \
    gallery inspect target/store-gallery --json target/store-inspect.json
# Fingerprint gate: the same remote smoke run must show one RUNFP chain on
# every rung — unsharded, in-process sharded, and the two real child
# processes — and `--deep` insists the cross-process evidence is present.
# The manifest artifact is what a release run would publish for O(1)
# behavioral comparison against any re-run.
run cargo run -q --release --offline -p fp-study --bin study -- \
    check-fingerprint target/ext-serve-smoke.json --deep
run cargo run -q --release --offline -p fp-study --bin study -- \
    fingerprint target/ext-serve-smoke.json --json target/fingerprint-manifest.json
# Perf gate: rerun the telemetry bench suite (the cheapest one) and diff it
# against the committed baseline. Thresholds are generous because the
# baseline was measured on a different machine; bench-diff additionally
# widens each bench's threshold to its own recorded p95 noise. Each gate
# declares the baseline slice its filtered bench run is answerable for via
# --require: a bench that silently vanishes from the run fails the gate.
run cargo bench -q --offline -p fp-bench --bench telemetry -- \
    --save "$ROOT/target/BENCH_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_current.json --fail-pct 50 --warn-pct 10 \
    --require counter/ --require value_histogram/ --require span/ \
    --require fingerprint/ --require study/
# Shard-search perf gate: the budgeted 2000-entry group only (the 10k group
# lives in the committed baseline for local runs; missing benches outside
# the required slice are reported as removed, never failed).
run cargo bench -q --offline -p fp-bench --bench shard -- shard_search_2000 \
    --save "$ROOT/target/BENCH_shard_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_shard_current.json --fail-pct 50 --warn-pct 10 \
    --require shard_search_2000/
# Stage-1 kernel perf gate: blocked vs scalar over the 2k and 10k ladders.
# The committed baseline records the blocked kernel's speedup; a kernel
# regression (or a silently missing stage1 bench) fails here.
run cargo bench -q --offline -p fp-bench --bench stage1 -- \
    --save "$ROOT/target/BENCH_stage1_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_stage1_current.json --fail-pct 50 --warn-pct 10 \
    --require stage1/
# Wire-format perf gate: encode/decode cost of the frames the cross-process
# search pays per probe and per enrollment batch.
run cargo bench -q --offline -p fp-bench --bench wire -- \
    --save "$ROOT/target/BENCH_wire_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_wire_current.json --fail-pct 50 --warn-pct 10 \
    --require wire_
# Tracing perf gate: the per-rpc cost of carrying a wire-v4 trace context
# and the per-drain cost of merging a shard's spans into the coordinator
# snapshot.
run cargo bench -q --offline -p fp-bench --bench trace -- \
    --save "$ROOT/target/BENCH_trace_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_trace_current.json --fail-pct 50 --warn-pct 10 \
    --require serve/ --require trace/
# Store perf gate: segment save / open / compact on the 10k ladder, plus
# the enroll-from-scratch reference the store's headline is measured
# against. The committed baseline pins open_10k roughly two orders of
# magnitude under enroll_10k (lazy TABLES open); losing that headline —
# or any of the four benches silently vanishing — fails here.
run cargo bench -q --offline -p fp-bench --bench store -- \
    --save "$ROOT/target/BENCH_store_current.json"
run cargo run -q --release --offline -p fp-bench --bin bench-diff -- \
    BENCH_baseline.json target/BENCH_store_current.json --fail-pct 50 --warn-pct 10 \
    --require store/
echo "all checks passed"
