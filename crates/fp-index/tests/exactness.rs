//! Exactness and recall guarantees of the candidate index.
//!
//! * With a shortlist budget of K = N the index must return rank lists
//!   *identical* to brute-force `compare_prepared` over the whole gallery —
//!   property-tested over random small templates.
//! * At the default budget, shortlist recall on seeded genuine probes must
//!   stay ≥ 0.98: pruning may only ever touch impostors, rarely mates.

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::{PairTableMatcher, PreparableMatcher};
use proptest::prelude::*;
use rand::Rng;

/// A deterministic synthetic template with `n` well-spread minutiae.
fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0xF1]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            1.0,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

/// A "second capture" of `template`: jittered minutiae, a small rigid
/// motion, and a few drops — the perturbation scale the matcher tests use
/// for graceful-degradation checks.
fn second_capture(template: &Template, seed: u64) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0xF2]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() <= 0.08 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(fp_core::dist::normal(&mut rng, 0.0, 0.15)),
        Vector::new(
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
        .transformed(&motion)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K = N: the shortlist covers the whole gallery, so the candidate list
    /// (ids *and* exact scores, in order) must equal brute force over all
    /// entries, and the genuine rank must match a hand-rolled count.
    #[test]
    fn full_budget_search_equals_brute_force(
        gallery_seed in 0u64..1_000,
        n in 4usize..14,
        probe_pick in 0usize..14,
    ) {
        let templates: Vec<Template> = (0..n)
            .map(|i| synthetic_template(gallery_seed * 1_000 + i as u64, 18 + (i * 5) % 18))
            .collect();
        let matcher = PairTableMatcher::default();
        let mut index = CandidateIndex::with_config(
            PairTableMatcher::default(),
            IndexConfig::default().with_shortlist(n),
        );
        index.enroll_all(&templates);

        let pick = probe_pick % n;
        let probe = second_capture(&templates[pick], gallery_seed ^ 0xABCD);

        let result = index.search(&probe);
        let reference = index.brute_force(&probe);
        prop_assert_eq!(result.candidates(), reference.candidates());
        prop_assert_eq!(result.pruned(), 0);

        // Against a fully independent brute force too (fresh prepares).
        let probe_prepared = matcher.prepare(&probe);
        let mut expected: Vec<(u32, f64)> = templates
            .iter()
            .enumerate()
            .map(|(id, t)| {
                (
                    id as u32,
                    matcher
                        .compare_prepared(&matcher.prepare(t), &probe_prepared)
                        .value(),
                )
            })
            .collect();
        expected.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.cmp(&b.0))
        });
        let got: Vec<(u32, f64)> = result
            .candidates()
            .iter()
            .map(|c| (c.id, c.score.value()))
            .collect();
        prop_assert_eq!(got, expected);

        // Rank semantics match fp-stats' pessimistic tie handling.
        let own = result
            .candidates()
            .iter()
            .find(|c| c.id == pick as u32)
            .expect("full budget includes everyone")
            .score;
        let hand_rank = 1 + result
            .candidates()
            .iter()
            .filter(|c| c.id != pick as u32 && c.score >= own)
            .count();
        prop_assert_eq!(result.genuine_rank(pick as u32), Some(hand_rank));
    }
}

#[test]
fn default_budget_recall_is_high_on_seeded_data() {
    const GALLERY: usize = 400;
    const PROBES: usize = 150;
    let templates: Vec<Template> = (0..GALLERY)
        .map(|i| synthetic_template(7_000 + i as u64, 22 + i % 14))
        .collect();
    let mut index =
        CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::scaled(GALLERY));
    index.enroll_all(&templates);

    let mut in_shortlist = 0usize;
    let mut rank1_agree = 0usize;
    for (p, template) in templates.iter().enumerate().take(PROBES) {
        let probe = second_capture(template, 90_000 + p as u64);
        let result = index.search(&probe);
        if result.genuine_rank(p as u32).is_some() {
            in_shortlist += 1;
        }
        let reference = index.brute_force(&probe);
        if result.best().map(|c| c.id) == reference.best().map(|c| c.id) {
            rank1_agree += 1;
        }
    }
    let recall = in_shortlist as f64 / PROBES as f64;
    assert!(
        recall >= 0.98,
        "shortlist recall {recall:.3} ({in_shortlist}/{PROBES}) below 0.98"
    );
    assert!(
        rank1_agree as f64 / PROBES as f64 >= 0.98,
        "rank-1 agreement with brute force too low: {rank1_agree}/{PROBES}"
    );
}

#[test]
fn batch_and_sequential_enrollment_build_identical_indexes() {
    let templates: Vec<Template> = (0..40)
        .map(|i| synthetic_template(3_000 + i, 20 + i as usize % 12))
        .collect();
    let mut batch = CandidateIndex::new(PairTableMatcher::default());
    batch.enroll_all(&templates);
    let mut sequential = CandidateIndex::new(PairTableMatcher::default());
    for t in &templates {
        sequential.enroll(t);
    }
    for p in [0usize, 7, 23] {
        let probe = second_capture(&templates[p], 555 + p as u64);
        let a = batch.search(&probe);
        let b = sequential.search(&probe);
        assert_eq!(a.candidates(), b.candidates());
    }
}

#[test]
fn telemetry_does_not_change_results_and_counts_work() {
    let telemetry = fp_telemetry::Telemetry::enabled();
    let templates: Vec<Template> = (0..60)
        .map(|i| synthetic_template(11_000 + i, 24))
        .collect();
    let mut plain = CandidateIndex::new(PairTableMatcher::default());
    plain.enroll_all(&templates);
    let mut metered = CandidateIndex::new(PairTableMatcher::default()).with_telemetry(&telemetry);
    metered.enroll_all(&templates);

    let probe = second_capture(&templates[31], 4_242);
    assert_eq!(
        plain.search(&probe).candidates(),
        metered.search(&probe).candidates()
    );

    let snap = telemetry.snapshot();
    assert_eq!(snap.counters["index.enrolled"], 60);
    assert_eq!(snap.counters["index.searches"], 1);

    // hamming_ops meters the true packed-u64 word comparisons inside
    // CylinderCodes::similarity — recompute the expectation through the
    // public counted API (one similarity per gallery entry).
    let mcc = fp_match::MccMatcher::default();
    let cap = plain.config().max_cylinders;
    let depth = plain.config().lss_depth;
    let probe_codes = fp_index::CylinderCodes::extract(&mcc, &probe, cap);
    let expected_word_ops: u64 = templates
        .iter()
        .map(|t| {
            let codes = fp_index::CylinderCodes::extract(&mcc, t, cap);
            probe_codes.similarity_counted(&codes, depth).1
        })
        .sum();
    assert!(expected_word_ops > 60, "word ops must exceed one-per-entry");
    assert_eq!(snap.counters["index.search.hamming_ops"], expected_word_ops);

    let k = snap.counters["index.search.rerank_comparisons"];
    assert_eq!(k, plain.config().shortlist as u64);
    assert_eq!(snap.counters["index.search.candidates_pruned"], 60 - k);
    assert!(snap.counters["index.search.bucket_hits"] > 0);
    // The batch path records one build sample per template plus one
    // whole-batch sample in its own histogram — no mixing.
    assert_eq!(snap.durations["index.build.seconds"].count, 60);
    assert_eq!(snap.durations["index.build.batch_seconds"].count, 1);
    assert_eq!(snap.durations["index.search.seconds"].count, 1);
}
