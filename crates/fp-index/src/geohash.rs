//! The pair-table geometric-hash bucket index.
//!
//! Every gallery template registers each of its pair-table entries under a
//! quantized `(distance, beta1, beta2)` key — the same rotation- and
//! translation-invariant features the pair-table matcher associates on. A
//! probe then votes: each of its own entries looks up the neighbourhood of
//! its key (±1 bin per dimension, so quantization boundaries cannot split a
//! genuine pair from its mate) and every gallery template found there gains
//! one vote. Genuine gallery entries share many compatible pairs with the
//! probe and accumulate deep vote counts; impostors only collect accidental
//! geometry.
//!
//! The table has two physical representations with identical lookup
//! behavior. A *map* (hash table) serves incremental enrollment. A *flat*
//! form — sorted keys, bucket offsets, one contiguous id array, exactly the
//! shape `fp-store` persists — serves galleries opened from disk: building
//! it is three bulk array moves instead of a million hash inserts, which is
//! what keeps segment open time in milliseconds. Lookups are key-exact in
//! both forms (hash probe vs. binary search), so votes accumulate
//! bit-identically; the first post-open [`insert`](BucketIndex::insert)
//! thaws a flat table back into a map.

use std::collections::HashMap;

use fp_match::PairFeature;

/// The flat persisted form of a bucket table: `keys` sorted strictly
/// ascending, bucket `k` owning `ids[offsets[k]..offsets[k + 1]]`
/// (`offsets.len() == keys.len() + 1`). This is byte-for-byte the shape
/// `fp-store` reads out of a segment's BUCKETS section.
#[derive(Debug, Clone, Default)]
pub struct FlatBuckets {
    /// Bucket keys, strictly ascending.
    pub keys: Vec<u64>,
    /// Prefix offsets into `ids`, one per key plus a trailing total.
    pub offsets: Vec<usize>,
    /// Every bucket's gallery ids, concatenated in key order.
    pub ids: Vec<u32>,
}

#[derive(Debug, Clone)]
enum Repr {
    Map(HashMap<u64, Vec<u32>>),
    Flat(FlatBuckets),
}

/// Bucket index from quantized pair features to the gallery ids that own
/// them.
#[derive(Debug, Clone)]
pub(crate) struct BucketIndex {
    repr: Repr,
    distance_bin: f64,
    angle_bins: usize,
}

impl BucketIndex {
    pub(crate) fn new(distance_bin: f64, angle_bins: usize) -> BucketIndex {
        assert!(distance_bin > 0.0, "distance bin must be positive");
        assert!(angle_bins >= 2, "need at least two angular bins");
        BucketIndex {
            repr: Repr::Map(HashMap::new()),
            distance_bin,
            angle_bins,
        }
    }

    /// Number of occupied buckets.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match &self.repr {
            Repr::Map(map) => map.len(),
            Repr::Flat(flat) => flat.keys.len(),
        }
    }

    fn angle_bin(&self, beta: f64) -> i64 {
        // beta is in (-pi, pi]; map to [0, angle_bins).
        let frac = (beta + std::f64::consts::PI) / std::f64::consts::TAU;
        let bin = (frac * self.angle_bins as f64).floor() as i64;
        bin.rem_euclid(self.angle_bins as i64)
    }

    /// The distinct angular bins within ±1 of `bin`. With few bins the
    /// neighbourhood wraps onto itself (`angle_bins = 2` maps `bin - 1` and
    /// `bin + 1` to the same bucket), so the offsets are deduplicated —
    /// otherwise a probe feature would visit one bucket key twice and
    /// double-count both its votes and the `bucket_hits` meter.
    fn angle_neighbourhood(&self, bin: i64) -> ([i64; 3], usize) {
        let bins = self.angle_bins as i64;
        let mut out = [0i64; 3];
        let mut n = 0;
        for db in -1..=1i64 {
            let b = (bin + db).rem_euclid(bins);
            if !out[..n].contains(&b) {
                out[n] = b;
                n += 1;
            }
        }
        (out, n)
    }

    fn key(&self, d_bin: i64, b1_bin: i64, b2_bin: i64) -> u64 {
        // Distances are bounded by the pair-table max (~12 mm / bin width),
        // angles by angle_bins; 21 bits per dimension is far more than
        // enough and keeps the key a cheap single u64.
        debug_assert!(d_bin >= 0 && (b1_bin as u64) < (1 << 21) && (b2_bin as u64) < (1 << 21));
        ((d_bin as u64) << 42) | ((b1_bin as u64) << 21) | b2_bin as u64
    }

    /// The ids registered under exactly `key`, in either representation.
    fn bucket(&self, key: u64) -> Option<&[u32]> {
        match &self.repr {
            Repr::Map(map) => map.get(&key).map(Vec::as_slice),
            Repr::Flat(flat) => flat
                .keys
                .binary_search(&key)
                .ok()
                .map(|k| &flat.ids[flat.offsets[k]..flat.offsets[k + 1]]),
        }
    }

    /// Dumps every bucket as `(key, ids)` sorted by key ascending, ids in
    /// insertion order (ascending gallery id, duplicates adjacent when one
    /// entry registered the same key twice). The canonical persistence
    /// order: dumping, re-loading via [`from_sorted_parts`]
    /// (Self::from_sorted_parts) and dumping again yields identical bytes.
    pub(crate) fn dump_sorted(&self) -> Vec<(u64, Vec<u32>)> {
        match &self.repr {
            Repr::Map(map) => {
                let mut out: Vec<(u64, Vec<u32>)> =
                    map.iter().map(|(&key, ids)| (key, ids.clone())).collect();
                out.sort_unstable_by_key(|(key, _)| *key);
                out
            }
            Repr::Flat(flat) => flat
                .keys
                .iter()
                .enumerate()
                .map(|(k, &key)| (key, flat.ids[flat.offsets[k]..flat.offsets[k + 1]].to_vec()))
                .collect(),
        }
    }

    /// Rebuilds a bucket index from dumped parts, flattened. The caller
    /// (the single boundary is `CandidateIndex::from_store_parts`) has
    /// already validated ids against the gallery length, keys as strictly
    /// ascending, and the `(distance_bin, angle_bins)` pair against
    /// [`new`](Self::new)'s requirements.
    pub(crate) fn from_sorted_parts(
        distance_bin: f64,
        angle_bins: usize,
        parts: impl IntoIterator<Item = (u64, Vec<u32>)>,
    ) -> BucketIndex {
        let mut flat = FlatBuckets::default();
        flat.offsets.push(0);
        for (key, ids) in parts {
            flat.keys.push(key);
            flat.ids.extend_from_slice(&ids);
            flat.offsets.push(flat.ids.len());
        }
        BucketIndex::from_flat_parts(distance_bin, angle_bins, flat)
    }

    /// Adopts an already-flat bucket table (the zero-shuffle open path:
    /// `fp-store` decodes a segment's BUCKETS section straight into this
    /// shape). Lookup behavior is key-exact and per-bucket id order is
    /// preserved, so the rebuilt index accumulates votes bit-identically
    /// to one grown by [`insert`](Self::insert) calls.
    pub(crate) fn from_flat_parts(
        distance_bin: f64,
        angle_bins: usize,
        flat: FlatBuckets,
    ) -> BucketIndex {
        debug_assert_eq!(flat.offsets.len(), flat.keys.len() + 1);
        debug_assert!(flat.keys.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(flat.offsets.last().copied().unwrap_or(0), flat.ids.len());
        let mut index = BucketIndex::new(distance_bin, angle_bins);
        index.repr = Repr::Flat(flat);
        index
    }

    /// Registers the pair features of gallery template `id`. A flat
    /// (opened-from-disk) table is thawed into a map first; bucket id
    /// order is preserved, so post-open enrollment behaves exactly as if
    /// the whole gallery had been enrolled incrementally.
    pub(crate) fn insert(&mut self, id: u32, features: impl Iterator<Item = PairFeature>) {
        if let Repr::Flat(flat) = &self.repr {
            let thawed: HashMap<u64, Vec<u32>> = flat
                .keys
                .iter()
                .enumerate()
                .map(|(k, &key)| (key, flat.ids[flat.offsets[k]..flat.offsets[k + 1]].to_vec()))
                .collect();
            self.repr = Repr::Map(thawed);
        }
        for f in features {
            let key = self.key(
                (f.d / self.distance_bin).floor() as i64,
                self.angle_bin(f.beta1),
                self.angle_bin(f.beta2),
            );
            let Repr::Map(map) = &mut self.repr else {
                unreachable!("flat tables are thawed above");
            };
            map.entry(key).or_default().push(id);
        }
    }

    /// Accumulates one vote into `votes[id]` for every gallery entry found
    /// in the ±1-bin neighbourhood of each probe feature. Each distinct
    /// bucket key is visited at most once per probe feature (the angular
    /// neighbourhoods are deduplicated, so tiny `angle_bins` cannot wrap a
    /// feature back onto a key it already voted through). Returns the
    /// number of bucket hits (vote increments) performed.
    pub(crate) fn accumulate(
        &self,
        features: impl Iterator<Item = PairFeature>,
        votes: &mut [u32],
    ) -> u64 {
        let mut hits = 0u64;
        for f in features {
            let d_bin = (f.d / self.distance_bin).floor() as i64;
            let (b1s, n1) = self.angle_neighbourhood(self.angle_bin(f.beta1));
            let (b2s, n2) = self.angle_neighbourhood(self.angle_bin(f.beta2));
            // The distance offsets are distinct integers, so only the
            // angular dimensions can collide.
            for dd in -1..=1i64 {
                let d = d_bin + dd;
                if d < 0 {
                    continue;
                }
                for &b1 in &b1s[..n1] {
                    for &b2 in &b2s[..n2] {
                        if let Some(bucket) = self.bucket(self.key(d, b1, b2)) {
                            hits += bucket.len() as u64;
                            for &id in bucket {
                                votes[id as usize] += 1;
                            }
                        }
                    }
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(d: f64, beta1: f64, beta2: f64) -> PairFeature {
        PairFeature { d, beta1, beta2 }
    }

    #[test]
    fn identical_features_vote_for_their_owner() {
        let mut index = BucketIndex::new(0.5, 16);
        index.insert(0, [feature(4.2, 0.3, -1.1)].into_iter());
        index.insert(1, [feature(9.0, 2.0, 2.5)].into_iter());
        let mut votes = vec![0u32; 2];
        let hits = index.accumulate([feature(4.2, 0.3, -1.1)].into_iter(), &mut votes);
        assert_eq!(votes[0], 1);
        assert_eq!(votes[1], 0);
        assert_eq!(hits, 1);
    }

    #[test]
    fn near_boundary_features_still_match_via_neighbourhood() {
        let mut index = BucketIndex::new(0.5, 16);
        index.insert(0, [feature(4.49, 0.0, 0.0)].into_iter());
        let mut votes = vec![0u32; 1];
        // One distance bin over and slightly rotated: the ±1 neighbourhood
        // still reaches the registered bucket.
        index.accumulate([feature(4.51, 0.1, -0.1)].into_iter(), &mut votes);
        assert_eq!(votes[0], 1);
    }

    #[test]
    fn angle_bins_wrap_around_pi() {
        let mut index = BucketIndex::new(0.5, 16);
        let pi = std::f64::consts::PI;
        index.insert(0, [feature(6.0, pi - 0.01, 0.0)].into_iter());
        let mut votes = vec![0u32; 1];
        // Just across the ±pi seam: wrapping neighbourhood must find it.
        index.accumulate([feature(6.0, -pi + 0.01, 0.0)].into_iter(), &mut votes);
        assert_eq!(votes[0], 1);
    }

    #[test]
    fn two_angle_bins_do_not_double_count_the_wrapped_neighbour() {
        // With angle_bins = 2 the ±1 angular offsets wrap onto the same
        // bin (`bin - 1 ≡ bin + 1 mod 2`), so before deduplication a probe
        // feature visited the opposite-bin bucket 2x per angular dimension
        // (4x combined) and double-counted votes and bucket_hits.
        let pi = std::f64::consts::PI;
        let mut index = BucketIndex::new(0.5, 2);
        // beta = +pi/2 lands in bin 1 on both angles; the probe below (bin
        // 0 on both) reaches it only through the wrapping neighbourhood.
        index.insert(0, [feature(5.0, pi / 2.0, pi / 2.0)].into_iter());
        let mut votes = vec![0u32; 1];
        let hits = index.accumulate([feature(5.0, -pi / 2.0, -pi / 2.0)].into_iter(), &mut votes);
        assert_eq!(votes[0], 1, "wrapped neighbour must be visited once");
        assert_eq!(hits, 1, "bucket_hits must match the deduped visits");

        // A same-bin probe also votes exactly once.
        let mut votes = vec![0u32; 1];
        let hits = index.accumulate([feature(5.0, pi / 2.0, pi / 2.0)].into_iter(), &mut votes);
        assert_eq!(votes[0], 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn three_angle_bins_visit_every_bucket_exactly_once() {
        // angle_bins = 3: the ±1 neighbourhood spans all three bins, each
        // exactly once — any same-distance feature gets exactly one vote
        // per probe feature, never two.
        let tau = std::f64::consts::TAU;
        let mut index = BucketIndex::new(0.5, 3);
        for (id, frac) in [(0u32, 0.1), (1, 0.45), (2, 0.8)] {
            let beta = frac * tau - std::f64::consts::PI;
            index.insert(id, [feature(5.0, beta, beta)].into_iter());
        }
        let mut votes = vec![0u32; 3];
        let probe_beta = 0.45 * tau - std::f64::consts::PI;
        let hits = index.accumulate(
            [feature(5.0, probe_beta, probe_beta)].into_iter(),
            &mut votes,
        );
        assert_eq!(votes, vec![1, 1, 1], "one vote per reachable entry");
        assert_eq!(hits, 3);
    }

    #[test]
    fn far_features_do_not_vote() {
        let mut index = BucketIndex::new(0.5, 16);
        index.insert(0, [feature(3.0, 0.0, 0.0)].into_iter());
        let mut votes = vec![0u32; 1];
        index.accumulate([feature(8.0, 2.0, -2.0)].into_iter(), &mut votes);
        assert_eq!(votes[0], 0);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn flat_and_map_representations_vote_identically() {
        let tau = std::f64::consts::TAU;
        let mut grown = BucketIndex::new(0.5, 16);
        for id in 0..20u32 {
            let fs: Vec<PairFeature> = (0..6)
                .map(|k| {
                    let a =
                        ((id as f64 * 0.37 + k as f64 * 0.11) % 1.0) * tau - std::f64::consts::PI;
                    feature(2.0 + (id as f64 * 0.63 + k as f64) % 9.0, a, -a * 0.5)
                })
                .collect();
            grown.insert(id, fs.into_iter());
        }
        let flat = BucketIndex::from_sorted_parts(0.5, 16, grown.dump_sorted());
        assert!(matches!(flat.repr, Repr::Flat(_)));
        assert_eq!(grown.dump_sorted(), flat.dump_sorted());

        let probes: Vec<PairFeature> = (0..10)
            .map(|k| {
                feature(
                    2.5 + k as f64 * 0.8,
                    k as f64 * 0.3 - 1.5,
                    1.2 - k as f64 * 0.2,
                )
            })
            .collect();
        let mut votes_map = vec![0u32; 20];
        let mut votes_flat = vec![0u32; 20];
        let hits_map = grown.accumulate(probes.iter().copied(), &mut votes_map);
        let hits_flat = flat.accumulate(probes.iter().copied(), &mut votes_flat);
        assert_eq!(votes_map, votes_flat);
        assert_eq!(hits_map, hits_flat);

        // Thaw: inserting into the flat table matches inserting into the
        // grown map, buckets and all.
        let mut thawed = flat.clone();
        let extra = [feature(4.0, 0.25, -0.75)];
        thawed.insert(20, extra.iter().copied());
        let mut also_grown = grown.clone();
        also_grown.insert(20, extra.iter().copied());
        assert_eq!(thawed.dump_sorted(), also_grown.dump_sorted());
    }
}
