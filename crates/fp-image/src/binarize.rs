//! Adaptive binarization: ridge pixels are those darker than their local
//! neighbourhood mean.

use crate::image::GrayImage;
use crate::segment::Mask;

/// A binary ridge map: `true` = ridge.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryImage {
    width: usize,
    height: usize,
    data: Vec<bool>,
}

impl BinaryImage {
    /// Creates a map from raw parts.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<bool>) -> Self {
        assert_eq!(data.len(), width * height, "data length mismatch");
        BinaryImage {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor; out-of-bounds reads as background.
    #[inline]
    pub fn at(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x >= self.width as isize || y >= self.height as isize {
            false
        } else {
            self.data[y as usize * self.width + x as usize]
        }
    }

    /// Sets a pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Number of ridge pixels.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Raw data access.
    pub fn data(&self) -> &[bool] {
        &self.data
    }
}

/// Binarizes `img` by comparing each foreground pixel against the mean of a
/// `(2 radius + 1)²` neighbourhood (integral-image accelerated). Background
/// pixels are never ridges.
pub fn adaptive_binarize(img: &GrayImage, mask: &Mask, radius: usize) -> BinaryImage {
    let (w, h) = (img.width(), img.height());

    // Summed-area table with one extra row/column of zeros.
    let mut sat = vec![0.0f64; (w + 1) * (h + 1)];
    for y in 0..h {
        let mut row = 0.0f64;
        for x in 0..w {
            row += img.at(x, y) as f64;
            sat[(y + 1) * (w + 1) + (x + 1)] = sat[y * (w + 1) + (x + 1)] + row;
        }
    }
    let rect_sum = |x0: usize, y0: usize, x1: usize, y1: usize| -> f64 {
        sat[y1 * (w + 1) + x1] - sat[y0 * (w + 1) + x1] - sat[y1 * (w + 1) + x0]
            + sat[y0 * (w + 1) + x0]
    };

    let mut data = vec![false; w * h];
    for y in 0..h {
        for x in 0..w {
            if !mask.is_foreground(x, y) {
                continue;
            }
            let x0 = x.saturating_sub(radius);
            let y0 = y.saturating_sub(radius);
            let x1 = (x + radius + 1).min(w);
            let y1 = (y + radius + 1).min(h);
            let count = ((x1 - x0) * (y1 - y0)) as f64;
            let mean = rect_sum(x0, y0, x1, y1) / count;
            data[y * w + x] = (img.at(x, y) as f64) < mean - 1e-4;
        }
    }
    BinaryImage::from_data(w, h, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment;

    fn grating(period: f32, w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::filled(w, h, 0.0).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    0.5 + 0.5 * (y as f32 * std::f32::consts::TAU / period).cos(),
                );
            }
        }
        img
    }

    #[test]
    fn grating_binarizes_to_half_ridge() {
        let img = grating(8.0, 64, 64);
        let mask = segment(&img, 16, 0.1);
        let bin = adaptive_binarize(&img, &mask, 6);
        let frac = bin.count_ones() as f64 / (64.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.15, "ridge fraction {frac}");
    }

    #[test]
    fn dark_rows_become_ridges() {
        let img = grating(8.0, 32, 32);
        let mask = segment(&img, 16, 0.1);
        let bin = adaptive_binarize(&img, &mask, 6);
        // Row 4 is the cosine trough (dark) for period 8: y=4 -> cos(pi)=-1.
        assert!(bin.at(16, 4));
        // Row 0 is the bright crest.
        assert!(!bin.at(16, 0));
    }

    #[test]
    fn background_is_never_ridge() {
        let img = GrayImage::filled(32, 32, 0.2).unwrap();
        let mask = segment(&img, 16, 0.5); // flat -> all background
        let bin = adaptive_binarize(&img, &mask, 4);
        assert_eq!(bin.count_ones(), 0);
    }

    #[test]
    fn out_of_bounds_reads_false() {
        let bin = BinaryImage::from_data(2, 2, vec![true; 4]);
        assert!(!bin.at(-1, 0));
        assert!(!bin.at(0, 5));
        assert!(bin.at(1, 1));
    }
}
