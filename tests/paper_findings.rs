//! The qualitative findings of Lugini et al. (DSN 2013), asserted end to end
//! on a mid-sized study run. These are the claims EXPERIMENTS.md records;
//! if a model change breaks one of them, the reproduction has regressed.
//!
//! Run in release mode (`cargo test --release --test paper_findings`); the
//! run computes ~40k comparisons.

use std::sync::OnceLock;

use fingerprint_interop::prelude::*;
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;

const SUBJECTS: usize = 120;

fn data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        StudyData::generate(&StudyConfig::builder().subjects(SUBJECTS).seed(2013).build())
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Finding 1 (abstract): "genuine matching scores were generally higher when
/// both images were captured using the same device".
#[test]
fn same_device_genuine_scores_are_higher() {
    let d = data();
    let dmg = mean(&d.scores.dmg());
    let ddmg = mean(&d.scores.ddmg());
    assert!(
        dmg > ddmg + 1.0,
        "DMG mean {dmg:.1} not clearly above DDMG mean {ddmg:.1}"
    );
}

/// Finding 2 (abstract): "false-non-match-rates were affected by capture
/// device diversity. Conversely the false-match-rates were not."
#[test]
fn fnmr_is_affected_by_diversity_fmr_is_not() {
    let d = data();
    // FNMR at a common threshold: cross-device must be clearly worse.
    let same = fp_stats::roc::ScoreSet::new(d.scores.dmg(), d.scores.dmi());
    let cross = fp_stats::roc::ScoreSet::new(d.scores.ddmg(), d.scores.ddmi());
    let t = same.threshold_at_fmr(1e-3);
    assert!(
        cross.fnmr_at(t) > same.fnmr_at(t),
        "cross FNMR {:.4} not above same-device FNMR {:.4}",
        cross.fnmr_at(t),
        same.fnmr_at(t)
    );
    // FMR at the same threshold: essentially unchanged by diversity.
    let fmr_same = same.fmr_at(t);
    let fmr_cross = cross.fmr_at(t);
    assert!(
        (fmr_cross - fmr_same).abs() < 5e-3,
        "FMR moved under diversity: {fmr_same:.5} -> {fmr_cross:.5}"
    );
}

/// Figure 2/3: impostor scores stay in a bounded low range in both
/// scenarios, on the calibrated (paper) scale.
#[test]
fn impostor_scores_have_a_low_ceiling() {
    let d = data();
    let max_dmi = d.scores.dmi().into_iter().fold(0.0f64, f64::max);
    let max_ddmi = d.scores.ddmi().into_iter().fold(0.0f64, f64::max);
    // Paper: never above 7. Allow headroom for the sampled tail.
    assert!(max_dmi < 10.0, "DMI max {max_dmi:.1}");
    assert!(max_ddmi < 10.0, "DDMI max {max_ddmi:.1}");
    // And the genuine medians sit far above that ceiling.
    let mut dmg = d.scores.dmg();
    dmg.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = dmg[dmg.len() / 2];
    assert!(
        median > max_dmi,
        "genuine median {median:.1} under impostor ceiling"
    );
}

/// Table 5 shape: the diagonal is the row minimum exactly for D0, D2, D4 —
/// the paper's stated exceptions being {D1,D1} (noisy optics) and {D3,D3}
/// (small capture window).
#[test]
fn fnmr_matrix_has_the_papers_anomaly_structure() {
    let d = data();
    let fnmr = |g: u8, p: u8| {
        d.scores
            .score_set(DeviceId(g), DeviceId(p))
            .fnmr_at_fmr(1e-4)
    };
    // D0 diagonal is its row minimum.
    for p in 1..5 {
        assert!(
            fnmr(0, 0) <= fnmr(0, p) + 1e-9,
            "D0 diagonal not minimal vs probe D{p}"
        );
    }
    // D1 anomaly: a D0 probe beats the D1 diagonal.
    assert!(
        fnmr(1, 0) <= fnmr(1, 1),
        "expected {{D1,D1}} >= {{D1,D0}}: {} vs {}",
        fnmr(1, 1),
        fnmr(1, 0)
    );
    // D3 anomaly: a D0 probe beats the D3 diagonal.
    assert!(
        fnmr(3, 0) <= fnmr(3, 3),
        "expected {{D3,D3}} >= {{D3,D0}}: {} vs {}",
        fnmr(3, 3),
        fnmr(3, 0)
    );
    // D4 is the best diagonal (same-card rescans) ...
    for g in 0..4 {
        assert!(
            fnmr(4, 4) <= fnmr(g, g) + 1e-9,
            "D4 diagonal {} not best (D{g} diagonal {})",
            fnmr(4, 4),
            fnmr(g, g)
        );
    }
    // ... and the worst off-diagonal row on average.
    let row_mean = |g: u8| {
        mean(
            &(0..5)
                .filter(|&p| p != g)
                .map(|p| fnmr(g, p))
                .collect::<Vec<_>>(),
        )
    };
    for g in 0..4 {
        assert!(
            row_mean(4) >= row_mean(g),
            "ink row mean {} not the worst (D{g}: {})",
            row_mean(4),
            row_mean(g)
        );
    }
}

/// Figure 4: for every gallery device, the ink ten-print probe is among the
/// two lowest-scoring probe devices.
#[test]
fn ink_probes_score_lowest() {
    let d = data();
    for g in 0..4u8 {
        let means: Vec<f64> = (0..5u8)
            .map(|p| mean(&d.scores.genuine_values(DeviceId(g), DeviceId(p))))
            .collect();
        let ink = means[4];
        let lower_than_ink = means[..4].iter().filter(|&&m| m < ink).count();
        assert!(
            lower_than_ink <= 1,
            "gallery D{g}: ink probe mean {ink:.1} beaten by {lower_than_ink} devices ({means:?})"
        );
    }
}

/// Table 4: the Kendall matrix has the paper's structure — perfect
/// correlation (extreme p) on the diagonal, weaker association off it, and
/// measurable asymmetry.
#[test]
fn kendall_matrix_structure() {
    let d = data();
    let cell = |x: u8, y: u8| {
        fp_stats::kendall::kendall_tau_b(
            &d.scores.genuine_values(DeviceId(x), DeviceId(x)),
            &d.scores.genuine_values(DeviceId(x), DeviceId(y)),
        )
        .expect("non-degenerate")
    };
    for x in 0..4u8 {
        let diag = cell(x, x);
        assert!((diag.tau - 1.0).abs() < 1e-9);
        for y in 0..5u8 {
            if y != x {
                let off = cell(x, y);
                assert!(off.tau < 1.0);
                assert!(
                    diag.log10_p < off.log10_p,
                    "diagonal p not more extreme at ({x},{y})"
                );
            }
        }
    }
    // Asymmetry: at least one pair (x, y) differs from (y, x) noticeably.
    let mut max_gap = 0.0f64;
    for x in 0..4u8 {
        for y in 0..4u8 {
            if x != y {
                max_gap = max_gap.max((cell(x, y).tau - cell(y, x).tau).abs());
            }
        }
    }
    assert!(max_gap > 0.01, "Kendall matrix is suspiciously symmetric");
}

/// Figure 5: low genuine scores concentrate in poor-quality pairs, and the
/// diverse-device scenario needs stricter quality to avoid them.
#[test]
fn quality_interacts_with_interoperability() {
    let d = data();
    let mut low_same = 0usize;
    let mut low_same_goodq = 0usize;
    let mut total_same = 0usize;
    let mut low_cross = 0usize;
    let mut low_cross_goodq = 0usize;
    let mut total_cross = 0usize;
    for g in 0..5u8 {
        for p in 0..5u8 {
            for s in d.scores.genuine_cell(DeviceId(g), DeviceId(p)) {
                let low = s.score < 10.0;
                let good = s.gallery_quality.value() <= 2 && s.probe_quality.value() <= 2;
                if g == p {
                    total_same += 1;
                    low_same += low as usize;
                    low_same_goodq += (low && good) as usize;
                } else {
                    total_cross += 1;
                    low_cross += low as usize;
                    low_cross_goodq += (low && good) as usize;
                }
            }
        }
    }
    let rate_same = low_same as f64 / total_same as f64;
    let rate_cross = low_cross as f64 / total_cross as f64;
    assert!(
        rate_cross > rate_same,
        "low-score rate: cross {rate_cross:.3} not above same {rate_same:.3}"
    );
    // Good-quality pairs are protected in both scenarios.
    assert!(low_same_goodq as f64 <= low_same as f64 * 0.5 + 1.0);
    assert!(low_cross_goodq as f64 <= low_cross as f64 * 0.5 + 1.0);
}

/// Table 6: restricting to good-quality pairs improves (or preserves) the
/// FNMR of every cell at the looser operating point.
#[test]
fn quality_gating_never_hurts_fnmr() {
    let d = data();
    for g in 0..5u8 {
        for p in 0..5u8 {
            let all: Vec<f64> = d.scores.genuine_values(DeviceId(g), DeviceId(p));
            let good: Vec<f64> = d
                .scores
                .genuine_cell(DeviceId(g), DeviceId(p))
                .iter()
                .filter(|s| s.gallery_quality.value() < 3 && s.probe_quality.value() < 3)
                .map(|s| s.score)
                .collect();
            if good.len() < 10 {
                continue; // not enough gated data to compare rates
            }
            let impostor = d.scores.impostor_cell(DeviceId(g), DeviceId(p)).to_vec();
            let t =
                fp_stats::roc::ScoreSet::new(all.clone(), impostor.clone()).threshold_at_fmr(1e-3);
            let fnmr_all = all.iter().filter(|&&s| s < t).count() as f64 / all.len() as f64;
            let fnmr_good = good.iter().filter(|&&s| s < t).count() as f64 / good.len() as f64;
            assert!(
                fnmr_good <= fnmr_all + 0.02,
                "cell ({g},{p}): gating worsened FNMR {fnmr_all:.3} -> {fnmr_good:.3}"
            );
        }
    }
}

/// Table 3 counts scale exactly with the design at any cohort size.
#[test]
fn score_set_sizes_match_design() {
    let d = data();
    assert_eq!(d.scores.dmg().len(), SUBJECTS * 4);
    assert_eq!(d.scores.ddmg().len(), SUBJECTS * 20);
    assert_eq!(
        d.scores.dmi().len(),
        d.dataset.config().impostors_per_cell * 5
    );
    assert_eq!(
        d.scores.ddmi().len(),
        d.dataset.config().impostors_per_cell * 20
    );
}
