//! **Extension: closed-set identification (1:N search)** — the operational
//! mode that motivates the paper's US-VISIT framing.
//!
//! Every subject is enrolled on the gallery device; each probe is searched
//! against the *whole* gallery and the true identity's rank is recorded.
//! Interoperability hits identification harder than verification: a genuine
//! score only needs to clear the threshold to verify, but it must beat
//! every impostor in the database to identify at rank 1.
//!
//! Earlier revisions brute-forced every probe against every gallery entry
//! and had to cap the gallery at 150 subjects to stay tractable. The search
//! now goes through [`fp_index::CandidateIndex`] — min-support geometric-hash
//! votes and per-minutia cylinder codes shortlist the gallery, and only the
//! shortlist is scored exactly — so the full cohort is searched at every
//! scale. A deterministic probe subsample is audited against brute force to
//! report rank-1 agreement alongside the comparison-count reduction; the
//! report itself stays a pure function of the dataset, so indexed and
//! brute-force wall clock go to telemetry
//! (`ext_identification.indexed.seconds` over all searches,
//! `ext_identification.brute.seconds` over the audited ones).

use fp_core::ids::{DeviceId, SubjectId};
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;
use fp_stats::cmc::CmcCurve;
use fp_telemetry::Telemetry;
use serde_json::json;

use crate::parallel::parallel_map;
use crate::report::Report;
use crate::scores::StudyData;

/// Stride divisor for the brute-force audit: roughly this many probes per
/// device are re-searched exhaustively to confirm the index agrees.
const AUDIT_PROBES: usize = 24;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    run_with(data, &Telemetry::disabled())
}

/// [`run`] with telemetry: index build/search counters and wall time land in
/// `telemetry`. The report itself is a pure function of the dataset.
pub fn run_with(data: &StudyData, telemetry: &Telemetry) -> Report {
    let n = data.dataset.len();
    let gallery_device = DeviceId(0);

    // Enroll the whole cohort (D0, session 0) into the candidate index.
    let templates: Vec<Template> = (0..n)
        .map(|s| {
            data.dataset
                .captures(SubjectId(s as u32), gallery_device)
                .gallery
                .template()
                .clone()
        })
        .collect();
    let mut index =
        CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::scaled(n))
            .with_telemetry(telemetry);
    index.enroll_all(&templates);
    let shortlist = index.config().shortlist.min(n);

    let audit_stride = n.div_ceil(AUDIT_PROBES).max(1);
    let indexed_time = telemetry.duration("ext_identification.indexed.seconds");
    let brute_time = telemetry.duration("ext_identification.brute.seconds");
    let mut rows = Vec::new();
    let mut rank_vectors = serde_json::Map::new();
    let mut audited = 0usize;
    let mut audit_agreed = 0usize;
    for probe_device in DeviceId::ALL {
        // Rank of the true identity for every probe (parallel over probes).
        // A shortlist miss cannot rank better than the whole shortlist, so
        // it is recorded pessimistically as rank `n` (beyond any CMC rank
        // the report quotes).
        let search_start = std::time::Instant::now();
        let outcomes: Vec<(usize, bool)> = parallel_map(n, |s| {
            let probe = data
                .dataset
                .captures(SubjectId(s as u32), probe_device)
                .probe
                .template();
            let result = index.search(probe);
            match result.genuine_rank(s as u32) {
                Some(rank) => (rank, true),
                None => (n.max(shortlist + 1), false),
            }
        });
        indexed_time.record(search_start.elapsed());
        // Brute-force audit on a deterministic probe subsample: the index's
        // top candidate must be the exhaustive scan's top candidate. The
        // indexed and exhaustive passes run as separate parallel sweeps so
        // each one's wall clock is measured on the same thread pool.
        let audit_n = n.div_ceil(audit_stride);
        let audit_probe = |i: usize| {
            data.dataset
                .captures(SubjectId((i * audit_stride) as u32), probe_device)
                .probe
                .template()
        };
        let indexed_best: Vec<Option<u32>> = parallel_map(audit_n, |i| {
            index.search(audit_probe(i)).best().map(|c| c.id)
        });
        let brute_start = std::time::Instant::now();
        let brute_best: Vec<Option<u32>> = parallel_map(audit_n, |i| {
            index.brute_force(audit_probe(i)).best().map(|c| c.id)
        });
        brute_time.record(brute_start.elapsed());
        audited += audit_n;
        audit_agreed += indexed_best
            .iter()
            .zip(&brute_best)
            .filter(|(a, b)| a == b)
            .count();

        let misses = outcomes.iter().filter(|(_, hit)| !hit).count();
        let ranks: Vec<usize> = outcomes.iter().map(|&(r, _)| r).collect();
        rank_vectors.insert(probe_device.to_string(), json!(ranks));
        let curve = CmcCurve::from_ranks(ranks, 10);
        rows.push((probe_device, curve, misses));
    }

    let mut body = format!(
        "closed-set identification: gallery = {n} subjects enrolled on D0\n\
         indexed search: shortlist {shortlist} of {n} scored exactly \
         ({:.1}x fewer comparisons than brute force)\n\n\
         {:<10}{:>10}{:>10}{:>10}{:>10}\n",
        n as f64 / shortlist.max(1) as f64,
        "probe",
        "rank-1",
        "rank-5",
        "rank-10",
        "misses"
    );
    for (device, curve, misses) in &rows {
        body.push_str(&format!(
            "{:<10}{:>10.3}{:>10.3}{:>10.3}{:>10}\n",
            device.to_string(),
            curve.rank1(),
            curve.rate_at_rank(5),
            curve.rate_at_rank(10),
            misses,
        ));
    }
    let same_rank1 = rows[0].1.rank1();
    let worst = rows
        .iter()
        .min_by(|a, b| a.1.rank1().partial_cmp(&b.1.rank1()).expect("finite rates"))
        .expect("non-empty");
    body.push_str(&format!(
        "\nsame-device rank-1: {same_rank1:.3}; worst cross-device: {} at {:.3}\n\
         brute-force audit: indexed rank-1 matched on {audit_agreed}/{audited} sampled probes\n\
         identification amplifies the interoperability penalty: a probe must\n\
         out-score the entire enrolled database, not just clear a threshold\n",
        worst.0,
        worst.1.rank1(),
    ));

    Report::new(
        "ext-identification",
        "Closed-set identification across devices (US-VISIT scenario)",
        body,
        json!({
            "gallery_device": "D0",
            "gallery_size": n,
            "shortlist": shortlist,
            "rows": rows
                .iter()
                .map(|(d, c, misses)| json!({
                    "probe": d.to_string(),
                    "rank1": c.rank1(),
                    "rank5": c.rate_at_rank(5),
                    "rank10": c.rate_at_rank(10),
                    "shortlist_misses": misses,
                }))
                .collect::<Vec<_>>(),
            "ranks": serde_json::Value::Object(rank_vectors),
            "audit": {
                "sampled": audited,
                "rank1_agreed": audit_agreed,
            },
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn all_probe_devices_are_evaluated() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn rates_are_monotone_in_rank() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            let r1 = row["rank1"].as_f64().unwrap();
            let r5 = row["rank5"].as_f64().unwrap();
            let r10 = row["rank10"].as_f64().unwrap();
            assert!(r1 <= r5 + 1e-12 && r5 <= r10 + 1e-12, "{row}");
        }
    }

    #[test]
    fn same_device_identification_works_at_small_scale() {
        let r = run(testdata::small());
        let same = &r.values["rows"][0];
        assert!(
            same["rank1"].as_f64().unwrap() > 0.7,
            "same-device rank-1 {same}"
        );
    }

    #[test]
    fn rank_vectors_cover_every_probe() {
        let r = run(testdata::small());
        let n = r.values["gallery_size"].as_u64().unwrap() as usize;
        for device in ["D0", "D1", "D2", "D3", "D4"] {
            let v = r.values["ranks"][device].as_array().unwrap();
            assert_eq!(v.len(), n);
            for rank in v {
                let rank = rank.as_u64().unwrap() as usize;
                assert!((1..=n).contains(&rank));
            }
        }
    }

    #[test]
    fn small_cohorts_are_searched_exactly() {
        // With 16 subjects the default shortlist covers the whole gallery:
        // no misses, and the brute-force audit must agree everywhere.
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            assert_eq!(row["shortlist_misses"].as_u64().unwrap(), 0, "{row}");
        }
        let audit = &r.values["audit"];
        assert_eq!(audit["rank1_agreed"], audit["sampled"]);
        assert!(audit["sampled"].as_u64().unwrap() >= 5);
    }
}
