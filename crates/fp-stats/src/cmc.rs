//! Cumulative Match Characteristic (CMC) curves for closed-set
//! identification (1:N search).
//!
//! The paper's gallery is "the database of fingerprint images in which we
//! search" — verification is what it evaluates, but the operational
//! deployments it motivates (US-VISIT) also run identification. The CMC
//! reports, for each rank `k`, the probability that the searched person's
//! enrolled template appears among the top `k` candidates.

use serde::{Deserialize, Serialize};

/// Rank of the genuine candidate among all candidates, 1-based: one plus
/// the number of impostor scores strictly greater than the genuine score
/// (ties resolved pessimistically — tied impostors rank ahead).
pub fn genuine_rank(genuine: f64, impostors: &[f64]) -> usize {
    1 + impostors.iter().filter(|&&s| s >= genuine).count()
}

/// A closed-set identification CMC curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmcCurve {
    /// `hits[k-1]` = number of probes whose genuine rank is `<= k`.
    hits: Vec<usize>,
    /// Total number of probes.
    probes: usize,
}

impl CmcCurve {
    /// Builds the curve from per-probe genuine ranks, tracking ranks up to
    /// `max_rank`.
    ///
    /// # Panics
    ///
    /// Panics when `max_rank` is zero.
    pub fn from_ranks<I: IntoIterator<Item = usize>>(ranks: I, max_rank: usize) -> CmcCurve {
        assert!(max_rank > 0, "max_rank must be positive");
        let mut hits = vec![0usize; max_rank];
        let mut probes = 0usize;
        for rank in ranks {
            probes += 1;
            if rank >= 1 && rank <= max_rank {
                hits[rank - 1] += 1;
            }
        }
        // Cumulative sum.
        for k in 1..max_rank {
            hits[k] += hits[k - 1];
        }
        CmcCurve { hits, probes }
    }

    /// Identification rate at rank `k` (1-based); rates saturate at the
    /// curve's maximum tracked rank.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn rate_at_rank(&self, k: usize) -> f64 {
        assert!(k > 0, "ranks are 1-based");
        if self.probes == 0 {
            return 0.0;
        }
        let idx = k.min(self.hits.len()) - 1;
        self.hits[idx] as f64 / self.probes as f64
    }

    /// Rank-1 identification rate — the headline identification number.
    pub fn rank1(&self) -> f64 {
        self.rate_at_rank(1)
    }

    /// Number of probes behind the curve.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Maximum tracked rank.
    pub fn max_rank(&self) -> usize {
        self.hits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_and_tied_impostors() {
        assert_eq!(genuine_rank(10.0, &[1.0, 2.0, 3.0]), 1);
        assert_eq!(genuine_rank(2.5, &[1.0, 2.0, 3.0]), 2);
        assert_eq!(genuine_rank(2.0, &[1.0, 2.0, 3.0]), 3); // tie ranks behind
        assert_eq!(genuine_rank(0.0, &[]), 1);
    }

    #[test]
    fn curve_is_monotone_and_saturates() {
        let curve = CmcCurve::from_ranks([1, 1, 2, 3, 7], 5);
        let mut prev = 0.0;
        for k in 1..=5 {
            let r = curve.rate_at_rank(k);
            assert!(r >= prev, "rank {k}");
            prev = r;
        }
        assert_eq!(curve.rank1(), 0.4);
        assert_eq!(curve.rate_at_rank(3), 0.8);
        // Rank 7 probe is beyond max_rank: never counted.
        assert_eq!(curve.rate_at_rank(5), 0.8);
        assert_eq!(curve.rate_at_rank(100), 0.8);
    }

    #[test]
    fn perfect_identification_is_all_ones() {
        let curve = CmcCurve::from_ranks([1; 10], 3);
        assert_eq!(curve.rank1(), 1.0);
        assert_eq!(curve.rate_at_rank(3), 1.0);
        assert_eq!(curve.probes(), 10);
    }

    #[test]
    fn empty_curve_is_zero() {
        let curve = CmcCurve::from_ranks(std::iter::empty(), 4);
        assert_eq!(curve.rank1(), 0.0);
        assert_eq!(curve.probes(), 0);
    }

    #[test]
    #[should_panic(expected = "max_rank")]
    fn zero_max_rank_panics() {
        let _ = CmcCurve::from_ranks([1], 0);
    }
}
