//! The paper's qualitative findings as checkable predicates.
//!
//! `EXPERIMENTS.md` promises the reproduction preserves the paper's *shape*:
//! orderings, anomalies, crossovers. This module encodes each claim as a
//! predicate over [`StudyData`] so the CLI (`study verify`), the integration
//! tests, and CI all run the same definitions.

use fp_core::ids::DeviceId;
use fp_stats::roc::ScoreSet;
use serde::Serialize;

use crate::scores::StudyData;

/// Outcome of checking one finding.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Stable identifier.
    pub id: &'static str,
    /// The claim, quoting the paper where possible.
    pub claim: &'static str,
    /// Whether this run satisfies it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Checks every encoded finding against a study run.
pub fn check_all(data: &StudyData) -> Vec<Finding> {
    let mut findings = Vec::new();

    // F1: same-device genuine scores higher.
    {
        let dmg = mean(&data.scores.dmg());
        let ddmg = mean(&data.scores.ddmg());
        findings.push(Finding {
            id: "same-device-genuine-higher",
            claim: "genuine matching scores were generally higher when both \
                    images were captured using the same device",
            holds: dmg > ddmg,
            evidence: format!("mean DMG {dmg:.2} vs mean DDMG {ddmg:.2}"),
        });
    }

    // F2: FNMR affected by diversity, FMR not.
    {
        let same = ScoreSet::new(data.scores.dmg(), data.scores.dmi());
        let cross = ScoreSet::new(data.scores.ddmg(), data.scores.ddmi());
        let t = same.threshold_at_fmr(1e-3);
        let fnmr_moved = cross.fnmr_at(t) > same.fnmr_at(t);
        let fmr_stable = (cross.fmr_at(t) - same.fmr_at(t)).abs() < 5e-3;
        findings.push(Finding {
            id: "fnmr-affected-fmr-not",
            claim: "false-non-match-rates were affected by capture device \
                    diversity; conversely the false-match-rates were not",
            holds: fnmr_moved && fmr_stable,
            evidence: format!(
                "at t={t:.2}: FNMR {:.4} -> {:.4}, FMR {:.5} -> {:.5}",
                same.fnmr_at(t),
                cross.fnmr_at(t),
                same.fmr_at(t),
                cross.fmr_at(t)
            ),
        });
    }

    // F3: impostor ceiling.
    {
        let max_imp = data
            .scores
            .dmi()
            .into_iter()
            .chain(data.scores.ddmi())
            .fold(0.0f64, f64::max);
        findings.push(Finding {
            id: "impostor-ceiling",
            claim: "the impostor scores never go higher than 7",
            holds: max_imp <= 10.0, // calibrated scale; paper landmark is 7
            evidence: format!("impostor max {max_imp:.2} over all cells"),
        });
    }

    // F4: the FNMR anomaly structure (paper Table 5).
    {
        let fnmr = |g: u8, p: u8| {
            data.scores
                .score_set(DeviceId(g), DeviceId(p))
                .fnmr_at_fmr(1e-4)
        };
        let d0_min = (1..5).all(|p| fnmr(0, 0) <= fnmr(0, p) + 1e-12);
        let d1_anomaly = fnmr(1, 0) <= fnmr(1, 1);
        let d3_anomaly = fnmr(3, 0) <= fnmr(3, 3);
        let d4_best_diag = (0..4).all(|g| fnmr(4, 4) <= fnmr(g, g) + 1e-12);
        findings.push(Finding {
            id: "fnmr-anomaly-structure",
            claim: "intra-device FNMR is lower than inter-device, the \
                    exceptions being {D1,D1} and {D3,D3}; {D4,D4} is the \
                    best diagonal",
            holds: d0_min && d1_anomaly && d3_anomaly && d4_best_diag,
            evidence: format!(
                "D0 row-min {d0_min}, D1 anomaly {d1_anomaly}, D3 anomaly \
                 {d3_anomaly}, D4 best diagonal {d4_best_diag}"
            ),
        });
    }

    // F5: ink is the least interoperable source.
    {
        let fnmr = |g: u8, p: u8| {
            data.scores
                .score_set(DeviceId(g), DeviceId(p))
                .fnmr_at_fmr(1e-4)
        };
        let row_mean = |g: u8| {
            mean(
                &(0..5)
                    .filter(|&p| p != g)
                    .map(|p| fnmr(g, p))
                    .collect::<Vec<_>>(),
            )
        };
        let ink_worst = (0..4).all(|g| row_mean(4) >= row_mean(g));
        findings.push(Finding {
            id: "ink-least-interoperable",
            claim: "matching scores of any Live-scan devices are higher than \
                    those obtained from ten-prints",
            holds: ink_worst,
            evidence: format!(
                "mean off-diagonal FNMR by gallery: {}",
                (0..5)
                    .map(|g| format!("D{g}={:.3}", row_mean(g)))
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        });
    }

    // F6: Kendall diagonal extreme + asymmetry.
    {
        let cell = |x: u8, y: u8| {
            fp_stats::kendall::kendall_tau_b(
                &data.scores.genuine_values(DeviceId(x), DeviceId(x)),
                &data.scores.genuine_values(DeviceId(x), DeviceId(y)),
            )
        };
        let diag_perfect = (0..4u8).all(|x| {
            cell(x, x)
                .map(|t| (t.tau - 1.0).abs() < 1e-9)
                .unwrap_or(false)
        });
        let mut max_gap = 0.0f64;
        for x in 0..4u8 {
            for y in 0..4u8 {
                if x != y {
                    if let (Some(a), Some(b)) = (cell(x, y), cell(y, x)) {
                        max_gap = max_gap.max((a.tau - b.tau).abs());
                    }
                }
            }
        }
        findings.push(Finding {
            id: "kendall-structure",
            claim: "the results of Kendall's rank test are not symmetric, \
                    with a perfectly-correlated diagonal",
            holds: diag_perfect && max_gap > 0.01,
            evidence: format!(
                "diagonal tau = 1: {diag_perfect}, max |tau(x,y)-tau(y,x)| = {max_gap:.3}"
            ),
        });
    }

    // F7: quality interacts with interoperability (Figure 5).
    {
        let mut low_same = 0usize;
        let mut total_same = 0usize;
        let mut low_cross = 0usize;
        let mut total_cross = 0usize;
        for g in 0..5u8 {
            for p in 0..5u8 {
                for s in data.scores.genuine_cell(DeviceId(g), DeviceId(p)) {
                    let low = (s.score < 10.0) as usize;
                    if g == p {
                        total_same += 1;
                        low_same += low;
                    } else {
                        total_cross += 1;
                        low_cross += low;
                    }
                }
            }
        }
        let rate_same = low_same as f64 / total_same.max(1) as f64;
        let rate_cross = low_cross as f64 / total_cross.max(1) as f64;
        findings.push(Finding {
            id: "diversity-increases-low-scores",
            claim: "the number of genuine match scores < 10 significantly \
                    increases when the verification device differs",
            holds: rate_cross > rate_same,
            evidence: format!(
                "low-score rate {:.3} (same) vs {:.3} (cross)",
                rate_same, rate_cross
            ),
        });
    }

    findings
}

/// Renders the findings as a terminal report; returns `(report, all_hold)`.
pub fn render(findings: &[Finding]) -> (String, bool) {
    let mut out = String::new();
    let mut all = true;
    for f in findings {
        let mark = if f.holds { "PASS" } else { "FAIL" };
        all &= f.holds;
        out.push_str(&format!(
            "[{mark}] {}\n       {}\n       -> {}\n",
            f.id, f.claim, f.evidence
        ));
    }
    (out, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn all_findings_are_reported() {
        let findings = check_all(testdata::small());
        assert_eq!(findings.len(), 7);
        let ids: std::collections::HashSet<&str> = findings.iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), 7, "duplicate finding ids");
    }

    #[test]
    fn core_findings_hold_even_at_small_scale() {
        // The big orderings are robust; the fine anomaly structure needs a
        // larger cohort (exercised by tests/paper_findings.rs), so only the
        // first three findings are required here.
        let findings = check_all(testdata::small());
        for f in &findings[..3] {
            assert!(f.holds, "{}: {}", f.id, f.evidence);
        }
    }

    #[test]
    fn render_marks_pass_and_fail() {
        let findings = vec![
            Finding {
                id: "a",
                claim: "c",
                holds: true,
                evidence: "e".into(),
            },
            Finding {
                id: "b",
                claim: "c",
                holds: false,
                evidence: "e".into(),
            },
        ];
        let (report, all) = render(&findings);
        assert!(report.contains("[PASS] a"));
        assert!(report.contains("[FAIL] b"));
        assert!(!all);
    }
}
