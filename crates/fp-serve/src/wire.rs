//! The std-only binary wire format of the shard protocol.
//!
//! # Frame layout
//!
//! ```text
//! +----------+----------+---------+-------------+--------------+===========+----------+
//! |  magic   | version  |  type   | request_id  | payload_len  |  payload  |  crc32   |
//! |  4 bytes |  u16 LE  |  u8     |  u32 LE     |  u32 LE      |  bytes    |  u32 LE  |
//! +----------+----------+---------+-------------+--------------+===========+----------+
//! ```
//!
//! Every multi-byte integer is little-endian; every `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`/`from_bits`), so scores and coordinates
//! cross the process boundary **bit-exact** — the property the whole
//! cross-process sharding design rests on. The CRC32 (IEEE, reflected)
//! covers the request id, the length prefix and the payload bytes — a
//! flipped bit in the request id would re-route a response to the wrong
//! caller, so it must be under the checksum; magic and version corruption
//! is caught by their own checks before the length prefix is trusted.
//!
//! # Multiplexing (v3)
//!
//! The `request_id` field lets a client keep many requests in flight on
//! one connection: the server answers each request with a frame carrying
//! the *same* id, in whatever order the work completes, and the client
//! rejoins responses to callers by id (see `crate::mux`). Id 0 is the
//! conventional id of un-multiplexed traffic — [`encode_frame`] /
//! [`read_frame`] use it so single-request-at-a-time peers never have to
//! think about ids.
//!
//! There is no serde and no schema compiler: encode and decode are written
//! out by hand against a tiny cursor ([`Dec`]), mirroring the vendored-deps
//! philosophy of the rest of the workspace. Decoding is total — every
//! malformed input maps to a typed [`WireError`], never a panic and never a
//! partially decoded frame.
//!
//! # Frames
//!
//! Requests: [`Frame::EnrollBatch`] (carries the [`IndexConfig`] so a shard
//! can never silently score under the wrong tuning), [`Frame::StageOne`],
//! [`Frame::Rerank`], [`Frame::Health`], [`Frame::Fingerprint`],
//! [`Frame::Stats`], [`Frame::Shutdown`]. Each has a paired `*Ok`
//! response; any request can instead be answered by [`Frame::Error`] with
//! a typed error code.
//!
//! Protocol v2 added the introspection plane: [`Frame::Fingerprint`]
//! scrapes the shard's cumulative RUNFP chain (the coordinator verifies it
//! against its own mirror — O(1) behavioral parity per scrape) and
//! [`Frame::Stats`] scrapes a remote snapshot of the shard's counters and
//! histograms.

use std::fmt;
use std::io::{Read, Write};

use fp_core::geometry::{Direction, Point, Rect};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::template::Template;
use fp_core::MatchScore;
use fp_index::{Candidate, IndexConfig, StageOneScores};
use fp_telemetry::{HistogramSnapshot, SpanRecord};

/// Frame magic: "FPSH" (FingerPrint SHard).
pub const MAGIC: [u8; 4] = *b"FPSH";

/// Protocol version. Bump on any layout change; versions outside
/// [`MIN_VERSION`]`..=VERSION` are rejected with
/// [`WireError::VersionMismatch`] before a single payload byte is
/// interpreted. v2: added the `Fingerprint`/`Stats` introspection frames
/// (types 12–15). v3: added the `request_id` header field (multiplexing)
/// and extended the CRC to cover it. v4: optional trailing
/// [`TraceContext`] on request frames, optional [`ServerTiming`] on
/// stage-1/re-rank responses, and the `Trace`/`TraceOk` span-drain frames
/// (types 16–17).
pub const VERSION: u16 = 4;

/// Oldest protocol version this build still decodes. A v3 peer simply
/// never sees the v4 trailing sections: each frame carries its version in
/// the header, decode parses the optional sections only at v4, and the
/// server answers every request at the version the request arrived in —
/// that per-frame echo *is* the negotiation, so tracing is off whenever
/// either side predates it.
pub const MIN_VERSION: u16 = 3;

/// Upper bound on a frame payload (64 MiB): large enough for a 100k-entry
/// enroll batch, small enough that a corrupted length prefix cannot ask the
/// reader to allocate the machine.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Frame header size: magic + version + type + request id + payload length.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4 + 4;

/// Byte offset of the request id within the header — also where the
/// CRC-covered region starts (request id + payload length + payload).
const CRC_START: usize = 4 + 2 + 1;

/// Typed error codes carried by [`Frame::Error`].
pub mod code {
    /// The shard is already enrolled under a different [`super::IndexConfig`].
    pub const CONFIG_MISMATCH: u8 = 1;
    /// The request was structurally valid but unserviceable (e.g. re-rank
    /// ids out of range).
    pub const BAD_REQUEST: u8 = 2;
    /// The shard failed internally.
    pub const INTERNAL: u8 = 3;
    /// The shard's admission queue is at its watermark; the request was
    /// shed *before* any work started. Retryable by construction.
    pub const OVERLOADED: u8 = 4;
}

/// Everything that can go wrong turning bytes into a [`Frame`].
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (connection reset, timeout, ...).
    Io(std::io::Error),
    /// The stream ended (or the payload ran out) before a complete frame.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The first four bytes were not [`MAGIC`] — not a shard-protocol peer.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version advertised by the peer.
        got: u16,
        /// Version this build speaks ([`VERSION`]).
        want: u16,
    },
    /// Unknown frame-type byte.
    BadFrameType(u8),
    /// The payload checksum did not match — corruption in transit.
    BadCrc {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum computed over the received payload.
        want: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The payload decoded to something structurally invalid (bad minutia
    /// kind, trailing bytes, a template the validator rejects, ...).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want {MAGIC:02x?})"),
            WireError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, we speak v{want}"
                )
            }
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadCrc { got, want } => {
                write!(
                    f,
                    "payload checksum mismatch: frame says {got:#010x}, computed {want:#010x}"
                )
            }
            WireError::Oversize(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "stream" }
        } else {
            WireError::Io(e)
        }
    }
}

impl WireError {
    /// Whether the error came from a blocking-read deadline expiring (the
    /// per-request timeout the coordinator sets on its sockets).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Distributed-tracing context carried by v4 request frames (CRC-covered
/// like everything after the type byte). The coordinator stamps each RPC
/// with the id of the span that issued it; the shard opens its own spans
/// recording that id, so the two process-local trees can be stitched into
/// one connected tree after a `Trace` drain. Absent (`None`) whenever the
/// sender's telemetry is disabled or the peer speaks v3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Id of the root span of the originating operation (the coordinator's
    /// `index.search` / `index.enroll_all` span) — correlates all RPCs of
    /// one logical request.
    pub trace_id: u64,
    /// Id of the coordinator span that issued this RPC (its `serve.rpc`
    /// span) — the parent the shard's spans nest under once merged.
    pub parent_span_id: u64,
    /// Whether the shard should record spans for this request. Always true
    /// when the context is present today; carried explicitly so a future
    /// sampling coordinator can propagate a negative decision.
    pub sampled: bool,
}

/// Server-side timing echoed on v4 stage-1/re-rank responses whose request
/// carried a sampled [`TraceContext`] — the per-shard queue-wait/work split
/// the slow log needs without a second RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTiming {
    /// Admission-to-dispatch time in the shard's bounded worker pool (ns).
    pub queue_wait_ns: u64,
    /// Time spent computing the response once dispatched (ns).
    pub work_ns: u64,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Enroll `templates` (in order) into the shard's gallery under
    /// `config`. The config rides along so a shard can reject a coordinator
    /// tuned differently instead of silently scoring under the wrong
    /// parameters.
    EnrollBatch {
        /// The index tuning both sides must agree on.
        config: IndexConfig,
        /// Templates to enroll, dealt by the coordinator.
        templates: Vec<Template>,
        /// Optional tracing context (v4; never encoded at v3).
        trace: Option<TraceContext>,
    },
    /// Enrollment succeeded.
    EnrollOk {
        /// Number of templates enrolled by this request.
        enrolled: u32,
        /// Shard-local gallery size after the batch.
        shard_len: u32,
    },
    /// Compute stage-1 channel scores of the whole local gallery against
    /// `probe`.
    StageOne {
        /// The probe template (features are recomputed shard-side —
        /// bit-identical, they are pure functions of probe and config).
        probe: Template,
        /// Optional tracing context (v4; never encoded at v3).
        trace: Option<TraceContext>,
    },
    /// Stage-1 scores (the shard-invariant seam).
    StageOneOk {
        /// Per-entry channel scores plus work tallies.
        scores: StageOneScores,
        /// Server-side timing, echoed when the request was sampled (v4).
        timing: Option<ServerTiming>,
    },
    /// Exactly score the selected local ids against `probe`.
    Rerank {
        /// The probe template.
        probe: Template,
        /// Shard-local candidate ids, in global selection order.
        selected: Vec<u32>,
        /// Optional tracing context (v4; never encoded at v3).
        trace: Option<TraceContext>,
    },
    /// Exact stage-2 scores, in request order (ids still shard-local).
    RerankOk {
        /// One candidate per requested id.
        candidates: Vec<Candidate>,
        /// Server-side timing, echoed when the request was sampled (v4).
        timing: Option<ServerTiming>,
    },
    /// Liveness / state probe.
    Health,
    /// The shard is alive.
    HealthOk {
        /// Shard-local gallery size.
        shard_len: u32,
    },
    /// Ask the shard process to exit cleanly.
    Shutdown,
    /// Acknowledged; the server stops accepting after sending this.
    ShutdownOk,
    /// Scrape the shard's cumulative stage-2 run-fingerprint chain.
    Fingerprint,
    /// The shard's RUNFP chain state. The coordinator compares `value`
    /// (and `searches`) against its own mirror of the stage-2 responses it
    /// received — inequality means the shard recorded something different
    /// from what it served: behavioral drift.
    FingerprintOk {
        /// Cumulative chain value.
        value: u64,
        /// Number of stage-2 parts folded into the chain.
        searches: u64,
    },
    /// Scrape a remote snapshot of the shard's telemetry.
    Stats,
    /// The shard's counters and histograms (empty when the shard runs with
    /// telemetry disabled). Entries are sorted by name — snapshots come
    /// from `BTreeMap`s — so encoding is deterministic.
    StatsOk {
        /// Monotonic counters, by name.
        counters: Vec<(String, u64)>,
        /// Wall-time histograms (nanoseconds), by name.
        durations: Vec<(String, HistogramSnapshot)>,
        /// Work-size histograms, by name.
        values: Vec<(String, HistogramSnapshot)>,
    },
    /// Drain the shard's flight recorder: every retained span whose id is
    /// at least `since_span_id` (v4 only — a v3 peer rejects the type byte).
    Trace {
        /// High-water mark from the previous drain; 0 fetches everything.
        since_span_id: u64,
    },
    /// The drained spans, plus the shard's current clock reading so the
    /// coordinator can estimate the inter-process clock offset from the
    /// send/receive midpoint of this very exchange.
    TraceOk {
        /// Shard-side nanoseconds since its telemetry epoch, read while
        /// building this response.
        now_ns: u64,
        /// Spans lost to the shard's buffer capacity (cumulative).
        dropped_spans: u64,
        /// Retained spans with `id >= since_span_id`, shard-local ids.
        spans: Vec<SpanRecord>,
    },
    /// Typed failure answering any request.
    Error {
        /// One of the [`code`] constants.
        code: u8,
        /// Human-readable diagnostics.
        detail: String,
    },
}

impl Frame {
    /// Stable label of the frame type, for metrics and span attributes.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::EnrollBatch { .. } => "enroll",
            Frame::EnrollOk { .. } => "enroll_ok",
            Frame::StageOne { .. } => "stage1",
            Frame::StageOneOk { .. } => "stage1_ok",
            Frame::Rerank { .. } => "rerank",
            Frame::RerankOk { .. } => "rerank_ok",
            Frame::Health => "health",
            Frame::HealthOk { .. } => "health_ok",
            Frame::Shutdown => "shutdown",
            Frame::ShutdownOk => "shutdown_ok",
            Frame::Fingerprint => "fingerprint",
            Frame::FingerprintOk { .. } => "fingerprint_ok",
            Frame::Stats => "stats",
            Frame::StatsOk { .. } => "stats_ok",
            Frame::Trace { .. } => "trace",
            Frame::TraceOk { .. } => "trace_ok",
            Frame::Error { .. } => "error",
        }
    }

    fn type_byte(&self) -> u8 {
        match self {
            Frame::EnrollBatch { .. } => 1,
            Frame::EnrollOk { .. } => 2,
            Frame::StageOne { .. } => 3,
            Frame::StageOneOk { .. } => 4,
            Frame::Rerank { .. } => 5,
            Frame::RerankOk { .. } => 6,
            Frame::Health => 7,
            Frame::HealthOk { .. } => 8,
            Frame::Shutdown => 9,
            Frame::ShutdownOk => 10,
            Frame::Error { .. } => 11,
            Frame::Fingerprint => 12,
            Frame::FingerprintOk { .. } => 13,
            Frame::Stats => 14,
            Frame::StatsOk { .. } => 15,
            Frame::Trace { .. } => 16,
            Frame::TraceOk { .. } => 17,
        }
    }

    /// The oldest protocol version able to carry this frame type. The
    /// trace-drain frames are v4-only; everything else decodes at v3 (the
    /// v4 trailing sections are simply absent there).
    fn min_version(&self) -> u16 {
        match self {
            Frame::Trace { .. } | Frame::TraceOk { .. } => 4,
            _ => MIN_VERSION,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table generated at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_feed(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_feed(0xFFFF_FFFF, bytes)
}

/// The frame checksum: CRC32 over request id + payload length + payload
/// (the two header fields are fed as their little-endian bytes, exactly as
/// they appear on the wire).
fn frame_crc(request_id: u32, payload_len: u32, payload: &[u8]) -> u32 {
    let mut crc = crc32_feed(0xFFFF_FFFF, &request_id.to_le_bytes());
    crc = crc32_feed(crc, &payload_len.to_le_bytes());
    !crc32_feed(crc, payload)
}

// ---------------------------------------------------------------------------
// Little-endian encode helpers.
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_template(buf: &mut Vec<u8>, t: &Template) {
    put_f64(buf, t.resolution_dpi());
    let w = t.capture_window();
    put_f64(buf, w.min().x);
    put_f64(buf, w.min().y);
    put_f64(buf, w.max().x);
    put_f64(buf, w.max().y);
    put_u32(buf, t.len() as u32);
    for m in t.minutiae() {
        put_f64(buf, m.pos.x);
        put_f64(buf, m.pos.y);
        put_f64(buf, m.direction.radians());
        buf.push(match m.kind {
            MinutiaKind::RidgeEnding => 0,
            MinutiaKind::Bifurcation => 1,
        });
        put_f64(buf, m.reliability);
    }
}

fn put_config(buf: &mut Vec<u8>, c: &IndexConfig) {
    put_u64(buf, c.shortlist as u64);
    put_u64(buf, c.max_cylinders as u64);
    put_u64(buf, c.lss_depth as u64);
    put_f64(buf, c.distance_bin);
    put_u64(buf, c.angle_bins as u64);
}

fn put_histogram(buf: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(buf, h.count);
    put_u64(buf, h.sum);
    put_u64(buf, h.min);
    put_u64(buf, h.max);
    put_u64(buf, h.p50);
    put_u64(buf, h.p95);
    put_u64(buf, h.p99);
    put_u64(buf, h.p999);
}

/// Minimum encoded size of a named histogram entry (empty name).
const HISTOGRAM_ENTRY_MIN: usize = 4 + 8 * 8;

fn put_histograms(buf: &mut Vec<u8>, entries: &[(String, HistogramSnapshot)]) {
    put_u32(buf, entries.len() as u32);
    for (name, h) in entries {
        put_str(buf, name);
        put_histogram(buf, h);
    }
}

/// Optional trace context: a presence flag, then the triple. Only encoded
/// at v4 — the caller gates on version.
fn put_trace(buf: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            put_u64(buf, t.trace_id);
            put_u64(buf, t.parent_span_id);
            buf.push(t.sampled as u8);
        }
    }
}

/// Optional server timing: a presence flag, then the two durations. Only
/// encoded at v4.
fn put_timing(buf: &mut Vec<u8>, timing: &Option<ServerTiming>) {
    match timing {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            put_u64(buf, t.queue_wait_ns);
            put_u64(buf, t.work_ns);
        }
    }
}

/// Minimum encoded size of a span record (empty name, no parent, no attrs).
const SPAN_RECORD_MIN: usize = 8 + 1 + 4 + 8 + 8 + 8 + 4;

fn put_span(buf: &mut Vec<u8>, s: &SpanRecord) {
    put_u64(buf, s.id);
    match s.parent {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            put_u64(buf, p);
        }
    }
    put_str(buf, &s.name);
    put_u64(buf, s.thread);
    put_u64(buf, s.start_ns);
    put_u64(buf, s.dur_ns);
    put_u32(buf, s.attrs.len() as u32);
    for (k, v) in &s.attrs {
        put_str(buf, k);
        put_str(buf, v);
    }
}

// ---------------------------------------------------------------------------
// Bounds-checked decode cursor.
// ---------------------------------------------------------------------------

/// A fallible little-endian cursor over a payload slice. Every getter
/// returns [`WireError::Truncated`] instead of panicking when the bytes run
/// out, and collection getters refuse element counts that cannot possibly
/// fit in the remaining bytes (so a corrupted count cannot trigger a huge
/// allocation).
struct Dec<'a> {
    buf: &'a [u8],
    context: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec { buf, context }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                context: self.context,
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validates that `count` elements of at least `min_bytes` each can
    /// still fit in the remaining payload, returning a safe capacity.
    fn checked_count(&self, count: u64, min_bytes: usize) -> Result<usize, WireError> {
        let fits = count
            .checked_mul(min_bytes as u64)
            .is_some_and(|need| need <= self.buf.len() as u64);
        if fits {
            Ok(count as usize)
        } else {
            Err(WireError::Truncated {
                context: self.context,
            })
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".to_string()))
    }

    fn template(&mut self) -> Result<Template, WireError> {
        let dpi = self.f64()?;
        let min = Point::new(self.f64()?, self.f64()?);
        let max = Point::new(self.f64()?, self.f64()?);
        let raw_count = self.u32()? as u64;
        let count = self.checked_count(raw_count, 33)?;
        let mut minutiae = Vec::with_capacity(count);
        for _ in 0..count {
            let pos = Point::new(self.f64()?, self.f64()?);
            let direction = Direction::from_radians(self.f64()?);
            let kind = match self.u8()? {
                0 => MinutiaKind::RidgeEnding,
                1 => MinutiaKind::Bifurcation,
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown minutia kind {other}"
                    )))
                }
            };
            let reliability = self.f64()?;
            minutiae.push(Minutia::new(pos, direction, kind, reliability));
        }
        Template::from_minutiae(minutiae, dpi, Rect::from_corners(min, max))
            .map_err(|e| WireError::Malformed(format!("invalid template: {e}")))
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, WireError> {
        Ok(HistogramSnapshot {
            count: self.u64()?,
            sum: self.u64()?,
            min: self.u64()?,
            max: self.u64()?,
            p50: self.u64()?,
            p95: self.u64()?,
            p99: self.u64()?,
            p999: self.u64()?,
        })
    }

    fn histograms(&mut self) -> Result<Vec<(String, HistogramSnapshot)>, WireError> {
        let raw_count = self.u32()? as u64;
        let count = self.checked_count(raw_count, HISTOGRAM_ENTRY_MIN)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = self.string()?;
            entries.push((name, self.histogram()?));
        }
        Ok(entries)
    }

    /// Optional [`TraceContext`] (v4 trailing section). Any flag byte other
    /// than 0/1 — and any sampled byte other than 0/1 — is `Malformed`: a
    /// corrupted context must never be half-adopted.
    fn trace_opt(&mut self) -> Result<Option<TraceContext>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let trace_id = self.u64()?;
                let parent_span_id = self.u64()?;
                let sampled = match self.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "trace-context sampled flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Ok(Some(TraceContext {
                    trace_id,
                    parent_span_id,
                    sampled,
                }))
            }
            other => Err(WireError::Malformed(format!(
                "trace-context presence flag must be 0 or 1, got {other}"
            ))),
        }
    }

    /// Optional [`ServerTiming`] (v4 trailing section).
    fn timing_opt(&mut self) -> Result<Option<ServerTiming>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(ServerTiming {
                queue_wait_ns: self.u64()?,
                work_ns: self.u64()?,
            })),
            other => Err(WireError::Malformed(format!(
                "server-timing presence flag must be 0 or 1, got {other}"
            ))),
        }
    }

    fn span_record(&mut self) -> Result<SpanRecord, WireError> {
        let id = self.u64()?;
        let parent = match self.u8()? {
            0 => None,
            1 => Some(self.u64()?),
            other => {
                return Err(WireError::Malformed(format!(
                    "span parent flag must be 0 or 1, got {other}"
                )))
            }
        };
        let name = self.string()?;
        let thread = self.u64()?;
        let start_ns = self.u64()?;
        let dur_ns = self.u64()?;
        let raw_attrs = self.u32()? as u64;
        let attr_count = self.checked_count(raw_attrs, 8)?;
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let k = self.string()?;
            attrs.push((k, self.string()?));
        }
        Ok(SpanRecord {
            id,
            parent,
            name,
            // Spans cross the wire process-local; the coordinator assigns
            // process lanes when it merges.
            pid: 0,
            thread,
            start_ns,
            dur_ns,
            attrs,
        })
    }

    fn config(&mut self) -> Result<IndexConfig, WireError> {
        Ok(IndexConfig {
            shortlist: self.u64()? as usize,
            max_cylinders: self.u64()? as usize,
            lss_depth: self.u64()? as usize,
            distance_bin: self.f64()?,
            angle_bins: self.u64()? as usize,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing payload bytes after {}",
                self.buf.len(),
                self.context
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame encode / decode.
// ---------------------------------------------------------------------------

fn encode_payload(version: u16, frame: &Frame) -> Vec<u8> {
    let v4 = version >= 4;
    let mut buf = Vec::new();
    match frame {
        Frame::EnrollBatch {
            config,
            templates,
            trace,
        } => {
            put_config(&mut buf, config);
            put_u32(&mut buf, templates.len() as u32);
            for t in templates {
                put_template(&mut buf, t);
            }
            if v4 {
                put_trace(&mut buf, trace);
            }
        }
        Frame::EnrollOk {
            enrolled,
            shard_len,
        } => {
            put_u32(&mut buf, *enrolled);
            put_u32(&mut buf, *shard_len);
        }
        Frame::StageOne { probe, trace } => {
            put_template(&mut buf, probe);
            if v4 {
                put_trace(&mut buf, trace);
            }
        }
        Frame::StageOneOk { scores, timing } => {
            put_u32(&mut buf, scores.vote_scores.len() as u32);
            for &v in &scores.vote_scores {
                put_f64(&mut buf, v);
            }
            for &c in &scores.cyl_scores {
                put_f64(&mut buf, c);
            }
            put_u64(&mut buf, scores.bucket_hits);
            put_u64(&mut buf, scores.hamming_word_ops);
            if v4 {
                put_timing(&mut buf, timing);
            }
        }
        Frame::Rerank {
            probe,
            selected,
            trace,
        } => {
            put_template(&mut buf, probe);
            put_u32(&mut buf, selected.len() as u32);
            for &id in selected {
                put_u32(&mut buf, id);
            }
            if v4 {
                put_trace(&mut buf, trace);
            }
        }
        Frame::RerankOk { candidates, timing } => {
            put_u32(&mut buf, candidates.len() as u32);
            for c in candidates {
                put_u32(&mut buf, c.id);
                put_f64(&mut buf, c.score.value());
            }
            if v4 {
                put_timing(&mut buf, timing);
            }
        }
        Frame::Trace { since_span_id } => {
            put_u64(&mut buf, *since_span_id);
        }
        Frame::TraceOk {
            now_ns,
            dropped_spans,
            spans,
        } => {
            put_u64(&mut buf, *now_ns);
            put_u64(&mut buf, *dropped_spans);
            put_u32(&mut buf, spans.len() as u32);
            for s in spans {
                put_span(&mut buf, s);
            }
        }
        Frame::Health | Frame::Shutdown | Frame::ShutdownOk | Frame::Fingerprint | Frame::Stats => {
        }
        Frame::HealthOk { shard_len } => put_u32(&mut buf, *shard_len),
        Frame::FingerprintOk { value, searches } => {
            put_u64(&mut buf, *value);
            put_u64(&mut buf, *searches);
        }
        Frame::StatsOk {
            counters,
            durations,
            values,
        } => {
            put_u32(&mut buf, counters.len() as u32);
            for (name, value) in counters {
                put_str(&mut buf, name);
                put_u64(&mut buf, *value);
            }
            put_histograms(&mut buf, durations);
            put_histograms(&mut buf, values);
        }
        Frame::Error { code, detail } => {
            buf.push(*code);
            put_str(&mut buf, detail);
        }
    }
    buf
}

fn decode_payload(version: u16, frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let v4 = version >= 4;
    let frame = match frame_type {
        1 => {
            let mut dec = Dec::new(payload, "enroll batch");
            let config = dec.config()?;
            let raw_count = dec.u32()? as u64;
            let count = dec.checked_count(raw_count, 44)?;
            let mut templates = Vec::with_capacity(count);
            for _ in 0..count {
                templates.push(dec.template()?);
            }
            let trace = if v4 { dec.trace_opt()? } else { None };
            dec.finish()?;
            Frame::EnrollBatch {
                config,
                templates,
                trace,
            }
        }
        2 => {
            let mut dec = Dec::new(payload, "enroll ack");
            let enrolled = dec.u32()?;
            let shard_len = dec.u32()?;
            dec.finish()?;
            Frame::EnrollOk {
                enrolled,
                shard_len,
            }
        }
        3 => {
            let mut dec = Dec::new(payload, "stage-1 request");
            let probe = dec.template()?;
            let trace = if v4 { dec.trace_opt()? } else { None };
            dec.finish()?;
            Frame::StageOne { probe, trace }
        }
        4 => {
            let mut dec = Dec::new(payload, "stage-1 scores");
            let raw_count = dec.u32()? as u64;
            let n = dec.checked_count(raw_count, 16)?;
            let mut vote_scores = Vec::with_capacity(n);
            for _ in 0..n {
                vote_scores.push(dec.f64()?);
            }
            let mut cyl_scores = Vec::with_capacity(n);
            for _ in 0..n {
                cyl_scores.push(dec.f64()?);
            }
            let bucket_hits = dec.u64()?;
            let hamming_word_ops = dec.u64()?;
            let timing = if v4 { dec.timing_opt()? } else { None };
            dec.finish()?;
            Frame::StageOneOk {
                scores: StageOneScores {
                    vote_scores,
                    cyl_scores,
                    bucket_hits,
                    hamming_word_ops,
                },
                timing,
            }
        }
        5 => {
            let mut dec = Dec::new(payload, "re-rank request");
            let probe = dec.template()?;
            let raw_count = dec.u32()? as u64;
            let count = dec.checked_count(raw_count, 4)?;
            let mut selected = Vec::with_capacity(count);
            for _ in 0..count {
                selected.push(dec.u32()?);
            }
            let trace = if v4 { dec.trace_opt()? } else { None };
            dec.finish()?;
            Frame::Rerank {
                probe,
                selected,
                trace,
            }
        }
        6 => {
            let mut dec = Dec::new(payload, "re-rank candidates");
            let raw_count = dec.u32()? as u64;
            let count = dec.checked_count(raw_count, 12)?;
            let mut candidates = Vec::with_capacity(count);
            for _ in 0..count {
                let id = dec.u32()?;
                let score = dec.f64()?;
                if score.is_nan() || score < 0.0 {
                    return Err(WireError::Malformed(format!(
                        "candidate score {score} is not a valid MatchScore"
                    )));
                }
                candidates.push(Candidate {
                    id,
                    score: MatchScore::new(score),
                });
            }
            let timing = if v4 { dec.timing_opt()? } else { None };
            dec.finish()?;
            Frame::RerankOk { candidates, timing }
        }
        7 => {
            Dec::new(payload, "health request").finish()?;
            Frame::Health
        }
        8 => {
            let mut dec = Dec::new(payload, "health ack");
            let shard_len = dec.u32()?;
            dec.finish()?;
            Frame::HealthOk { shard_len }
        }
        9 => {
            Dec::new(payload, "shutdown request").finish()?;
            Frame::Shutdown
        }
        10 => {
            Dec::new(payload, "shutdown ack").finish()?;
            Frame::ShutdownOk
        }
        11 => {
            let mut dec = Dec::new(payload, "error frame");
            let code = dec.u8()?;
            let detail = dec.string()?;
            dec.finish()?;
            Frame::Error { code, detail }
        }
        12 => {
            Dec::new(payload, "fingerprint request").finish()?;
            Frame::Fingerprint
        }
        13 => {
            let mut dec = Dec::new(payload, "fingerprint chain");
            let value = dec.u64()?;
            let searches = dec.u64()?;
            dec.finish()?;
            Frame::FingerprintOk { value, searches }
        }
        14 => {
            Dec::new(payload, "stats request").finish()?;
            Frame::Stats
        }
        15 => {
            let mut dec = Dec::new(payload, "stats snapshot");
            let raw_count = dec.u32()? as u64;
            let count = dec.checked_count(raw_count, 12)?;
            let mut counters = Vec::with_capacity(count);
            for _ in 0..count {
                let name = dec.string()?;
                counters.push((name, dec.u64()?));
            }
            let durations = dec.histograms()?;
            let values = dec.histograms()?;
            dec.finish()?;
            Frame::StatsOk {
                counters,
                durations,
                values,
            }
        }
        16 if v4 => {
            let mut dec = Dec::new(payload, "trace drain request");
            let since_span_id = dec.u64()?;
            dec.finish()?;
            Frame::Trace { since_span_id }
        }
        17 if v4 => {
            let mut dec = Dec::new(payload, "trace drain response");
            let now_ns = dec.u64()?;
            let dropped_spans = dec.u64()?;
            let raw_count = dec.u32()? as u64;
            let count = dec.checked_count(raw_count, SPAN_RECORD_MIN)?;
            let mut spans = Vec::with_capacity(count);
            for _ in 0..count {
                spans.push(dec.span_record()?);
            }
            dec.finish()?;
            Frame::TraceOk {
                now_ns,
                dropped_spans,
                spans,
            }
        }
        other => return Err(WireError::BadFrameType(other)),
    };
    Ok(frame)
}

/// Encodes `frame` under `request_id` at an explicit protocol `version` —
/// how the server answers a v3 peer in v3. Panics (programmer error) on a
/// version outside [`MIN_VERSION`]`..=`[`VERSION`] or a frame type the
/// requested version cannot carry; both are unreachable from the network
/// because decode rejects those frames first.
pub fn encode_frame_at(version: u16, request_id: u32, frame: &Frame) -> Vec<u8> {
    assert!(
        (MIN_VERSION..=VERSION).contains(&version),
        "cannot encode at unsupported protocol version {version}"
    );
    assert!(
        version >= frame.min_version(),
        "frame `{}` requires protocol v{}, cannot encode at v{version}",
        frame.kind(),
        frame.min_version()
    );
    let payload = encode_payload(version, frame);
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "frame payload exceeds MAX_PAYLOAD; chunk the request"
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&MAGIC);
    put_u16(&mut buf, version);
    buf.push(frame.type_byte());
    put_u32(&mut buf, request_id);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(&payload);
    put_u32(
        &mut buf,
        frame_crc(request_id, payload.len() as u32, &payload),
    );
    buf
}

/// Encodes `frame` under `request_id` at the current [`VERSION`].
pub fn encode_frame_with(request_id: u32, frame: &Frame) -> Vec<u8> {
    encode_frame_at(VERSION, request_id, frame)
}

/// Encodes `frame` under request id 0 (un-multiplexed traffic).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_with(0, frame)
}

/// Decodes one complete wire frame from `buf` (header through CRC),
/// returning the request id with the frame. The inverse of
/// [`encode_frame_with`]; rejects trailing bytes.
pub fn decode_frame_with(buf: &[u8]) -> Result<(u32, Frame), WireError> {
    let mut header = Dec::new(buf, "frame header");
    let magic: [u8; 4] = header.take(4)?.try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header.take(2)?.try_into().expect("2 bytes"));
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::VersionMismatch {
            got: version,
            want: VERSION,
        });
    }
    let frame_type = header.u8()?;
    let request_id = header.u32()?;
    let len = header.u32()?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let rest = header.buf;
    if rest.len() != len as usize + 4 {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    let (payload, crc_bytes) = rest.split_at(len as usize);
    let got = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let want = frame_crc(request_id, len, payload);
    if got != want {
        return Err(WireError::BadCrc { got, want });
    }
    Ok((request_id, decode_payload(version, frame_type, payload)?))
}

/// Decodes one complete wire frame, discarding the request id.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, WireError> {
    decode_frame_with(buf).map(|(_, frame)| frame)
}

/// Writes one frame under `request_id`, returning the number of bytes put
/// on the wire.
pub fn write_frame_with(
    w: &mut impl Write,
    request_id: u32,
    frame: &Frame,
) -> std::io::Result<usize> {
    let bytes = encode_frame_with(request_id, frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Writes one frame under request id 0.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<usize> {
    write_frame_with(w, 0, frame)
}

/// Writes one frame under `request_id` at an explicit protocol `version` —
/// how the server answers each peer at the version its request arrived in
/// (see [`read_frame_versioned`]). Panics on the same programmer errors as
/// [`encode_frame_at`].
pub fn write_frame_at(
    w: &mut impl Write,
    version: u16,
    request_id: u32,
    frame: &Frame,
) -> std::io::Result<usize> {
    let bytes = encode_frame_at(version, request_id, frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one complete frame from `r`, returning its request id, the frame,
/// the number of bytes consumed, and the protocol version the frame was
/// encoded at. Validates magic and version before trusting the length
/// prefix, caps the payload at [`MAX_PAYLOAD`], and checks the CRC (which
/// covers the request id) before decoding a single payload byte.
///
/// The returned version is what lets the server answer each peer at the
/// version it spoke — responses to a v3 frame are encoded at v3, so the
/// v4 trailing sections are negotiated off per connection for free.
pub fn read_frame_versioned(r: &mut impl Read) -> Result<(u32, Frame, usize, u16), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::VersionMismatch {
            got: version,
            want: VERSION,
        });
    }
    let frame_type = header[6];
    let request_id = u32::from_le_bytes(header[CRC_START..CRC_START + 4].try_into().expect("4"));
    let len = u32::from_le_bytes(header[CRC_START + 4..HEADER_LEN].try_into().expect("4"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut body = vec![0u8; len as usize + 4];
    r.read_exact(&mut body)?;
    let (payload, crc_bytes) = body.split_at(len as usize);
    let got = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let want = frame_crc(request_id, len, payload);
    if got != want {
        return Err(WireError::BadCrc { got, want });
    }
    let frame = decode_payload(version, frame_type, payload)?;
    Ok((request_id, frame, HEADER_LEN + body.len(), version))
}

/// Reads one complete frame, discarding the peer's protocol version.
pub fn read_frame_with(r: &mut impl Read) -> Result<(u32, Frame, usize), WireError> {
    read_frame_versioned(r).map(|(id, frame, n, _)| (id, frame, n))
}

/// Reads one complete frame, discarding the request id.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    read_frame_with(r).map(|(_, frame, n)| (frame, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_frames_round_trip() {
        for frame in [
            Frame::Health,
            Frame::Shutdown,
            Frame::ShutdownOk,
            Frame::Fingerprint,
            Frame::Stats,
        ] {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame);
            let (via_reader, n) = read_frame(&mut &bytes[..]).unwrap();
            assert_eq!(via_reader, frame);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn error_frame_round_trips() {
        let frame = Frame::Error {
            code: code::BAD_REQUEST,
            detail: "id 99 out of range".to_string(),
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn fingerprint_ok_round_trips() {
        let frame = Frame::FingerprintOk {
            value: 0xDEAD_BEEF_0BAD_F00D,
            searches: 96,
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn stats_ok_round_trips() {
        let h = HistogramSnapshot {
            count: 3,
            sum: 300,
            min: 50,
            max: 150,
            p50: 100,
            p95: 150,
            p99: 150,
            p999: 150,
        };
        let frame = Frame::StatsOk {
            counters: vec![
                ("index.searches".to_string(), 96),
                ("serve.requests".to_string(), 200),
            ],
            durations: vec![("index.search.seconds".to_string(), h)],
            values: vec![("index.shortlist".to_string(), h)],
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        // Empty snapshot (telemetry-disabled shard) round-trips too.
        let empty = Frame::StatsOk {
            counters: Vec::new(),
            durations: Vec::new(),
            values: Vec::new(),
        };
        let bytes = encode_frame(&empty);
        assert_eq!(decode_frame(&bytes).unwrap(), empty);
    }

    #[test]
    fn stats_ok_rejects_lying_counts() {
        // A counter count that cannot fit the remaining payload must be
        // rejected before any allocation.
        let mut bytes = encode_frame(&Frame::StatsOk {
            counters: Vec::new(),
            durations: Vec::new(),
            values: Vec::new(),
        });
        // Payload starts at HEADER_LEN: first u32 is the counter count.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Re-seal the checksum over the CRC-covered region (id + len +
        // payload) so the corruption reaches the payload decoder.
        let crc_at = bytes.len() - 4;
        let fixed = crc32(&bytes[CRC_START..crc_at]);
        bytes[crc_at..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    fn tiny_config() -> IndexConfig {
        IndexConfig {
            shortlist: 8,
            max_cylinders: 4,
            lss_depth: 2,
            distance_bin: 1.0,
            angle_bins: 4,
        }
    }

    #[test]
    fn trace_context_rides_enroll_at_v4_and_is_dropped_at_v3() {
        let ctx = TraceContext {
            trace_id: 0xAAAA_BBBB_CCCC_DDDD,
            parent_span_id: 42,
            sampled: true,
        };
        let frame = Frame::EnrollBatch {
            config: tiny_config(),
            templates: Vec::new(),
            trace: Some(ctx),
        };
        let v4 = encode_frame_with(7, &frame);
        assert_eq!(decode_frame_with(&v4).unwrap(), (7, frame.clone()));
        // A v3 peer negotiates the context off: the section is simply not
        // encoded, and the frame still decodes on the other side.
        let v3 = encode_frame_at(3, 7, &frame);
        assert!(v3.len() < v4.len());
        let (_, got) = decode_frame_with(&v3).unwrap();
        assert_eq!(
            got,
            Frame::EnrollBatch {
                config: tiny_config(),
                templates: Vec::new(),
                trace: None,
            }
        );
    }

    #[test]
    fn malformed_trace_context_is_rejected_without_panicking() {
        let frame = Frame::EnrollBatch {
            config: tiny_config(),
            templates: Vec::new(),
            trace: Some(TraceContext {
                trace_id: 1,
                parent_span_id: 2,
                sampled: true,
            }),
        };
        let bytes = encode_frame(&frame);
        // Payload: config (40) + template count (4) + presence flag + triple.
        let flag_at = HEADER_LEN + 44;
        let crc_at = bytes.len() - 4;
        for (offset, bad) in [(flag_at, 2u8), (crc_at - 1, 7u8)] {
            let mut corrupt = bytes.clone();
            corrupt[offset] = bad; // presence flag / sampled byte out of 0..=1
            let fixed = crc32(&corrupt[CRC_START..crc_at]);
            corrupt[crc_at..].copy_from_slice(&fixed.to_le_bytes());
            assert!(
                matches!(decode_frame(&corrupt), Err(WireError::Malformed(_))),
                "byte {offset} = {bad} must be Malformed"
            );
        }
    }

    #[test]
    fn server_timing_round_trips() {
        let frame = Frame::RerankOk {
            candidates: Vec::new(),
            timing: Some(ServerTiming {
                queue_wait_ns: 12_345,
                work_ns: 678_900,
            }),
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        let bare = Frame::RerankOk {
            candidates: Vec::new(),
            timing: None,
        };
        assert_eq!(decode_frame(&encode_frame(&bare)).unwrap(), bare);
    }

    #[test]
    fn trace_drain_frames_round_trip_spans() {
        let frame = Frame::TraceOk {
            now_ns: 99_000,
            dropped_spans: 3,
            spans: vec![
                SpanRecord {
                    id: 10,
                    parent: None,
                    name: "server.request".to_string(),
                    pid: 0,
                    thread: 2,
                    start_ns: 100,
                    dur_ns: 500,
                    attrs: vec![("remote_parent".to_string(), "42".to_string())],
                },
                SpanRecord {
                    id: 11,
                    parent: Some(10),
                    name: "server.queue_wait".to_string(),
                    pid: 0,
                    thread: 2,
                    start_ns: 100,
                    dur_ns: 40,
                    attrs: Vec::new(),
                },
            ],
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
        let req = Frame::Trace { since_span_id: 10 };
        assert_eq!(decode_frame(&encode_frame(&req)).unwrap(), req);
    }

    #[test]
    fn trace_frames_are_v4_only() {
        // Re-stamp a Trace frame's header as v3: the type byte must be
        // rejected (the version bytes sit outside the CRC, so no reseal).
        let mut bytes = encode_frame(&Frame::Trace { since_span_id: 0 });
        bytes[4..6].copy_from_slice(&3u16.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadFrameType(16))
        ));
    }

    #[test]
    fn versions_outside_the_window_are_rejected() {
        let bytes = encode_frame(&Frame::Health);
        for bad in [MIN_VERSION - 1, VERSION + 1] {
            let mut corrupt = bytes.clone();
            corrupt[4..6].copy_from_slice(&bad.to_le_bytes());
            assert!(
                matches!(
                    decode_frame(&corrupt),
                    Err(WireError::VersionMismatch { got, want }) if got == bad && want == VERSION
                ),
                "version {bad} must be rejected"
            );
        }
        // Both window endpoints decode.
        for ok in [MIN_VERSION, VERSION] {
            let bytes = encode_frame_at(ok, 0, &Frame::Health);
            assert_eq!(decode_frame(&bytes).unwrap(), Frame::Health);
        }
    }

    #[test]
    fn read_frame_versioned_reports_the_peer_version() {
        let bytes = encode_frame_at(3, 5, &Frame::HealthOk { shard_len: 9 });
        let (id, frame, n, version) = read_frame_versioned(&mut &bytes[..]).unwrap();
        assert_eq!(
            (id, frame, n, version),
            (5, Frame::HealthOk { shard_len: 9 }, bytes.len(), 3)
        );
    }

    #[test]
    fn header_is_exactly_fifteen_bytes() {
        let bytes = encode_frame(&Frame::Health);
        assert_eq!(HEADER_LEN, 15);
        assert_eq!(bytes.len(), HEADER_LEN + 4); // empty payload + crc
        assert_eq!(&bytes[..4], &MAGIC);
    }

    #[test]
    fn request_ids_round_trip_in_any_order() {
        for id in [0u32, 1, 7, u32::MAX] {
            let bytes = encode_frame_with(id, &Frame::HealthOk { shard_len: id % 97 });
            let (got_id, frame) = decode_frame_with(&bytes).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(frame, Frame::HealthOk { shard_len: id % 97 });
            let (via_reader, reader_frame, n) = read_frame_with(&mut &bytes[..]).unwrap();
            assert_eq!((via_reader, reader_frame), (id, frame));
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn flipped_request_id_bit_is_caught_by_the_crc() {
        // A request id outside the CRC would silently re-route a response
        // to the wrong caller — the exact failure multiplexing cannot
        // tolerate. Prove every bit of the id field is covered.
        let bytes = encode_frame_with(0x0102_0304, &Frame::Health);
        for byte in CRC_START..CRC_START + 4 {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    matches!(decode_frame_with(&corrupt), Err(WireError::BadCrc { .. })),
                    "flip of header byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn default_entry_points_use_request_id_zero() {
        let bytes = encode_frame(&Frame::Fingerprint);
        let (id, frame) = decode_frame_with(&bytes).unwrap();
        assert_eq!(id, 0);
        assert_eq!(frame, Frame::Fingerprint);
    }
}
