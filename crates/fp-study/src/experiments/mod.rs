//! One module per paper artifact (Figures 1–5, Tables 3–6) plus the
//! future-work extension analyses. Every experiment consumes the shared
//! [`StudyData`] and returns a [`Report`].

use fp_telemetry::Telemetry;

use crate::report::Report;
use crate::scores::StudyData;

pub mod check_kernel;
pub mod check_store;
pub mod dist_trace;
pub mod ext_diversity;
pub mod ext_habituation;
pub mod ext_identification;
pub mod ext_load;
pub mod ext_multifinger;
pub mod ext_normalization;
pub mod ext_prediction;
pub mod ext_scaling;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Identifiers of all experiments in presentation order.
pub const ALL_IDS: [&str; 16] = [
    "fig1",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "table4",
    "table5",
    "table6",
    "fig5",
    "ext-diversity",
    "ext-habituation",
    "ext-prediction",
    "ext-multifinger",
    "ext-normalization",
    "ext-identification",
    "ext-scaling",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run(id: &str, data: &StudyData) -> Option<Report> {
    run_with(id, data, &Telemetry::disabled())
}

/// [`run`] with telemetry: experiments that do heavy 1:N search work
/// (`ext-identification`, `ext-scaling`) route their index instruments into
/// `telemetry`; the reports are identical either way.
pub fn run_with(id: &str, data: &StudyData, telemetry: &Telemetry) -> Option<Report> {
    match id {
        "fig1" => Some(fig1::run(data)),
        "table3" => Some(table3::run(data)),
        "fig2" => Some(fig2::run(data)),
        "fig3" => Some(fig3::run(data)),
        "fig4" => Some(fig4::run(data)),
        "table4" => Some(table4::run(data)),
        "table5" => Some(table5::run(data)),
        "table6" => Some(table6::run(data)),
        "fig5" => Some(fig5::run(data)),
        "ext-diversity" => Some(ext_diversity::run(data)),
        "ext-habituation" => Some(ext_habituation::run(data)),
        "ext-prediction" => Some(ext_prediction::run(data)),
        "ext-multifinger" => Some(ext_multifinger::run(data)),
        "ext-normalization" => Some(ext_normalization::run(data)),
        "ext-identification" => Some(ext_identification::run_with(data, telemetry)),
        "ext-scaling" => Some(ext_scaling::run_with(data.dataset.config(), telemetry)),
        _ => None,
    }
}

/// Runs every experiment in presentation order.
pub fn run_all(data: &StudyData) -> Vec<Report> {
    run_all_with(data, &Telemetry::disabled())
}

/// [`run_all`] with telemetry: each experiment runs inside a span named
/// `experiment.<id>`, so its wall time lands in the duration histograms.
pub fn run_all_with(data: &StudyData, telemetry: &Telemetry) -> Vec<Report> {
    ALL_IDS
        .iter()
        .map(|id| {
            let _span = telemetry.span_with(
                &format!("experiment.{id}"),
                &[("experiment", id.to_string())],
            );
            run_with(id, data, telemetry).expect("ALL_IDS entries are runnable")
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod testdata {
    //! A single small study shared by the experiment tests (score
    //! computation is the expensive part; build it once).

    use std::sync::OnceLock;

    use crate::config::StudyConfig;
    use crate::scores::StudyData;

    pub fn small() -> &'static StudyData {
        static DATA: OnceLock<StudyData> = OnceLock::new();
        DATA.get_or_init(|| {
            StudyData::generate(
                &StudyConfig::builder()
                    .subjects(16)
                    .seed(42)
                    .impostors_per_cell(60)
                    .build(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_are_runnable_and_unique() {
        let data = testdata::small();
        let mut seen = std::collections::HashSet::new();
        for id in ALL_IDS {
            assert!(seen.insert(id), "duplicate id {id}");
            let report = run(id, data).expect("runnable");
            assert_eq!(report.id, id);
            assert!(!report.body.is_empty(), "{id} has empty body");
        }
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("nope", testdata::small()).is_none());
    }

    #[test]
    fn run_all_produces_all_reports() {
        let reports = run_all(testdata::small());
        assert_eq!(reports.len(), ALL_IDS.len());
    }
}
