//! Score-level fusion of diverse matchers.
//!
//! The paper's future-work list asks how *diverse matchers* affect
//! interoperability ("we especially want to explore examples where diverse
//! matchers improve the detection rates"). These combiners implement the
//! classical fixed score-fusion rules (Kittler et al.) over two matchers.

use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};

/// The fixed score-combination rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionRule {
    /// Arithmetic mean of the two scores.
    Sum,
    /// The smaller score (conservative: both matchers must agree).
    Min,
    /// The larger score (liberal: either matcher suffices).
    Max,
    /// Product re-scaled by square root (geometric mean).
    Product,
}

impl FusionRule {
    /// All rules, for sweep experiments.
    pub const ALL: [FusionRule; 4] = [
        FusionRule::Sum,
        FusionRule::Min,
        FusionRule::Max,
        FusionRule::Product,
    ];

    /// Applies the rule to two scores.
    pub fn combine(&self, a: MatchScore, b: MatchScore) -> MatchScore {
        let (x, y) = (a.value(), b.value());
        let v = match self {
            FusionRule::Sum => (x + y) / 2.0,
            FusionRule::Min => x.min(y),
            FusionRule::Max => x.max(y),
            FusionRule::Product => (x * y).sqrt(),
        };
        MatchScore::new(v)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FusionRule::Sum => "sum",
            FusionRule::Min => "min",
            FusionRule::Max => "max",
            FusionRule::Product => "product",
        }
    }
}

/// A matcher that fuses the scores of two inner matchers under a
/// [`FusionRule`].
#[derive(Debug, Clone)]
pub struct FusedMatcher<A, B> {
    first: A,
    second: B,
    rule: FusionRule,
    name: String,
}

impl<A: Matcher, B: Matcher> FusedMatcher<A, B> {
    /// Creates a fused matcher.
    pub fn new(first: A, second: B, rule: FusionRule) -> Self {
        let name = format!("{}+{}({})", first.name(), second.name(), rule.label());
        FusedMatcher {
            first,
            second,
            rule,
            name,
        }
    }

    /// The fusion rule in effect.
    pub fn rule(&self) -> FusionRule {
        self.rule
    }
}

impl<A: Matcher, B: Matcher> Matcher for FusedMatcher<A, B> {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.rule.combine(
            self.first.compare(gallery, probe),
            self.second.compare(gallery, probe),
        )
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64, &'static str);
    impl Matcher for Fixed {
        fn compare(&self, _: &Template, _: &Template) -> MatchScore {
            MatchScore::new(self.0)
        }
        fn name(&self) -> &str {
            self.1
        }
    }

    fn t() -> Template {
        Template::builder(500.0).build().unwrap()
    }

    #[test]
    fn rules_combine_as_documented() {
        let a = MatchScore::new(4.0);
        let b = MatchScore::new(16.0);
        assert_eq!(FusionRule::Sum.combine(a, b).value(), 10.0);
        assert_eq!(FusionRule::Min.combine(a, b).value(), 4.0);
        assert_eq!(FusionRule::Max.combine(a, b).value(), 16.0);
        assert_eq!(FusionRule::Product.combine(a, b).value(), 8.0);
    }

    #[test]
    fn rules_are_symmetric() {
        let a = MatchScore::new(3.0);
        let b = MatchScore::new(5.0);
        for rule in FusionRule::ALL {
            assert_eq!(rule.combine(a, b), rule.combine(b, a), "{}", rule.label());
        }
    }

    #[test]
    fn fused_matcher_reports_compound_name() {
        let f = FusedMatcher::new(Fixed(1.0, "alpha"), Fixed(2.0, "beta"), FusionRule::Max);
        assert_eq!(f.name(), "alpha+beta(max)");
        let tt = t();
        assert_eq!(f.compare(&tt, &tt).value(), 2.0);
    }

    #[test]
    fn min_rule_is_conservative_max_liberal() {
        let tt = t();
        let low_high = FusedMatcher::new(Fixed(1.0, "a"), Fixed(9.0, "b"), FusionRule::Min);
        assert_eq!(low_high.compare(&tt, &tt).value(), 1.0);
        let lib = FusedMatcher::new(Fixed(1.0, "a"), Fixed(9.0, "b"), FusionRule::Max);
        assert_eq!(lib.compare(&tt, &tt).value(), 9.0);
    }
}
