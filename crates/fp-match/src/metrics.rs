//! Pre-registered telemetry instruments for the matchers.
//!
//! Each matcher owns a small bundle of counters and work-size histograms,
//! registered once via `with_telemetry` and bumped with relaxed atomics on
//! every comparison. The `Default` bundles are disabled: every record is a
//! no-op, so uninstrumented matchers pay nothing.
//!
//! Everything recorded here measures *work* — table entries, association
//! counts, cluster sizes, votes, descriptors — which is a pure function of
//! the input templates, so two same-seed study runs report identical values.

use fp_telemetry::{Counter, Telemetry, ValueHistogram};

/// Instruments for [`crate::PairTableMatcher`].
#[derive(Debug, Clone, Default)]
pub struct PairTableMetrics {
    /// `match.pairtable.comparisons` — comparisons scored.
    pub(crate) comparisons: Counter,
    /// `match.pairtable.table_entries` — pair-table size per prepared
    /// template.
    pub(crate) table_entries: ValueHistogram,
    /// `match.pairtable.associations` — compatibility-table entries per
    /// comparison.
    pub(crate) associations: ValueHistogram,
    /// `match.pairtable.cluster_size` — associations surviving the
    /// rotation-consistency window (the largest rotation cluster).
    pub(crate) cluster_size: ValueHistogram,
}

impl PairTableMetrics {
    /// Registers the pair-table instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> PairTableMetrics {
        PairTableMetrics {
            comparisons: telemetry.counter("match.pairtable.comparisons"),
            table_entries: telemetry.value("match.pairtable.table_entries"),
            associations: telemetry.value("match.pairtable.associations"),
            cluster_size: telemetry.value("match.pairtable.cluster_size"),
        }
    }
}

/// Instruments for [`crate::HoughMatcher`].
#[derive(Debug, Clone, Default)]
pub struct HoughMetrics {
    /// `match.hough.comparisons` — comparisons scored.
    pub(crate) comparisons: Counter,
    /// `match.hough.vote_cells` — occupied transform-space cells per
    /// comparison.
    pub(crate) vote_cells: ValueHistogram,
    /// `match.hough.peak_votes` — vote mass of the winning 3×3×3
    /// neighbourhood.
    pub(crate) peak_votes: ValueHistogram,
}

impl HoughMetrics {
    /// Registers the Hough instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> HoughMetrics {
        HoughMetrics {
            comparisons: telemetry.counter("match.hough.comparisons"),
            vote_cells: telemetry.value("match.hough.vote_cells"),
            peak_votes: telemetry.value("match.hough.peak_votes"),
        }
    }
}

/// Instruments for [`crate::MccMatcher`].
#[derive(Debug, Clone, Default)]
pub struct MccMetrics {
    /// `match.mcc.comparisons` — comparisons scored.
    pub(crate) comparisons: Counter,
    /// `match.mcc.valid_cylinders` — valid descriptors per prepared
    /// template.
    pub(crate) valid_cylinders: ValueHistogram,
}

impl MccMetrics {
    /// Registers the MCC instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> MccMetrics {
        MccMetrics {
            comparisons: telemetry.counter("match.mcc.comparisons"),
            valid_cylinders: telemetry.value("match.mcc.valid_cylinders"),
        }
    }
}
