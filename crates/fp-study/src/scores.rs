//! The full score matrices: DMG, DDMG, DMI, DDMI in the paper's notation.

use fp_core::ids::{DeviceId, SubjectId};
use fp_core::rng::SeedTree;
use fp_match::{PairTableMatcher, PreparableMatcher};
use fp_quality::NfiqLevel;
use fp_stats::roc::ScoreSet;
use fp_telemetry::Telemetry;
use rand::Rng;

use crate::config::{StudyConfig, DEVICE_COUNT};
use crate::dataset::Dataset;
use crate::parallel::parallel_map_metered;

/// One genuine comparison outcome, annotated for the quality analyses
/// (Figure 5, Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenuineScore {
    /// The subject both templates belong to.
    pub subject: SubjectId,
    /// Calibrated similarity score.
    pub score: f64,
    /// NFIQ level of the gallery impression.
    pub gallery_quality: NfiqLevel,
    /// NFIQ level of the probe impression.
    pub probe_quality: NfiqLevel,
}

/// Genuine and impostor score matrices over all 25 (gallery device, probe
/// device) cells. Scores are calibrated onto the paper's scale.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    genuine: Vec<Vec<Vec<GenuineScore>>>,
    impostor: Vec<Vec<Vec<f64>>>,
}

impl ScoreMatrix {
    /// Computes the full matrix for `dataset` with `matcher`.
    ///
    /// Genuine cells hold one score per subject (gallery session 0 vs probe
    /// session 1); impostor cells hold
    /// [`StudyConfig::impostors_per_cell`](crate::config::StudyConfig)
    /// sampled ordered subject pairs. Sampling and therefore every score is
    /// deterministic in the dataset's seed.
    pub fn compute<M>(dataset: &Dataset, matcher: &M) -> ScoreMatrix
    where
        M: PreparableMatcher,
    {
        ScoreMatrix::compute_with(dataset, matcher, &Telemetry::disabled())
    }

    /// [`ScoreMatrix::compute`] with telemetry: records preparation and
    /// per-cell matching wall time, comparison counters, per-stage thread
    /// utilization, and throttled progress lines on stderr. The scores are
    /// identical to the uninstrumented computation.
    pub fn compute_with<M>(dataset: &Dataset, matcher: &M, telemetry: &Telemetry) -> ScoreMatrix
    where
        M: PreparableMatcher,
    {
        let n = dataset.len();
        let config = dataset.config();
        let cells = DEVICE_COUNT * DEVICE_COUNT;
        // Impostor pairs need two distinct subjects; a degenerate one-subject
        // study produces no impostor scores at all.
        let impostors_per_cell = if n >= 2 { config.impostors_per_cell } else { 0 };
        let progress = telemetry.progress("scores", (cells * (n + impostors_per_cell)) as u64);
        let genuine_counter = telemetry.counter("scores.comparisons.genuine");
        let impostor_counter = telemetry.counter("scores.comparisons.impostor");

        // Prepare every template once (2 sessions x 5 devices x n subjects).
        let prepared: Vec<[(M::Prepared, M::Prepared); DEVICE_COUNT]> =
            parallel_map_metered(n, telemetry, "scores.prepare", |s| {
                std::array::from_fn(|d| {
                    let c = dataset.captures(SubjectId(s as u32), DeviceId(d as u8));
                    (
                        matcher.prepare(c.gallery.template()),
                        matcher.prepare(c.probe.template()),
                    )
                })
            });

        // Genuine: 25 cells x n subjects.
        let genuine_flat = parallel_map_metered(cells, telemetry, "scores.genuine", |cell| {
            let (g, p) = (cell / DEVICE_COUNT, cell % DEVICE_COUNT);
            let _cell = telemetry.span_with(
                &format!("scores.cell.g{g}p{p}"),
                &[
                    ("gallery", g.to_string()),
                    ("probe", p.to_string()),
                    ("pass", "genuine".to_string()),
                    ("subjects", n.to_string()),
                ],
            );
            let scores = (0..n)
                .map(|s| {
                    let score = config
                        .calibration
                        .apply(matcher.compare_prepared(&prepared[s][g].0, &prepared[s][p].1));
                    let caps_g = dataset.captures(SubjectId(s as u32), DeviceId(g as u8));
                    let caps_p = dataset.captures(SubjectId(s as u32), DeviceId(p as u8));
                    GenuineScore {
                        subject: SubjectId(s as u32),
                        score: score.value(),
                        gallery_quality: caps_g.gallery_quality,
                        probe_quality: caps_p.probe_quality,
                    }
                })
                .collect::<Vec<_>>();
            genuine_counter.add(n as u64);
            progress.inc(n as u64);
            scores
        });

        // Impostor: 25 cells x impostors_per_cell sampled ordered pairs.
        let impostor_flat = parallel_map_metered(cells, telemetry, "scores.impostor", |cell| {
            let (g, p) = (cell / DEVICE_COUNT, cell % DEVICE_COUNT);
            let _cell = telemetry.span_with(
                &format!("scores.cell.g{g}p{p}"),
                &[
                    ("gallery", g.to_string()),
                    ("probe", p.to_string()),
                    ("pass", "impostor".to_string()),
                    ("pairs", impostors_per_cell.to_string()),
                ],
            );
            let mut rng = SeedTree::new(config.seed)
                .child(&[0x1A, g as u64, p as u64])
                .rng();
            let mut scores = Vec::with_capacity(config.impostors_per_cell);
            if n >= 2 {
                for _ in 0..config.impostors_per_cell {
                    let a = rng.gen_range(0..n);
                    let b = {
                        let mut b = rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        b
                    };
                    let score = config
                        .calibration
                        .apply(matcher.compare_prepared(&prepared[a][g].0, &prepared[b][p].1));
                    scores.push(score.value());
                }
            }
            impostor_counter.add(scores.len() as u64);
            progress.inc(scores.len() as u64);
            scores
        });
        progress.finish();

        let mut genuine: Vec<Vec<Vec<GenuineScore>>> = (0..DEVICE_COUNT)
            .map(|_| vec![Vec::new(); DEVICE_COUNT])
            .collect();
        let mut impostor: Vec<Vec<Vec<f64>>> = (0..DEVICE_COUNT)
            .map(|_| vec![Vec::new(); DEVICE_COUNT])
            .collect();
        for (cell, scores) in genuine_flat.into_iter().enumerate() {
            genuine[cell / DEVICE_COUNT][cell % DEVICE_COUNT] = scores;
        }
        for (cell, scores) in impostor_flat.into_iter().enumerate() {
            impostor[cell / DEVICE_COUNT][cell % DEVICE_COUNT] = scores;
        }
        ScoreMatrix { genuine, impostor }
    }

    /// The genuine scores of cell `(gallery, probe)`, one per subject.
    pub fn genuine_cell(&self, gallery: DeviceId, probe: DeviceId) -> &[GenuineScore] {
        &self.genuine[gallery.0 as usize][probe.0 as usize]
    }

    /// The sampled impostor scores of cell `(gallery, probe)`.
    pub fn impostor_cell(&self, gallery: DeviceId, probe: DeviceId) -> &[f64] {
        &self.impostor[gallery.0 as usize][probe.0 as usize]
    }

    /// Genuine score values of a cell.
    pub fn genuine_values(&self, gallery: DeviceId, probe: DeviceId) -> Vec<f64> {
        self.genuine_cell(gallery, probe)
            .iter()
            .map(|g| g.score)
            .collect()
    }

    /// Builds the [`ScoreSet`] of a cell for FMR/FNMR analysis.
    pub fn score_set(&self, gallery: DeviceId, probe: DeviceId) -> ScoreSet {
        ScoreSet::new(
            self.genuine_values(gallery, probe),
            self.impostor_cell(gallery, probe).to_vec(),
        )
    }

    /// All same-device genuine scores over live-scan devices — the paper's
    /// **DMG** set (D4 excluded: the card contributes no second live
    /// capture session; see DESIGN.md).
    pub fn dmg(&self) -> Vec<f64> {
        (0..4)
            .flat_map(|d| self.genuine_values(DeviceId(d), DeviceId(d)))
            .collect()
    }

    /// All cross-device genuine scores — the paper's **DDMG** set.
    pub fn ddmg(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for g in 0..DEVICE_COUNT as u8 {
            for p in 0..DEVICE_COUNT as u8 {
                if g != p {
                    out.extend(self.genuine_values(DeviceId(g), DeviceId(p)));
                }
            }
        }
        out
    }

    /// All same-device impostor scores — the paper's **DMI** set.
    pub fn dmi(&self) -> Vec<f64> {
        (0..DEVICE_COUNT as u8)
            .flat_map(|d| self.impostor_cell(DeviceId(d), DeviceId(d)).to_vec())
            .collect()
    }

    /// All cross-device impostor scores — the paper's **DDMI** set.
    pub fn ddmi(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for g in 0..DEVICE_COUNT as u8 {
            for p in 0..DEVICE_COUNT as u8 {
                if g != p {
                    out.extend_from_slice(self.impostor_cell(DeviceId(g), DeviceId(p)));
                }
            }
        }
        out
    }
}

/// The shared input of every experiment: the dataset plus the computed
/// score matrix.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// The captured dataset.
    pub dataset: Dataset,
    /// The calibrated score matrices.
    pub scores: ScoreMatrix,
}

impl StudyData {
    /// Generates the dataset and computes all scores with the default
    /// pair-table matcher.
    pub fn generate(config: &StudyConfig) -> StudyData {
        StudyData::generate_with(config, &Telemetry::disabled())
    }

    /// [`StudyData::generate`] with telemetry: instruments the whole
    /// pipeline — synthesis and capture work, matcher counters, per-cell
    /// timing and parallel-stage utilization — into `telemetry`. The data
    /// is identical to the uninstrumented run.
    pub fn generate_with(config: &StudyConfig, telemetry: &Telemetry) -> StudyData {
        let dataset = {
            let _span = telemetry.span("study.dataset");
            Dataset::generate_with(config, telemetry)
        };
        let matcher = PairTableMatcher::default().with_telemetry(telemetry);
        let scores = {
            let _span = telemetry.span("study.scores");
            ScoreMatrix::compute_with(&dataset, &matcher, telemetry)
        };
        StudyData { dataset, scores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> StudyData {
        StudyData::generate(
            &StudyConfig::builder()
                .subjects(12)
                .seed(7)
                .impostors_per_cell(40)
                .build(),
        )
    }

    #[test]
    fn matrix_has_expected_counts() {
        let d = data();
        assert_eq!(d.scores.dmg().len(), 12 * 4);
        assert_eq!(d.scores.ddmg().len(), 12 * 20);
        assert_eq!(d.scores.dmi().len(), 40 * 5);
        assert_eq!(d.scores.ddmi().len(), 40 * 20);
        for g in DeviceId::ALL {
            for p in DeviceId::ALL {
                assert_eq!(d.scores.genuine_cell(g, p).len(), 12);
                assert_eq!(d.scores.impostor_cell(g, p).len(), 40);
            }
        }
    }

    #[test]
    fn genuine_scores_beat_impostor_scores_on_average() {
        let d = data();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean(&d.scores.dmg()) > mean(&d.scores.dmi()) + 5.0);
        assert!(mean(&d.scores.ddmg()) > mean(&d.scores.ddmi()) + 5.0);
    }

    #[test]
    fn computation_is_deterministic() {
        let a = data();
        let b = data();
        assert_eq!(
            a.scores.genuine_values(DeviceId(0), DeviceId(3)),
            b.scores.genuine_values(DeviceId(0), DeviceId(3))
        );
        assert_eq!(
            a.scores.impostor_cell(DeviceId(2), DeviceId(4)),
            b.scores.impostor_cell(DeviceId(2), DeviceId(4))
        );
    }

    #[test]
    fn score_set_builds_with_both_classes() {
        let d = data();
        let set = d.scores.score_set(DeviceId(1), DeviceId(2));
        assert_eq!(set.genuine().len(), 12);
        assert_eq!(set.impostor().len(), 40);
    }

    #[test]
    fn single_subject_study_yields_no_impostor_scores() {
        // A one-subject cohort cannot form impostor pairs: every impostor
        // cell must stay empty, and the progress/counter accounting must
        // reflect the zero scores actually produced (not the configured
        // per-cell sample size).
        let telemetry = Telemetry::enabled();
        let config = StudyConfig::builder()
            .subjects(1)
            .seed(3)
            .impostors_per_cell(40)
            .build();
        let dataset = Dataset::generate(&config);
        let matcher = PairTableMatcher::default();
        let scores = ScoreMatrix::compute_with(&dataset, &matcher, &telemetry);
        for g in DeviceId::ALL {
            for p in DeviceId::ALL {
                assert!(scores.impostor_cell(g, p).is_empty());
                assert_eq!(scores.genuine_cell(g, p).len(), 1);
            }
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters["scores.comparisons.impostor"], 0);
        assert_eq!(snap.counters["scores.comparisons.genuine"], 25);
    }

    #[test]
    fn quality_annotations_are_consistent_with_dataset() {
        let d = data();
        for g in d.scores.genuine_cell(DeviceId(0), DeviceId(2)) {
            let caps_g = d.dataset.captures(g.subject, DeviceId(0));
            let caps_p = d.dataset.captures(g.subject, DeviceId(2));
            assert_eq!(g.gallery_quality, caps_g.gallery_quality);
            assert_eq!(g.probe_quality, caps_p.probe_quality);
        }
    }
}
