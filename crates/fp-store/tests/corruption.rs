//! Corruption-safety contract for the on-disk store, mirroring the
//! fp-serve wire proptests: **decoding is total**. Any byte flip,
//! truncation, hostile section table, or plain random garbage must
//! produce a typed [`StoreError`] — never a panic, never an OOM-sized
//! allocation, and never a silently different gallery.
//!
//! The segment format makes the strongest version of this provable: the
//! header CRC covers the section table, each section CRC covers its
//! payload, and the sections must tile the file exactly — so *every*
//! byte of a segment is covered by exactly one checksum and every
//! single-bit flip is detectable. The proptests below exercise exactly
//! that guarantee.

use std::sync::OnceLock;

use fp_core::geometry::{Direction, Point};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;
use fp_store::{check_manifest, check_segment, GalleryStore, StoreError};
use proptest::prelude::*;
use rand::Rng;

fn synthetic_template(seed: &SeedTree, n: usize) -> Template {
    let mut rng = seed.rng();
    let mut minutiae = Vec::<Minutia>::new();
    while minutiae.len() < n {
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            if rng.gen::<bool>() {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            },
            rng.gen::<f64>(),
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

/// One real segment file plus one real manifest (with tombstones), built
/// once through the public store API and then attacked in-memory.
fn artifacts() -> &'static (Vec<u8>, Vec<u8>) {
    static ARTIFACTS: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let seed = SeedTree::new(0xC0_44);
        let dir = std::env::temp_dir().join(format!("fp-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = GalleryStore::create(&dir).unwrap();
        let mut index =
            CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::default());
        for i in 0..6u64 {
            index.enroll(&synthetic_template(&seed.child(&[i]), 24));
        }
        let seq = store.append_index(&index).unwrap();
        store.tombstone(seq, 1).unwrap();
        store.tombstone(seq, 4).unwrap();
        let segment = std::fs::read(dir.join(format!("seg-{seq:08}.fpseg"))).unwrap();
        let manifest = std::fs::read(dir.join("MANIFEST")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        (segment, manifest)
    })
}

#[test]
fn pristine_artifacts_check_clean() {
    let (segment, manifest) = artifacts();
    assert_eq!(check_segment(segment).unwrap(), 6);
    check_manifest(manifest).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Every byte of a segment is covered by a checksum, so every
    /// single-bit flip anywhere in the file must be rejected.
    #[test]
    fn any_segment_bit_flip_is_rejected(at in 0usize..1 << 20, bit in 0u8..8) {
        let (segment, _) = artifacts();
        let at = at % segment.len();
        let mut bad = segment.clone();
        bad[at] ^= 1 << bit;
        prop_assert!(check_segment(&bad).is_err(), "flip of bit {bit} at byte {at} decoded");
    }

    /// Any strict prefix of a segment must be rejected.
    #[test]
    fn any_segment_truncation_is_rejected(len in 0usize..1 << 20) {
        let (segment, _) = artifacts();
        let len = len % segment.len();
        prop_assert!(check_segment(&segment[..len]).is_err());
    }

    /// Hostile section tables: magic and version are right, everything
    /// after is attacker-controlled — section counts, offsets, huge
    /// declared lengths. Must produce a typed error without attempting
    /// an allocation sized by the hostile header.
    #[test]
    fn hostile_segment_headers_are_rejected(body in prop::collection::vec(0u8..=255, 0..512)) {
        let mut bytes = b"FPSTSEG\0".to_vec();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&body);
        prop_assert!(check_segment(&bytes).is_err());
    }

    /// Plain random garbage never panics and never decodes.
    #[test]
    fn random_bytes_never_decode_as_a_segment(bytes in prop::collection::vec(0u8..=255, 0..4096)) {
        prop_assert!(check_segment(&bytes).is_err());
    }

    /// Same three properties for the manifest.
    #[test]
    fn any_manifest_bit_flip_is_rejected(at in 0usize..1 << 20, bit in 0u8..8) {
        let (_, manifest) = artifacts();
        let at = at % manifest.len();
        let mut bad = manifest.clone();
        bad[at] ^= 1 << bit;
        prop_assert!(check_manifest(&bad).is_err(), "flip of bit {bit} at byte {at} decoded");
    }

    #[test]
    fn any_manifest_truncation_is_rejected(len in 0usize..1 << 20) {
        let (_, manifest) = artifacts();
        let len = len % manifest.len();
        prop_assert!(check_manifest(&manifest[..len]).is_err());
    }

    #[test]
    fn random_bytes_never_decode_as_a_manifest(bytes in prop::collection::vec(0u8..=255, 0..1024)) {
        prop_assert!(check_manifest(&bytes).is_err());
    }
}

/// Deterministic hostile headers that a random fuzzer is unlikely to hit:
/// structurally framed section tables with adversarial counts and
/// offsets.
#[test]
fn crafted_hostile_section_tables_are_typed_errors() {
    let (segment, _) = artifacts();

    // Declared section count != 5.
    let mut bad = segment.clone();
    bad[10..12].copy_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        check_segment(&bad),
        Err(StoreError::Corrupt {
            what: "segment",
            ..
        } | StoreError::CrcMismatch { .. })
    ));

    // Future version must be refused outright, not mis-decoded.
    let mut bad = segment.clone();
    bad[8..10].copy_from_slice(&2u16.to_le_bytes());
    assert!(matches!(
        check_segment(&bad),
        Err(StoreError::UnsupportedVersion {
            what: "segment",
            version: 2
        })
    ));

    // Hostile entry count in an otherwise intact file: the header CRC
    // catches the edit even before span validation could.
    let mut bad = segment.clone();
    bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(check_segment(&bad).is_err());

    // First section offset pointing past the file, CRC re-sealed so the
    // layout check itself must fire. Header layout: section table starts
    // at 16, each row is id u32 | offset u64 | len u64 | crc u32.
    let mut bad = segment.clone();
    bad[20..28].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
    let crc = fp_store_crc32(&bad[..136]);
    bad[136..140].copy_from_slice(&crc.to_le_bytes());
    match check_segment(&bad) {
        Err(StoreError::Corrupt {
            what: "segment", ..
        })
        | Err(StoreError::Truncated { .. }) => {}
        other => panic!("hostile offset produced {other:?}"),
    }

    // Huge declared section length: offset valid, len = u64::MAX.
    let mut bad = segment.clone();
    bad[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    let crc = fp_store_crc32(&bad[..136]);
    bad[136..140].copy_from_slice(&crc.to_le_bytes());
    assert!(check_segment(&bad).is_err());

    // Wrong magic.
    let mut bad = segment.clone();
    bad[0] = b'X';
    assert!(matches!(
        check_segment(&bad),
        Err(StoreError::BadMagic { what: "segment" })
    ));
}

/// CRC32 (IEEE) — reimplemented here so hostile-header tests can re-seal
/// their tampering exactly as the encoder would.
fn fp_store_crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut crc = i as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
        *slot = crc;
    }
    !bytes.iter().fold(0xFFFF_FFFFu32, |crc, &b| {
        (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize]
    })
}
