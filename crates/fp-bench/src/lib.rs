//! # fp-bench
//!
//! Criterion benchmarks for the fingerprint-interoperability workspace.
//!
//! The benches are organized by what they regenerate or measure:
//!
//! * `benches/experiments.rs` — **one benchmark per paper table and
//!   figure** (Figures 1–5, Tables 3–6) over a shared small-scale study, so
//!   `cargo bench -p fp-bench --bench experiments` regenerates every
//!   artifact and reports how long each takes;
//! * `benches/pipeline.rs` — throughput of the synthesis/acquisition
//!   pipeline stages (master prints, captures, quality, rendering,
//!   extraction);
//! * `benches/matchers.rs` — matcher comparison latency on genuine and
//!   impostor pairs, direct vs prepared paths;
//! * `benches/ablations.rs` — the design choices called out in DESIGN.md
//!   (kind matching, rotation clustering, size normalization), measured for
//!   both speed and discriminative effect;
//! * `benches/index.rs` — 1:N candidate-index build and search latency vs
//!   an exhaustive brute-force scan, at several gallery sizes.
//!
//! Shared fixtures live here so every bench sees identical inputs.

pub mod diff;

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_sensor::{CaptureProtocol, Impression};
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;
use fp_synth::population::{Population, PopulationConfig, Subject};

/// Cohort size used by the experiment benches — small enough for quick
/// iterations, large enough that every experiment has meaningful input.
pub const BENCH_SUBJECTS: usize = 24;

/// Impostor pairs per cell for the bench study.
pub const BENCH_IMPOSTORS: usize = 120;

/// The shared bench study configuration.
pub fn bench_config() -> StudyConfig {
    StudyConfig::builder()
        .subjects(BENCH_SUBJECTS)
        .seed(0xBE7C)
        .impostors_per_cell(BENCH_IMPOSTORS)
        .build()
}

/// Generates the shared study data (dataset + score matrices).
pub fn bench_study() -> StudyData {
    StudyData::generate(&bench_config())
}

/// A small deterministic population for pipeline benches.
pub fn bench_population(n: usize) -> Population {
    Population::generate(&PopulationConfig::new(0xBE7C, n))
}

/// A pair of same-finger impressions on the given devices (genuine pair).
pub fn genuine_pair(
    subject: &Subject,
    gallery: DeviceId,
    probe: DeviceId,
) -> (Impression, Impression) {
    let protocol = CaptureProtocol::new();
    (
        protocol.capture(subject, Finger::RIGHT_INDEX, gallery, SessionId(0)),
        protocol.capture(subject, Finger::RIGHT_INDEX, probe, SessionId(1)),
    )
}

/// Templates of a genuine same-device pair and an impostor pair, for the
/// matcher benches.
pub fn matcher_fixtures() -> (Template, Template, Template) {
    let pop = bench_population(2);
    let (gallery, probe) = genuine_pair(&pop.subjects()[0], DeviceId(0), DeviceId(0));
    let protocol = CaptureProtocol::new();
    let impostor = protocol.capture(
        &pop.subjects()[1],
        Finger::RIGHT_INDEX,
        DeviceId(0),
        SessionId(1),
    );
    (
        gallery.template().clone(),
        probe.template().clone(),
        impostor.template().clone(),
    )
}

/// Seed tree root shared by rendering benches.
pub fn bench_seed() -> SeedTree {
    SeedTree::new(0xBE7C)
}

/// A 1:N gallery of `n` D0 session-0 templates plus one genuine probe
/// (subject 0, session 1) for the index benches.
pub fn gallery_fixtures(n: usize) -> (Vec<Template>, Template) {
    let pop = bench_population(n);
    let protocol = CaptureProtocol::new();
    let gallery: Vec<Template> = pop
        .subjects()
        .iter()
        .map(|s| {
            protocol
                .capture(s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0))
                .template()
                .clone()
        })
        .collect();
    let probe = protocol
        .capture(
            &pop.subjects()[0],
            Finger::RIGHT_INDEX,
            DeviceId(0),
            SessionId(1),
        )
        .template()
        .clone();
    (gallery, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_generatable() {
        let (g, p, i) = matcher_fixtures();
        assert!(g.len() > 5 && p.len() > 5 && i.len() > 5);
    }

    #[test]
    fn bench_config_is_small() {
        let c = bench_config();
        assert_eq!(c.subjects, BENCH_SUBJECTS);
        assert_eq!(c.impostors_per_cell, BENCH_IMPOSTORS);
    }
}
