//! The `Value` tree, its `Number` type and insertion-ordered `Map`.

use std::fmt;
use std::ops::Index;

use serde::{Content, Serialize};

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

/// A JSON number: non-negative integer, negative integer, or float — the
/// same three-way representation real serde_json uses, so integer equality
/// behaves identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    /// Always non-negative.
    PosInt(u64),
    /// Always negative.
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// Whether the number is represented as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }

    /// Whether the number is an integer representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::PosInt(_))
    }

    /// Builds a float number; non-finite values become `Null` at print time.
    pub(crate) fn from_f64_lossy(v: f64) -> Number {
        Number(N::Float(v))
    }

    /// A float number, `None` when not finite (mirrors real serde_json).
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::Float(v)))
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number(N::PosInt(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Number {
        if v >= 0 {
            Number(N::PosInt(v as u64))
        } else {
            Number(N::NegInt(v))
        }
    }
}

macro_rules! number_from_small {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Number {
            fn from(v: $ty) -> Number {
                Number::from(v as i64)
            }
        }
    )*};
}
number_from_small!(i8, i16, i32);

macro_rules! number_from_small_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Number {
            fn from(v: $ty) -> Number {
                Number::from(v as u64)
            }
        }
    )*};
}
number_from_small_unsigned!(u8, u16, u32, usize);

impl Serialize for Number {
    fn to_content(&self) -> Content {
        match self.0 {
            N::PosInt(v) => Content::U64(v),
            N::NegInt(v) => Content::I64(v),
            N::Float(v) => Content::F64(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => f.write_str(&crate::print::format_f64(v)),
        }
    }
}

/// An insertion-ordered `String → Value` map (association list). Real
/// serde_json's default `Map` is sorted; insertion order is nicer for
/// reports and equality below is order-insensitive, so the difference is
/// unobservable to comparisons.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts `value` at `key`, replacing and returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// The value at `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value at `key`.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Order-insensitive equality, like a real map.
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).map(|ov| ov == v).unwrap_or(false))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl Value {
    /// The value as `f64` when it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map when it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking indexing: object key or array position.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Index types accepted by [`Value::get`] and `value[...]`.
pub trait ValueIndex {
    /// The element of `v` at this index, if any.
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}

impl ValueIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        (**self).index_into(v)
    }
}

impl ValueIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

static NULL: Value = Value::Null;

impl<I: ValueIndex> Index<I> for Value {
    type Output = Value;

    /// Missing keys and out-of-range positions yield `Null`, as in real
    /// serde_json.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::compact(&self.to_content()))
    }
}

// --- From conversions (used by json! and general construction) -------------

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from_f64_lossy(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

macro_rules! value_from_int {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

// --- Scalar comparisons (assert_eq!(value["x"], 8) etc.) -------------------

macro_rules! value_eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self == &Value::from(*other)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64().map(|v| v == *other).unwrap_or(false)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool().map(|v| v == *other).unwrap_or(false)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str().map(|v| v == other).unwrap_or(false)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == *self
    }
}
