//! **Figure 4 (gallery sweep)** — genuine score distributions of probes
//! from every device against the Cross Match Seek II (D3) gallery.
//!
//! The paper reads two things off this figure: same-sensor pairs score
//! highest, and ink ten-print probes score lowest. (The same paper's
//! Table 5 contradicts the first claim for D3 specifically — its small
//! capture window makes {D3,D3} worse than {D3,D0} — so we report the full
//! per-probe summary and flag the measured ordering instead of asserting
//! the figure's prose.)

use fp_core::ids::DeviceId;
use fp_stats::summary::{median, Summary};
use serde_json::json;

use crate::report::Report;
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let gallery = DeviceId(3);
    let mut rows = Vec::new();
    for probe in DeviceId::ALL {
        let xs = data.scores.genuine_values(gallery, probe);
        let s = Summary::of(&xs).expect("non-empty cell");
        rows.push((probe, s.mean, median(&xs).unwrap(), s.min));
    }
    let mut ranked: Vec<DeviceId> = DeviceId::ALL.to_vec();
    ranked.sort_by(|a, b| {
        let ma = rows[a.0 as usize].1;
        let mb = rows[b.0 as usize].1;
        mb.partial_cmp(&ma).expect("finite means")
    });

    let mut body = format!(
        "gallery: D3 (Cross Match Seek II)\n\n{:<8}{:>10}{:>10}{:>10}\n",
        "probe", "mean", "median", "min"
    );
    for (probe, mean, med, min) in &rows {
        body.push_str(&format!("{probe:<8}{mean:>10.2}{med:>10.2}{min:>10.2}\n"));
    }
    body.push_str(&format!(
        "\nranking by mean (best to worst): {}\n\
         paper claims: same-sensor highest, ten-print (D4) lowest\n",
        ranked
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(" > ")
    ));

    Report::new(
        "fig4",
        "Genuine scores by probe device vs Seek II gallery (paper Figure 4 sweep)",
        body,
        json!({
            "gallery": "D3",
            "rows": rows
                .iter()
                .map(|(d, mean, med, min)| json!({
                    "probe": d.to_string(), "mean": mean, "median": med, "min": min
                }))
                .collect::<Vec<_>>(),
            "ranking": ranked.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
            "ink_is_worst": ranked.last() == Some(&DeviceId(4)),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn sweep_covers_all_probe_devices() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 5);
        assert_eq!(r.values["ranking"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn ink_probe_is_not_the_best() {
        // At the tiny test-cohort size the full ranking is noisy; the
        // large-scale ordering (ink at/near the bottom) is asserted by the
        // `paper_findings` integration test. Here we only require that ink
        // is never the *best* probe for a Seek II gallery.
        let r = run(testdata::small());
        let ranking = r.values["ranking"].as_array().unwrap();
        let pos = ranking
            .iter()
            .position(|v| v.as_str() == Some("D4"))
            .expect("D4 present");
        assert!(pos >= 1, "ink probe ranked best");
    }
}
