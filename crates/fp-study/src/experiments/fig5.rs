//! **Figure 5** — low genuine scores (< 10) by (gallery NFIQ, probe NFIQ).
//!
//! Panel (a) pools the same-device genuine comparisons (DMG), panel (b) the
//! cross-device ones (DDMG). The paper's reading: with a single device, low
//! scores only appear when quality is poor (one side at NFIQ 4–5); with
//! diverse devices, low scores already appear at moderate quality — both
//! sides must be NFIQ 1–2 to suppress them, i.e. interoperability makes
//! quality control *more* important.

use fp_core::ids::DeviceId;
use serde_json::json;

use crate::report::Report;
use crate::scores::{GenuineScore, StudyData};

/// The score below which a genuine comparison counts as "low" (the paper's
/// Figure 5 threshold on the commercial score scale).
pub const LOW_SCORE: f64 = 10.0;

/// Builds the 5x5 (gallery quality, probe quality) grid of low-score counts
/// from an iterator of genuine scores.
pub fn quality_grid<'a, I: IntoIterator<Item = &'a GenuineScore>>(scores: I) -> [[u64; 5]; 5] {
    let mut grid = [[0u64; 5]; 5];
    for s in scores {
        if s.score < LOW_SCORE {
            let g = (s.gallery_quality.value() - 1) as usize;
            let p = (s.probe_quality.value() - 1) as usize;
            grid[g][p] += 1;
        }
    }
    grid
}

fn render_grid(grid: &[[u64; 5]; 5]) -> String {
    let mut out = String::from("   gallery\\probe   q1    q2    q3    q4    q5\n");
    for (g, row) in grid.iter().enumerate() {
        out.push_str(&format!("   q{}            ", g + 1));
        for c in row {
            out.push_str(&format!("{c:>6}"));
        }
        out.push('\n');
    }
    out
}

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let mut dmg: Vec<&GenuineScore> = Vec::new();
    let mut ddmg: Vec<&GenuineScore> = Vec::new();
    for g in 0..5u8 {
        for p in 0..5u8 {
            let cell = data.scores.genuine_cell(DeviceId(g), DeviceId(p));
            if g == p {
                if g != 4 {
                    dmg.extend(cell); // DMG excludes the ink card (paper §III)
                }
            } else {
                ddmg.extend(cell);
            }
        }
    }
    let dmg_total = dmg.len();
    let ddmg_total = ddmg.len();
    let grid_a = quality_grid(dmg);
    let grid_b = quality_grid(ddmg);

    let sum = |g: &[[u64; 5]; 5]| g.iter().flatten().sum::<u64>();
    let low_a = sum(&grid_a);
    let low_b = sum(&grid_b);
    // Low scores among good-quality pairs (both sides NFIQ 1-2).
    let good_a: u64 = (0..2).flat_map(|g| (0..2).map(move |p| grid_a[g][p])).sum();
    let good_b: u64 = (0..2).flat_map(|g| (0..2).map(move |p| grid_b[g][p])).sum();

    let mut body = String::from("(a) DMG — same device, low genuine scores (< 10):\n");
    body.push_str(&render_grid(&grid_a));
    body.push_str("\n(b) DDMG — diverse devices, low genuine scores (< 10):\n");
    body.push_str(&render_grid(&grid_b));
    body.push_str(&format!(
        "\nlow-score rate: same-device {:.2}% ({low_a}/{dmg_total}), \
         diverse {:.2}% ({low_b}/{ddmg_total})\n\
         low scores with both sides NFIQ 1-2: same-device {good_a}, diverse {good_b}\n",
        100.0 * low_a as f64 / dmg_total.max(1) as f64,
        100.0 * low_b as f64 / ddmg_total.max(1) as f64,
    ));

    Report::new(
        "fig5",
        "Low genuine scores by quality pair, DMG vs DDMG (paper Figure 5)",
        body,
        json!({
            "low_threshold": LOW_SCORE,
            "dmg_grid": grid_a,
            "ddmg_grid": grid_b,
            "dmg_low": low_a,
            "ddmg_low": low_b,
            "dmg_total": dmg_total,
            "ddmg_total": ddmg_total,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn diverse_devices_have_higher_low_score_rate() {
        let r = run(testdata::small());
        let rate_a = r.values["dmg_low"].as_u64().unwrap() as f64
            / r.values["dmg_total"].as_u64().unwrap() as f64;
        let rate_b = r.values["ddmg_low"].as_u64().unwrap() as f64
            / r.values["ddmg_total"].as_u64().unwrap() as f64;
        assert!(
            rate_b >= rate_a,
            "diverse low-score rate {rate_b} below same-device {rate_a}"
        );
    }

    #[test]
    fn grid_counts_match_totals() {
        let r = run(testdata::small());
        let grid = r.values["dmg_grid"].as_array().unwrap();
        let total: u64 = grid
            .iter()
            .flat_map(|row| row.as_array().unwrap().iter())
            .map(|v| v.as_u64().unwrap())
            .sum();
        assert_eq!(total, r.values["dmg_low"].as_u64().unwrap());
    }

    #[test]
    fn quality_grid_only_counts_low_scores() {
        use fp_core::ids::SubjectId;
        use fp_quality::NfiqLevel;
        let scores = [
            GenuineScore {
                subject: SubjectId(0),
                score: 5.0,
                gallery_quality: NfiqLevel::Excellent,
                probe_quality: NfiqLevel::Poor,
            },
            GenuineScore {
                subject: SubjectId(1),
                score: 50.0,
                gallery_quality: NfiqLevel::Poor,
                probe_quality: NfiqLevel::Poor,
            },
        ];
        let grid = quality_grid(scores.iter());
        assert_eq!(grid[0][4], 1);
        assert_eq!(grid[4][4], 0);
    }
}
