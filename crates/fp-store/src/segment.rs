//! The immutable on-disk segment format.
//!
//! A segment is one write-once file holding a batch of enrolled gallery
//! entries in *index-native* form: the exact prepared pair tables,
//! packed cylinder-code arena slices, per-cylinder popcounts, and
//! geometric-hash buckets a [`fp_index::CandidateIndex`] holds in memory.
//! Opening a segment is pure parsing — no template re-preparation, no
//! cylinder re-extraction — which is why a gallery loads in milliseconds
//! where re-enrollment takes minutes.
//!
//! # Layout (version 1, all little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"FPSTSEG\0"
//!      8     2  version (= 1)
//!     10     2  section count (= 5)
//!     12     4  entry count
//!     16   120  section table: 5 x { id u32, offset u64, len u64, crc u32 }
//!    136     4  header CRC32 over bytes [0, 136)
//!    140     -  section payloads, contiguous, in table order
//! ```
//!
//! The five sections appear in fixed order and tile the rest of the file
//! exactly — `META(1)`, `SPANS(2)`, `TABLES(3)`, `ARENA(4)`,
//! `BUCKETS(5)`. Because the header CRC covers the section table and each
//! section CRC covers its payload, **every byte of a segment is covered
//! by exactly one checksum**: flipping any bit anywhere yields a typed
//! [`StoreError`], never a silently different gallery.
//!
//! Each SPANS record is 24 bytes per entry — `cylinders u32, words_per
//! u32, table_bytes u64, table_crc u32, pair_count u32` — carrying
//! everything stage-1 and the arena need about an entry *plus* the length
//! and CRC32 of that entry's variable-length TABLES record. That is what
//! makes the fast open path possible: a reader that has verified the tiny
//! SPANS section can leave the TABLES section (the dominant share of the
//! file) on disk and slice, checksum, and decode individual records on
//! demand.
//!
//! Decoding validates semantics, not just framing: pair distances must be
//! finite and sorted, directions canonical, minutia references in range,
//! bucket ids dense, bucket keys strictly ascending — each the exact
//! precondition some downstream kernel relies on without re-checking.

use fp_core::minutia::MinutiaKind;
use fp_index::IndexConfig;
use fp_match::PreparedPairTable;
use serde::Serialize;

use crate::error::StoreError;
use crate::fmt::{crc32, Dec, Enc};

/// Segment file magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"FPSTSEG\0";
/// Current segment format version. Any change to the section layouts *or*
/// to the in-memory packing they mirror (see the pinned-layout golden
/// test on `fp_index::CodeArena`) must bump this.
pub const SEGMENT_VERSION: u16 = 1;

const SECTION_COUNT: usize = 5;
const SECTION_IDS: [u32; SECTION_COUNT] = [1, 2, 3, 4, 5];
const SECTION_NAMES: [&str; SECTION_COUNT] = ["meta", "spans", "tables", "arena", "buckets"];
const HEADER_BYTES: usize = 16 + SECTION_COUNT * 24;
pub(crate) const SECTIONS_START: usize = HEADER_BYTES + 4;
/// Largest angular bin count the geometric-hash key packing supports
/// (21 bits per dimension).
const MAX_ANGLE_BINS: u64 = 1 << 21;

const WHAT: &str = "segment";

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        what: WHAT,
        detail: detail.into(),
    }
}

/// One entry's persistence view, borrowed from a live index.
pub(crate) struct EntrySource<'a> {
    pub(crate) table: &'a PreparedPairTable,
    /// Vote-normalization denominator ([`fp_index`]'s feature count for
    /// this entry — not in general derivable from `table`).
    pub(crate) pair_count: u32,
    /// This entry's packed cylinder-code words (length = cylinders x
    /// words_per).
    pub(crate) words: &'a [u64],
    /// Per-cylinder popcounts (length = cylinders).
    pub(crate) ones: &'a [u32],
    pub(crate) words_per: u32,
}

/// Everything a segment persists, borrowed from a live index (or from
/// decoded segments during compaction).
pub(crate) struct SegmentSource<'a> {
    pub(crate) config: IndexConfig,
    pub(crate) entries: Vec<EntrySource<'a>>,
    pub(crate) buckets: &'a [(u64, Vec<u32>)],
}

/// One entry decoded from a segment.
#[derive(Debug)]
pub(crate) struct DecodedEntry {
    pub(crate) table: PreparedPairTable,
    pub(crate) pair_count: u32,
    pub(crate) cylinders: u32,
    pub(crate) words_per: u32,
    /// Offset of this entry's words in the segment's `words` vec.
    pub(crate) word_off: usize,
    /// Offset of this entry's popcounts in the segment's `ones` vec.
    pub(crate) ones_off: usize,
}

/// One decoded SPANS record: the fixed-size per-entry facts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanRec {
    pub(crate) cylinders: u32,
    pub(crate) words_per: u32,
    /// Length of this entry's TABLES record in bytes.
    pub(crate) table_bytes: u64,
    /// CRC32 of this entry's TABLES record — lets a lazy reader verify a
    /// single record without touching the rest of the section.
    pub(crate) table_crc: u32,
    pub(crate) pair_count: u32,
}

/// Byte size of one SPANS record.
pub(crate) const SPAN_RECORD_BYTES: usize = 24;

/// A fully validated decoded segment.
#[derive(Debug)]
pub(crate) struct DecodedSegment {
    pub(crate) config: IndexConfig,
    pub(crate) entries: Vec<DecodedEntry>,
    pub(crate) words: Vec<u64>,
    pub(crate) ones: Vec<u32>,
    pub(crate) buckets: Vec<(u64, Vec<u32>)>,
}

/// Per-section health as reported by [`inspect_segment`].
#[derive(Debug, Clone, Serialize)]
pub struct SectionInspect {
    /// Section name (`meta` / `spans` / `tables` / `arena` / `buckets`).
    pub name: &'static str,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Whether the stored CRC matches the payload.
    pub crc_ok: bool,
}

/// Structural summary of one segment file (`study gallery inspect`).
#[derive(Debug, Clone, Serialize)]
pub struct SegmentInspect {
    /// Format version from the header.
    pub version: u16,
    /// Entries packed in this segment (including tombstoned ones — the
    /// manifest, not the segment, knows which are dead).
    pub entry_count: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whether the header CRC (magic, version, counts, section table)
    /// matches.
    pub header_crc_ok: bool,
    /// Per-section sizes and CRC status.
    pub sections: Vec<SectionInspect>,
}

fn encode_meta(config: &IndexConfig) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(config.shortlist as u64);
    enc.u64(config.max_cylinders as u64);
    enc.u64(config.lss_depth as u64);
    enc.f64_bits(config.distance_bin);
    enc.u64(config.angle_bins as u64);
    enc.into_bytes()
}

fn encode_table(entry: &EntrySource<'_>) -> Vec<u8> {
    let table = entry.table;
    let mut enc = Enc::new();
    enc.u32(table.minutia_count() as u32);
    enc.u32(table.len() as u32);
    for (d, beta1, beta2, i, j) in table.raw_entries() {
        enc.f64_bits(d);
        enc.f64_bits(beta1);
        enc.f64_bits(beta2);
        enc.u16(i);
        enc.u16(j);
    }
    for radians in table.raw_directions() {
        enc.f64_bits(radians);
    }
    for kind in table.raw_kinds() {
        enc.u8(match kind {
            MinutiaKind::RidgeEnding => 0,
            MinutiaKind::Bifurcation => 1,
        });
    }
    enc.into_bytes()
}

/// Serializes `source` into a complete segment file image.
pub(crate) fn encode_segment(source: &SegmentSource<'_>) -> Vec<u8> {
    let meta = encode_meta(&source.config);

    let mut spans = Enc::new();
    let mut tables = Enc::new();
    let mut words_len = 0usize;
    let mut ones_len = 0usize;
    for entry in &source.entries {
        let table_bytes = encode_table(entry);
        spans.u32(entry.ones.len() as u32);
        spans.u32(entry.words_per);
        spans.u64(table_bytes.len() as u64);
        spans.u32(crc32(&table_bytes));
        spans.u32(entry.pair_count);
        tables.raw(&table_bytes);
        words_len += entry.words.len();
        ones_len += entry.ones.len();
    }

    let mut arena = Enc::new();
    arena.u64(words_len as u64);
    arena.u64(ones_len as u64);
    for entry in &source.entries {
        for &w in entry.words {
            arena.u64(w);
        }
    }
    for entry in &source.entries {
        for &o in entry.ones {
            arena.u32(o);
        }
    }

    let mut buckets = Enc::new();
    let id_count: usize = source.buckets.iter().map(|(_, ids)| ids.len()).sum();
    buckets.u64(source.buckets.len() as u64);
    buckets.u64(id_count as u64);
    for (key, _) in source.buckets {
        buckets.u64(*key);
    }
    for (_, ids) in source.buckets {
        buckets.u32(ids.len() as u32);
    }
    for (_, ids) in source.buckets {
        for &id in ids {
            buckets.u32(id);
        }
    }

    let payloads = [
        meta,
        spans.into_bytes(),
        tables.into_bytes(),
        arena.into_bytes(),
        buckets.into_bytes(),
    ];

    let mut header = Enc::new();
    for b in SEGMENT_MAGIC {
        header.u8(*b);
    }
    header.u16(SEGMENT_VERSION);
    header.u16(SECTION_COUNT as u16);
    header.u32(source.entries.len() as u32);
    let mut offset = SECTIONS_START as u64;
    for (id, payload) in SECTION_IDS.iter().zip(&payloads) {
        header.u32(*id);
        header.u64(offset);
        header.u64(payload.len() as u64);
        header.u32(crc32(payload));
        offset += payload.len() as u64;
    }
    debug_assert_eq!(header.len(), HEADER_BYTES);

    let mut out = header.into_bytes();
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    out
}

/// The validated fixed-size frame of a segment: entry count plus the
/// section table, checked to tile `[SECTIONS_START, file_len)` exactly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) entry_count: u32,
    /// `(offset, len)` per section, in fixed section order.
    pub(crate) sections: [(u64, u64); SECTION_COUNT],
    /// Stored CRC32 per section payload.
    pub(crate) crcs: [u32; SECTION_COUNT],
}

/// Parses the header from a *prefix* of the file — `head` must hold the
/// first `min(file_len, SECTIONS_START)` bytes. This is the entry point
/// of the fast open path, which never maps the whole file into memory:
/// magic, version, counts, section tiling against `file_len`, and
/// (unless `check_crc` is off, for inspection) the header CRC are all
/// validated from the 140-byte prefix alone.
pub(crate) fn parse_header(
    head: &[u8],
    file_len: u64,
    check_crc: bool,
) -> Result<Frame, StoreError> {
    if head.len() < 16 {
        return Err(StoreError::Truncated {
            what: WHAT,
            context: "header",
        });
    }
    if &head[..8] != SEGMENT_MAGIC {
        return Err(StoreError::BadMagic { what: WHAT });
    }
    let mut dec = Dec::new(&head[8..], WHAT);
    let version = dec.u16("header").unwrap();
    if version != SEGMENT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: WHAT,
            version,
        });
    }
    let section_count = dec.u16("header").unwrap();
    if section_count as usize != SECTION_COUNT {
        return Err(corrupt(format!(
            "expected {SECTION_COUNT} sections, header declares {section_count}"
        )));
    }
    if head.len() < SECTIONS_START {
        return Err(StoreError::Truncated {
            what: WHAT,
            context: "section table",
        });
    }
    if check_crc {
        let stored = u32::from_le_bytes(head[HEADER_BYTES..SECTIONS_START].try_into().unwrap());
        if crc32(&head[..HEADER_BYTES]) != stored {
            return Err(StoreError::CrcMismatch {
                what: WHAT,
                section: "header",
            });
        }
    }

    let mut table = Dec::new(&head[16..HEADER_BYTES], WHAT);
    let mut sections = [(0u64, 0u64); SECTION_COUNT];
    let mut crcs = [0u32; SECTION_COUNT];
    let mut expected = SECTIONS_START as u64;
    for (k, &want_id) in SECTION_IDS.iter().enumerate() {
        let id = table.u32("section table").unwrap();
        let offset = table.u64("section table").unwrap();
        let len = table.u64("section table").unwrap();
        crcs[k] = table.u32("section table").unwrap();
        if id != want_id {
            return Err(corrupt(format!(
                "section {k} has id {id}, expected {want_id}"
            )));
        }
        if offset != expected {
            return Err(corrupt(format!(
                "section {} at offset {offset}, expected {expected}",
                SECTION_NAMES[k]
            )));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt(format!("section {} length overflows", SECTION_NAMES[k])))?;
        if end > file_len {
            return Err(StoreError::Truncated {
                what: WHAT,
                context: "sections",
            });
        }
        sections[k] = (offset, len);
        expected = end;
    }
    if expected != file_len {
        return Err(corrupt(format!(
            "{} bytes after the last section",
            file_len - expected
        )));
    }

    let entry_count = u32::from_le_bytes(head[12..16].try_into().unwrap());
    Ok(Frame {
        entry_count,
        sections,
        crcs,
    })
}

/// Entry count, `(offset, len)` per section, and per-section CRC status —
/// the section table of a whole in-memory segment image.
type ParsedFrame = (u32, [(usize, usize); SECTION_COUNT], [bool; SECTION_COUNT]);

fn parse_frame(bytes: &[u8], check_crcs: bool) -> Result<ParsedFrame, StoreError> {
    let head = &bytes[..bytes.len().min(SECTIONS_START)];
    let frame = parse_header(head, bytes.len() as u64, check_crcs)?;
    let mut sections = [(0usize, 0usize); SECTION_COUNT];
    let mut crc_ok = [false; SECTION_COUNT];
    for (k, &(off, len)) in frame.sections.iter().enumerate() {
        let (off, len) = (off as usize, len as usize);
        sections[k] = (off, len);
        crc_ok[k] = crc32(&bytes[off..off + len]) == frame.crcs[k];
        if check_crcs && !crc_ok[k] {
            return Err(StoreError::CrcMismatch {
                what: WHAT,
                section: SECTION_NAMES[k],
            });
        }
    }
    Ok((frame.entry_count, sections, crc_ok))
}

pub(crate) fn decode_meta(payload: &[u8]) -> Result<IndexConfig, StoreError> {
    let mut dec = Dec::new(payload, WHAT);
    let shortlist = dec.u64("meta")?;
    let max_cylinders = dec.u64("meta")?;
    let lss_depth = dec.u64("meta")?;
    let distance_bin = dec.f64_bits("meta")?;
    let angle_bins = dec.u64("meta")?;
    dec.finish("meta")?;

    let as_usize = |v: u64, name: &str| -> Result<usize, StoreError> {
        usize::try_from(v).map_err(|_| corrupt(format!("meta {name} {v} does not fit usize")))
    };
    if !(distance_bin.is_finite() && distance_bin > 0.0) {
        return Err(corrupt(format!(
            "meta distance_bin {distance_bin} must be finite and positive"
        )));
    }
    if !(2..=MAX_ANGLE_BINS).contains(&angle_bins) {
        return Err(corrupt(format!(
            "meta angle_bins {angle_bins} outside [2, {MAX_ANGLE_BINS}]"
        )));
    }
    let config = IndexConfig {
        shortlist: as_usize(shortlist, "shortlist")?,
        max_cylinders: as_usize(max_cylinders, "max_cylinders")?,
        lss_depth: as_usize(lss_depth, "lss_depth")?,
        distance_bin,
        angle_bins: as_usize(angle_bins, "angle_bins")?,
    };
    config
        .validate()
        .map_err(|err| corrupt(format!("meta config invalid: {err}")))?;
    Ok(config)
}

/// Decodes and validates the SPANS section: `entry_count` fixed-size
/// records, word/popcount totals overflow-checked.
pub(crate) fn decode_spans(payload: &[u8], entry_count: usize) -> Result<Vec<SpanRec>, StoreError> {
    let mut dec = Dec::new(payload, WHAT);
    dec.checked_count(entry_count as u64, SPAN_RECORD_BYTES, "spans")?;
    let mut spans = Vec::with_capacity(entry_count);
    let mut words_total = 0u64;
    let mut ones_total = 0u64;
    for _ in 0..entry_count {
        let cylinders = dec.u32("spans")?;
        let words_per = dec.u32("spans")?;
        let table_bytes = dec.u64("spans")?;
        let table_crc = dec.u32("spans")?;
        let pair_count = dec.u32("spans")?;
        words_total = (cylinders as u64)
            .checked_mul(words_per as u64)
            .and_then(|w| words_total.checked_add(w))
            .ok_or_else(|| corrupt("span word totals overflow".to_string()))?;
        ones_total = ones_total
            .checked_add(cylinders as u64)
            .ok_or_else(|| corrupt("span popcount totals overflow".to_string()))?;
        spans.push(SpanRec {
            cylinders,
            words_per,
            table_bytes,
            table_crc,
            pair_count,
        });
    }
    dec.finish("spans")?;
    Ok(spans)
}

/// Decodes one TABLES record (`record` is exactly the span-declared byte
/// range) into a validated [`PreparedPairTable`]. `at` labels errors with
/// the entry index. Shared by the eager full decode and the lazy
/// per-record loads — both therefore produce bit-identical tables.
pub(crate) fn decode_table_record(
    record: &[u8],
    at: usize,
) -> Result<PreparedPairTable, StoreError> {
    let mut dec = Dec::new(record, WHAT);
    let minutia_count = dec.u32("tables")? as usize;
    let table_len = dec.u32("tables")? as u64;
    let table_len = dec.checked_count(table_len, 28, "pair entries")?;
    let raw = dec.bytes(table_len * 28, "pair entries")?;
    let raw_entries: Vec<(f64, f64, f64, u16, u16)> = raw
        .chunks_exact(28)
        .map(|c| {
            (
                f64::from_bits(u64::from_le_bytes(c[0..8].try_into().unwrap())),
                f64::from_bits(u64::from_le_bytes(c[8..16].try_into().unwrap())),
                f64::from_bits(u64::from_le_bytes(c[16..24].try_into().unwrap())),
                u16::from_le_bytes(c[24..26].try_into().unwrap()),
                u16::from_le_bytes(c[26..28].try_into().unwrap()),
            )
        })
        .collect();
    let dir_count = dec.checked_count(minutia_count as u64, 8, "directions")?;
    let directions = dec
        .bytes(dir_count * 8, "directions")?
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    let kinds = dec
        .bytes(minutia_count, "kinds")?
        .iter()
        .map(|&b| match b {
            0 => Ok(MinutiaKind::RidgeEnding),
            1 => Ok(MinutiaKind::Bifurcation),
            other => Err(corrupt(format!("entry {at}: unknown minutia kind {other}"))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    dec.finish("tables")?;
    PreparedPairTable::from_raw_parts(raw_entries, directions, kinds, minutia_count)
        .map_err(|detail| corrupt(format!("entry {at}: {detail}")))
}

/// Decodes the ARENA section against the span totals. Popcount *values*
/// are re-validated against the words when the arena is reassembled
/// (`CodeArena::from_raw_parts`).
pub(crate) fn decode_arena(
    payload: &[u8],
    spans: &[SpanRec],
) -> Result<(Vec<u64>, Vec<u32>), StoreError> {
    let words_total: u64 = spans
        .iter()
        .map(|s| s.cylinders as u64 * s.words_per as u64)
        .sum();
    let ones_total: u64 = spans.iter().map(|s| s.cylinders as u64).sum();
    let mut dec = Dec::new(payload, WHAT);
    let words_len = dec.u64("arena")?;
    let ones_len = dec.u64("arena")?;
    if words_len != words_total || ones_len != ones_total {
        return Err(corrupt(format!(
            "arena declares {words_len} words / {ones_len} popcounts, spans sum to {words_total} / {ones_total}"
        )));
    }
    let words_len = dec.checked_count(words_len, 8, "arena words")?;
    let words = dec.u64_slice(words_len, "arena words")?;
    let ones_len = dec.checked_count(ones_len, 4, "arena popcounts")?;
    let ones = dec.u32_slice(ones_len, "arena popcounts")?;
    dec.finish("arena")?;
    Ok((words, ones))
}

/// Decodes the BUCKETS section in its flat persisted shape — strictly
/// ascending keys, per-key lengths (returned as prefix offsets), dense
/// in-range gallery ids — without building any per-bucket allocation.
pub(crate) fn decode_buckets_flat(
    payload: &[u8],
    entry_count: usize,
) -> Result<fp_index::FlatBuckets, StoreError> {
    let mut dec = Dec::new(payload, WHAT);
    let key_count = dec.u64("buckets")?;
    let id_count = dec.u64("buckets")?;
    let key_count = dec.checked_count(key_count, 8 + 4, "bucket keys")?;
    let keys = dec.u64_slice(key_count, "bucket keys")?;
    for pair in keys.windows(2) {
        if pair[1] <= pair[0] {
            return Err(corrupt(format!(
                "bucket keys not strictly ascending ({} then {})",
                pair[0], pair[1]
            )));
        }
    }
    let lens = dec.u32_slice(key_count, "bucket lengths")?;
    let mut offsets = Vec::with_capacity(key_count + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for &len in &lens {
        total += len as usize;
        offsets.push(total);
    }
    if total as u64 != id_count {
        return Err(corrupt(format!(
            "bucket lengths sum to {total}, header declares {id_count} ids"
        )));
    }
    let id_count = dec.checked_count(id_count, 4, "bucket ids")?;
    let ids = dec.u32_slice(id_count, "bucket ids")?;
    dec.finish("buckets")?;
    if let Some(&bad) = ids.iter().find(|&&id| id as usize >= entry_count) {
        return Err(corrupt(format!(
            "bucket id {bad} out of range for {entry_count} entries"
        )));
    }
    Ok(fp_index::FlatBuckets { keys, offsets, ids })
}

/// Fully decodes and validates a segment file image, including every
/// per-record table CRC stored in SPANS (so a segment that passes here can
/// never fail a lazy per-record check later).
pub(crate) fn decode_segment(bytes: &[u8]) -> Result<DecodedSegment, StoreError> {
    let (entry_count, sections, _) = parse_frame(bytes, true)?;
    let entry_count = entry_count as usize;
    let payload = |k: usize| -> &[u8] {
        let (off, len) = sections[k];
        &bytes[off..off + len]
    };

    let config = decode_meta(payload(0))?;
    let spans = decode_spans(payload(1), entry_count)?;

    // TABLES: one variable-length record per entry, sliced by the span
    // declaration and cross-checked against the per-record CRC.
    let tables = payload(2);
    let mut entries = Vec::with_capacity(entry_count);
    let mut word_off = 0usize;
    let mut ones_off = 0usize;
    let mut cursor = 0usize;
    for (at, span) in spans.iter().enumerate() {
        let len = usize::try_from(span.table_bytes)
            .ok()
            .filter(|&len| len <= tables.len() - cursor)
            .ok_or(StoreError::Truncated {
                what: WHAT,
                context: "tables",
            })?;
        let record = &tables[cursor..cursor + len];
        cursor += len;
        if crc32(record) != span.table_crc {
            return Err(StoreError::CrcMismatch {
                what: WHAT,
                section: "table record",
            });
        }
        let table = decode_table_record(record, at)?;
        entries.push(DecodedEntry {
            table,
            pair_count: span.pair_count,
            cylinders: span.cylinders,
            words_per: span.words_per,
            word_off,
            ones_off,
        });
        word_off += span.cylinders as usize * span.words_per as usize;
        ones_off += span.cylinders as usize;
    }
    if cursor != tables.len() {
        return Err(corrupt(format!(
            "tables: {} trailing bytes",
            tables.len() - cursor
        )));
    }

    let (words, ones) = decode_arena(payload(3), &spans)?;

    let flat = decode_buckets_flat(payload(4), entry_count)?;
    let buckets = flat
        .keys
        .iter()
        .enumerate()
        .map(|(k, &key)| (key, flat.ids[flat.offsets[k]..flat.offsets[k + 1]].to_vec()))
        .collect();

    Ok(DecodedSegment {
        config,
        entries,
        words,
        ones,
        buckets,
    })
}

/// Validates a segment image end to end — framing, every checksum, and
/// all semantic invariants (sorted pair distances, canonical directions,
/// in-range minutia references and bucket ids, ascending bucket keys) —
/// without assembling an index. Returns the entry count. This is the
/// public fsck surface the corruption test-suite drives: **no** byte
/// flip, truncation, or hostile header may get past it, and none may
/// panic.
pub fn check_segment(bytes: &[u8]) -> Result<u32, StoreError> {
    decode_segment(bytes).map(|decoded| decoded.entries.len() as u32)
}

/// Structural summary of a segment without requiring every checksum to
/// hold: framing errors (magic, version, truncation, hostile section
/// layout) are still typed errors, but CRC failures are *reported* per
/// section rather than aborting — `study gallery inspect` uses this to
/// show which section of a damaged file rotted.
pub fn inspect_segment(bytes: &[u8]) -> Result<SegmentInspect, StoreError> {
    let (entry_count, sections, crc_ok) = parse_frame(bytes, false)?;
    let header_crc_ok = {
        let stored = u32::from_le_bytes(bytes[HEADER_BYTES..SECTIONS_START].try_into().unwrap());
        crc32(&bytes[..HEADER_BYTES]) == stored
    };
    Ok(SegmentInspect {
        version: SEGMENT_VERSION,
        entry_count,
        file_bytes: bytes.len() as u64,
        header_crc_ok,
        sections: sections
            .iter()
            .zip(SECTION_NAMES)
            .zip(crc_ok)
            .map(|(((_, len), name), crc_ok)| SectionInspect {
                name,
                bytes: *len as u64,
                crc_ok,
            })
            .collect(),
    })
}
