//! # fp-quality
//!
//! An NFIQ-like fingerprint image quality assessor.
//!
//! The study used NIST Fingerprint Image Quality (NFIQ) 1.0, which maps an
//! image to one of five levels — 1 (best) to 5 (worst) — trained to predict
//! matcher performance. NFIQ's feature vector (minutiae counts and
//! reliabilities, usable foreground area, local clarity maps) is exactly the
//! information our acquisition simulation carries on every
//! [`Impression`], so this crate reimplements the
//! same idea as a fixed weighted scoring of those features, binned to the
//! five levels and calibrated so that live-scan captures skew good
//! (levels 1–2) while ink cards skew poor, matching NFIQ behaviour on real
//! operational data.
//!
//! ```
//! use fp_quality::{NfiqLevel, QualityAssessor};
//!
//! let assessor = QualityAssessor::default();
//! // A perfect impression scores level 1:
//! let level = assessor.assess_features(&fp_sensor::ImpressionFeatures {
//!     minutia_count: 40,
//!     mean_reliability: 0.95,
//!     captured_area_fraction: 1.0,
//!     clarity: 0.97,
//!     condition_extremity: 0.05,
//!     quality_bias: 0.0,
//! });
//! assert_eq!(level, NfiqLevel::Excellent);
//! ```

use std::fmt;

use fp_sensor::{Impression, ImpressionFeatures};
use serde::{Deserialize, Serialize};

/// The five NFIQ quality levels. Lower is better, as in NIST's tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NfiqLevel {
    /// Level 1: excellent.
    Excellent = 1,
    /// Level 2: very good.
    VeryGood = 2,
    /// Level 3: good.
    Good = 3,
    /// Level 4: fair — NIST recommends reacquisition for index fingers.
    Fair = 4,
    /// Level 5: poor.
    Poor = 5,
}

impl NfiqLevel {
    /// All levels, best first.
    pub const ALL: [NfiqLevel; 5] = [
        NfiqLevel::Excellent,
        NfiqLevel::VeryGood,
        NfiqLevel::Good,
        NfiqLevel::Fair,
        NfiqLevel::Poor,
    ];

    /// The numeric NFIQ value (1–5).
    pub fn value(&self) -> u8 {
        *self as u8
    }

    /// Builds a level from the numeric NFIQ value.
    ///
    /// # Errors
    ///
    /// Returns an error for values outside `1..=5`.
    pub fn from_value(v: u8) -> Result<NfiqLevel, fp_core::Error> {
        match v {
            1 => Ok(NfiqLevel::Excellent),
            2 => Ok(NfiqLevel::VeryGood),
            3 => Ok(NfiqLevel::Good),
            4 => Ok(NfiqLevel::Fair),
            5 => Ok(NfiqLevel::Poor),
            _ => Err(fp_core::Error::invalid(
                "nfiq",
                format!("{v} is not an NFIQ level (1..=5)"),
            )),
        }
    }
}

impl fmt::Display for NfiqLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NFIQ {}", self.value())
    }
}

/// Weights of the quality-defect features. All weights multiply a defect in
/// `[0, 1]`, so the weighted sum is a non-negative "defect score" that the
/// level thresholds cut into five bands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityWeights {
    /// Weight of `1 - clarity` (ridge/valley contrast defects).
    pub clarity: f64,
    /// Weight of `1 - mean_reliability` (feature extraction confidence).
    pub reliability: f64,
    /// Weight of `1 - captured_area_fraction` (usable foreground area).
    pub area: f64,
    /// Weight of the minutiae-count deficit below the expected count.
    pub count: f64,
    /// Weight of presentation extremity (pressure/moisture out of range).
    pub extremity: f64,
    /// Scale applied to the device's NFIQ bias.
    pub device_bias: f64,
}

impl Default for QualityWeights {
    fn default() -> Self {
        QualityWeights {
            clarity: 1.5,
            reliability: 1.1,
            area: 0.9,
            count: 0.8,
            extremity: 0.5,
            device_bias: 0.35,
        }
    }
}

/// The NFIQ-like quality assessor.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualityAssessor {
    weights: QualityWeights,
}

/// Minutiae count at (and above) which the count feature reports no defect.
pub const EXPECTED_MINUTIAE: usize = 30;

/// Defect-score thresholds between levels 1|2, 2|3, 3|4, 4|5.
pub const LEVEL_THRESHOLDS: [f64; 4] = [0.45, 0.80, 1.15, 1.55];

impl QualityAssessor {
    /// Creates an assessor with explicit weights.
    pub fn new(weights: QualityWeights) -> Self {
        QualityAssessor { weights }
    }

    /// The active weights.
    pub fn weights(&self) -> &QualityWeights {
        &self.weights
    }

    /// The continuous defect score of a feature vector (0 = flawless).
    pub fn defect_score(&self, f: &ImpressionFeatures) -> f64 {
        let w = &self.weights;
        let count_deficit = if f.minutia_count >= EXPECTED_MINUTIAE {
            0.0
        } else {
            (EXPECTED_MINUTIAE - f.minutia_count) as f64 / EXPECTED_MINUTIAE as f64
        };
        w.clarity * (1.0 - f.clarity).clamp(0.0, 1.0)
            + w.reliability * (1.0 - f.mean_reliability).clamp(0.0, 1.0)
            + w.area * (1.0 - f.captured_area_fraction).clamp(0.0, 1.0)
            + w.count * count_deficit
            + w.extremity * f.condition_extremity.clamp(0.0, 1.0)
            + w.device_bias * f.quality_bias.max(0.0)
    }

    /// Assesses a feature vector to an NFIQ level.
    pub fn assess_features(&self, f: &ImpressionFeatures) -> NfiqLevel {
        let d = self.defect_score(f);
        for (i, &t) in LEVEL_THRESHOLDS.iter().enumerate() {
            if d < t {
                return NfiqLevel::ALL[i];
            }
        }
        NfiqLevel::Poor
    }

    /// Assesses an impression.
    pub fn assess(&self, impression: &Impression) -> NfiqLevel {
        self.assess_features(&impression.features())
    }

    /// Assesses a raster fingerprint image directly — the image-domain path
    /// that mirrors what NIST's NFIQ does on real scans.
    ///
    /// Runs the `fp-image` analysis chain (orientation estimation,
    /// segmentation, local quality, binarization, thinning, extraction) to
    /// derive the same [`ImpressionFeatures`] the feature path uses, then
    /// applies the identical classifier. `dpi` is the image resolution.
    pub fn assess_image(&self, image: &fp_image::GrayImage, dpi: f64) -> NfiqLevel {
        use fp_image::{binarize, extract, morphology, orientation, quality_map, segment, thin};

        let block = 16;
        let field = orientation::estimate_orientation(image, block);
        let mask = segment::segment(image, block, 0.25);
        let qmap = quality_map::LocalQualityMap::compute(image, &field, &mask);

        // Physical extent of the image for pixel->mm mapping.
        let pitch = 25.4 / dpi;
        let width_mm = image.width() as f64 * pitch;
        let height_mm = image.height() as f64 * pitch;
        let window = fp_core::geometry::Rect::centred(
            fp_core::geometry::Point::ORIGIN,
            width_mm.max(0.1),
            height_mm.max(0.1),
        )
        .expect("image extent is positive");

        let binary = binarize::adaptive_binarize(image, &mask, 6);
        let skeleton = morphology::clean_skeleton(&thin::zhang_suen(&binary), 5, 6);
        let minutia_count = extract::extract_minutiae(
            &skeleton,
            &mask,
            window,
            &extract::ExtractConfig {
                dpi,
                ..extract::ExtractConfig::default()
            },
        )
        .map(|t| t.len())
        .unwrap_or(0);

        let clarity = qmap.mean_foreground_quality();
        let features = ImpressionFeatures {
            minutia_count,
            mean_reliability: clarity, // extraction confidence tracks clarity
            captured_area_fraction: mask.foreground_fraction(),
            clarity,
            condition_extremity: (1.0 - clarity).clamp(0.0, 1.0),
            quality_bias: 0.0,
        };
        self.assess_features(&features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::ids::{DeviceId, Finger, SessionId};
    use fp_sensor::CaptureProtocol;
    use fp_synth::population::{Population, PopulationConfig};

    fn features(clarity: f64, reliability: f64, area: f64, count: usize) -> ImpressionFeatures {
        ImpressionFeatures {
            minutia_count: count,
            mean_reliability: reliability,
            captured_area_fraction: area,
            clarity,
            condition_extremity: 1.0 - clarity,
            quality_bias: 0.0,
        }
    }

    #[test]
    fn perfect_features_are_level_one() {
        let a = QualityAssessor::default();
        assert_eq!(
            a.assess_features(&features(1.0, 1.0, 1.0, 40)),
            NfiqLevel::Excellent
        );
    }

    #[test]
    fn terrible_features_are_level_five() {
        let a = QualityAssessor::default();
        assert_eq!(
            a.assess_features(&features(0.1, 0.3, 0.3, 5)),
            NfiqLevel::Poor
        );
    }

    #[test]
    fn level_is_monotone_in_clarity() {
        let a = QualityAssessor::default();
        let mut prev = 0u8;
        for i in 0..=10 {
            let clarity = 1.0 - i as f64 / 10.0;
            let level = a.assess_features(&features(clarity, 0.9, 1.0, 35)).value();
            assert!(level >= prev, "clarity {clarity}: level {level} < {prev}");
            prev = level;
        }
    }

    #[test]
    fn device_bias_degrades_quality() {
        let a = QualityAssessor::default();
        let mut f = features(0.8, 0.85, 0.95, 30);
        let clean = a.defect_score(&f);
        f.quality_bias = 1.0;
        assert!(a.defect_score(&f) > clean);
    }

    #[test]
    fn from_value_roundtrips_and_validates() {
        for level in NfiqLevel::ALL {
            assert_eq!(NfiqLevel::from_value(level.value()).unwrap(), level);
        }
        assert!(NfiqLevel::from_value(0).is_err());
        assert!(NfiqLevel::from_value(6).is_err());
    }

    #[test]
    fn levels_order_best_to_worst() {
        assert!(NfiqLevel::Excellent < NfiqLevel::Poor);
        assert_eq!(NfiqLevel::Excellent.value(), 1);
        assert_eq!(NfiqLevel::Poor.value(), 5);
    }

    /// Distributional check over a real capture population: live-scan
    /// captures should mostly be good (levels 1-3) and ink cards should
    /// skew worse on average, mirroring NFIQ on operational data.
    #[test]
    fn population_distribution_is_plausible() {
        let pop = Population::generate(&PopulationConfig::new(31, 60));
        let protocol = CaptureProtocol::new();
        let assessor = QualityAssessor::default();
        let mut live = Vec::new();
        let mut ink = Vec::new();
        for s in pop.subjects() {
            for d in DeviceId::ALL {
                let imp = protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(0));
                let level = assessor.assess(&imp).value() as f64;
                if d == DeviceId(4) {
                    ink.push(level);
                } else {
                    live.push(level);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let live_mean = mean(&live);
        let ink_mean = mean(&ink);
        assert!(live_mean < 3.0, "live-scan mean NFIQ {live_mean}");
        assert!(ink_mean > live_mean, "ink {ink_mean} vs live {live_mean}");
        // All five levels should be reachable somewhere in the population.
        let all: Vec<f64> = live.iter().chain(&ink).copied().collect();
        let distinct: std::collections::BTreeSet<u8> = all.iter().map(|&l| l as u8).collect();
        assert!(distinct.len() >= 3, "only levels {distinct:?} observed");
    }

    #[test]
    fn image_path_rates_clean_renders_better_than_noisy_ones() {
        use fp_core::geometry::{Point, Rect};
        use fp_core::rng::SeedTree;
        use fp_image::render::{render_master, RenderConfig};
        use fp_synth::master::MasterPrint;
        use rand::Rng;

        let master = MasterPrint::generate(&SeedTree::new(77), fp_core::ids::Digit::Index, 1.0);
        let window = Rect::centred(Point::ORIGIN, 14.0, 16.0).unwrap();
        let clean = render_master(&master, window, &RenderConfig::default(), &SeedTree::new(1));

        // Heavy speckle noise on top of the clean render.
        let mut noisy = clean.clone();
        let mut rng = SeedTree::new(2).rng();
        for v in noisy.data_mut() {
            *v = (*v + (rng.gen::<f32>() - 0.5) * 1.2).clamp(0.0, 1.0);
        }

        let assessor = QualityAssessor::default();
        let q_clean = assessor.assess_image(&clean, 500.0);
        let q_noisy = assessor.assess_image(&noisy, 500.0);
        assert!(
            q_clean <= q_noisy,
            "clean {q_clean} rated worse than noisy {q_noisy}"
        );
        assert!(q_clean.value() <= 3, "clean render rated {q_clean}");
    }

    #[test]
    fn image_path_rates_flat_images_poor() {
        let flat = fp_image::GrayImage::filled(128, 128, 0.5).unwrap();
        let assessor = QualityAssessor::default();
        assert_eq!(assessor.assess_image(&flat, 500.0), NfiqLevel::Poor);
    }

    #[test]
    fn assess_matches_assess_features() {
        let pop = Population::generate(&PopulationConfig::new(5, 1));
        let imp = CaptureProtocol::new().capture(
            &pop.subjects()[0],
            Finger::RIGHT_INDEX,
            DeviceId(2),
            SessionId(1),
        );
        let a = QualityAssessor::default();
        assert_eq!(a.assess(&imp), a.assess_features(&imp.features()));
    }
}
