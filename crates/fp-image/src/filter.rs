//! Basic spatial filters: separable Gaussian blur and Sobel gradients.

use crate::image::GrayImage;

/// Builds a normalized 1-D Gaussian kernel with radius `ceil(3 sigma)`.
///
/// # Panics
///
/// Panics when `sigma` is not positive.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-(i * i) as f32 / denom).exp());
    }
    let sum: f32 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

/// Separable Gaussian blur with replicate border handling.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    let (w, h) = (img.width(), img.height());

    // Horizontal pass.
    let mut tmp = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel.iter().enumerate() {
                acc += kv * img.at_clamped(x as isize + k as isize - radius, y as isize);
            }
            tmp[y * w + x] = acc;
        }
    }
    let tmp_img = GrayImage::from_data(w, h, tmp).expect("dimensions preserved");

    // Vertical pass.
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel.iter().enumerate() {
                acc += kv * tmp_img.at_clamped(x as isize, y as isize + k as isize - radius);
            }
            out[y * w + x] = acc;
        }
    }
    GrayImage::from_data(w, h, out).expect("dimensions preserved")
}

/// Sobel gradient images `(gx, gy)`.
pub fn sobel(img: &GrayImage) -> (GrayImage, GrayImage) {
    let (w, h) = (img.width(), img.height());
    let mut gx = vec![0.0f32; w * h];
    let mut gy = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            let p = |dx: isize, dy: isize| img.at_clamped(xi + dx, yi + dy);
            gx[y * w + x] =
                (p(1, -1) + 2.0 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1));
            gy[y * w + x] =
                (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1));
        }
    }
    (
        GrayImage::from_data(w, h, gx).expect("dimensions preserved"),
        GrayImage::from_data(w, h, gy).expect("dimensions preserved"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-7);
        }
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayImage::filled(16, 16, 0.7).unwrap();
        let blurred = gaussian_blur(&img, 2.0);
        for &v in blurred.data() {
            assert!((v - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_reduces_variance() {
        // Checkerboard has maximal variance; blurring must shrink it.
        let mut img = GrayImage::filled(32, 32, 0.0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, ((x + y) % 2) as f32);
            }
        }
        let before = img.block_stats(0, 0, 32, 32).1;
        let after = gaussian_blur(&img, 1.0).block_stats(0, 0, 32, 32).1;
        assert!(after < before * 0.5, "variance {before} -> {after}");
    }

    #[test]
    fn sobel_detects_vertical_edge_in_gx() {
        let mut img = GrayImage::filled(16, 16, 0.0).unwrap();
        for y in 0..16 {
            for x in 8..16 {
                img.set(x, y, 1.0);
            }
        }
        let (gx, gy) = sobel(&img);
        // At the edge column, gx is large and gy is ~0.
        assert!(gx.at(8, 8).abs() > 1.0);
        assert!(gy.at(8, 8).abs() < 1e-5);
    }
}
