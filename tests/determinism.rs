//! Workspace-level determinism and API-surface checks: the whole study must
//! be a pure function of the seed, across every layer of the stack.

use fingerprint_interop::prelude::*;
use fp_study::config::StudyConfig;
use fp_study::scores::{ScoreMatrix, StudyData};

fn config(seed: u64) -> StudyConfig {
    StudyConfig::builder()
        .subjects(10)
        .seed(seed)
        .impostors_per_cell(30)
        .build()
}

#[test]
fn full_study_is_reproducible_bit_for_bit() {
    let a = StudyData::generate(&config(77));
    let b = StudyData::generate(&config(77));
    for g in DeviceId::ALL {
        for p in DeviceId::ALL {
            assert_eq!(a.scores.genuine_values(g, p), b.scores.genuine_values(g, p));
            assert_eq!(a.scores.impostor_cell(g, p), b.scores.impostor_cell(g, p));
        }
    }
}

#[test]
fn different_seeds_produce_different_studies() {
    let a = StudyData::generate(&config(1));
    let b = StudyData::generate(&config(2));
    assert_ne!(
        a.scores.genuine_values(DeviceId(0), DeviceId(0)),
        b.scores.genuine_values(DeviceId(0), DeviceId(0))
    );
}

#[test]
fn matchers_agree_between_direct_and_prepared_paths_at_study_level() {
    // The ScoreMatrix uses the prepared fast path; recompute a handful of
    // cells with the direct Matcher API and compare.
    let data = StudyData::generate(&config(5));
    let matcher = PairTableMatcher::default();
    for s in 0..10u32 {
        for (g, p) in [(0u8, 0u8), (0, 4), (3, 1)] {
            let direct = data
                .dataset
                .genuine_score(&matcher, SubjectId(s), DeviceId(g), DeviceId(p))
                .value();
            let from_matrix = data.scores.genuine_cell(DeviceId(g), DeviceId(p))[s as usize].score;
            assert_eq!(direct, from_matrix, "subject {s} cell ({g},{p})");
        }
    }
}

#[test]
fn hough_matrix_is_reproducible_too() {
    let dataset = Dataset::generate(&config(9));
    let a = ScoreMatrix::compute(&dataset, &HoughMatcher::default());
    let b = ScoreMatrix::compute(&dataset, &HoughMatcher::default());
    assert_eq!(
        a.genuine_values(DeviceId(2), DeviceId(3)),
        b.genuine_values(DeviceId(2), DeviceId(3))
    );
}

#[test]
fn prelude_exposes_the_advertised_api() {
    // Compile-time API surface check: the prelude names used throughout the
    // docs must exist and compose.
    let config = StudyConfig::builder()
        .subjects(2)
        .seed(1)
        .impostors_per_cell(2)
        .build();
    let dataset = Dataset::generate(&config);
    let matcher = PairTableMatcher::default();
    let score: MatchScore = dataset.genuine_score(&matcher, SubjectId(0), DeviceId(0), DeviceId(1));
    assert!(score.value() >= 0.0);
    let assessor = QualityAssessor::default();
    let level: NfiqLevel = assessor.assess(&dataset.captures(SubjectId(0), DeviceId(0)).gallery);
    assert!((1..=5).contains(&level.value()));
    let set: ScoreSet = ScoreSet::new(vec![10.0], vec![1.0]);
    assert_eq!(set.fnmr_at(0.0), 0.0);
}
