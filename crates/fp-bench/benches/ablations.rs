//! Ablation benches for the design choices DESIGN.md calls out: each
//! variant is timed, and the bench logs the discriminative effect (genuine
//! vs impostor score gap) once per variant so speed/quality trade-offs are
//! visible in one run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::{bench_population, matcher_fixtures};
use fp_core::ids::{Finger, SessionId, SubjectId};
use fp_core::rng::SeedTree;
use fp_core::Matcher;
use fp_match::{PairTableConfig, PairTableMatcher};
use fp_sensor::{Acquisition, Device};

fn gap(
    matcher: &PairTableMatcher,
    fixtures: &(
        fp_core::template::Template,
        fp_core::template::Template,
        fp_core::template::Template,
    ),
) -> (f64, f64) {
    let (gallery, probe, impostor) = fixtures;
    (
        matcher.compare(gallery, probe).value(),
        matcher.compare(gallery, impostor).value(),
    )
}

fn ablation_benches(c: &mut Criterion) {
    let fixtures = matcher_fixtures();

    let variants: Vec<(&str, PairTableConfig)> = vec![
        ("baseline", PairTableConfig::default()),
        (
            "no_kind_matching",
            PairTableConfig {
                require_kind_match: false,
                ..PairTableConfig::default()
            },
        ),
        (
            "no_rotation_clustering",
            PairTableConfig {
                // A full-circle window disables the rotation-consistency
                // filter: every compatible pair association survives.
                rotation_window: std::f64::consts::PI,
                ..PairTableConfig::default()
            },
        ),
        (
            "no_size_normalization",
            PairTableConfig {
                size_cap: usize::MAX,
                ..PairTableConfig::default()
            },
        ),
        (
            "loose_tolerances",
            PairTableConfig {
                distance_tolerance: 0.6,
                angle_tolerance: 0.4,
                ..PairTableConfig::default()
            },
        ),
        (
            "short_pairs_only",
            PairTableConfig {
                max_pair_distance: 6.0,
                ..PairTableConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("pair_table_ablations");
    for (name, config) in variants {
        let matcher = PairTableMatcher::new(config);
        let (genuine, impostor) = gap(&matcher, &fixtures);
        // One-line effect summary next to the timing.
        eprintln!("ablation {name:<24} genuine {genuine:7.2}  impostor {impostor:6.2}");
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(matcher.compare(black_box(&fixtures.0), black_box(&fixtures.1)));
                black_box(matcher.compare(black_box(&fixtures.0), black_box(&fixtures.2)));
            })
        });
    }
    group.finish();

    // ---- Sensor-model ablations --------------------------------------------
    //
    // Each variant switches one acquisition mechanism off; the log line
    // shows how the D0-gallery vs D3-probe genuine score responds, which is
    // the design-choice evidence DESIGN.md refers to.
    let pop = bench_population(6);
    let matcher = PairTableMatcher::default();
    let d3 = *Device::by_id(fp_core::ids::DeviceId(3));
    let variants: Vec<(&str, Device)> = vec![
        ("d3_baseline", d3),
        ("d3_no_vignette", {
            let mut d = d3;
            d.noise.vignette_band_mm = 0.0;
            d
        }),
        ("d3_no_distortion", {
            let mut d = d3;
            d.distortion = fp_sensor::DistortionSignature::IDENTITY;
            d
        }),
        ("d3_no_jitter", {
            let mut d = d3;
            d.noise.position_jitter = 0.0;
            d.noise.direction_kappa = 1e6;
            d
        }),
    ];
    let mut group = c.benchmark_group("sensor_ablations");
    group.sample_size(20);
    for (name, device) in variants {
        // Effect summary: mean cross-device genuine score over the bench
        // cohort (D0 session-0 gallery vs this-variant session-1 probe).
        let mut total = 0.0;
        for (i, subject) in pop.subjects().iter().enumerate() {
            let gallery = fp_sensor::CaptureProtocol::new().capture(
                subject,
                Finger::RIGHT_INDEX,
                fp_core::ids::DeviceId(0),
                SessionId(0),
            );
            let probe = Acquisition.capture(
                &subject.master_print(Finger::RIGHT_INDEX),
                &subject.skin(),
                &device,
                SubjectId(i as u32),
                Finger::RIGHT_INDEX,
                SessionId(1),
                0.0,
                &SeedTree::new(0xAB1A + i as u64),
            );
            total += matcher
                .compare(gallery.template(), probe.template())
                .value();
        }
        eprintln!(
            "sensor ablation {name:<18} mean cross-device genuine {:.2}",
            total / pop.len() as f64
        );
        let subject = &pop.subjects()[0];
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(Acquisition.capture(
                    &subject.master_print(Finger::RIGHT_INDEX),
                    &subject.skin(),
                    black_box(&device),
                    SubjectId(0),
                    Finger::RIGHT_INDEX,
                    SessionId(1),
                    0.0,
                    &SeedTree::new(7),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
