//! Ridge frequency (inverse ridge period) maps.
//!
//! Human ridge period averages ≈ 0.46 mm on adult index fingers (≈ 9 ridges
//! per 500 dpi centimetre), tightening slightly around the core and
//! coarsening toward the pad edges. The period scales with finger size and
//! varies between subjects; both effects matter to interoperability because
//! resolution mismatches between sensors interact with ridge period when
//! minutiae are quantized to pixels.

use rand::Rng;

use fp_core::dist;
use fp_core::geometry::Point;

/// Mean adult ridge period in millimetres.
pub const MEAN_RIDGE_PERIOD_MM: f64 = 0.46;

/// A smooth per-finger ridge frequency map.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeFrequencyMap {
    /// Base ridge period for this finger (mm).
    base_period: f64,
    /// Centre of the fine-ridge (core) region.
    core: Point,
    /// Fractional tightening at the core (e.g. 0.1 = 10% shorter period).
    core_tightening: f64,
    /// Decay scale of the core effect (mm).
    core_sigma: f64,
    /// Fractional coarsening per mm of distance beyond the pad centre.
    edge_coarsening: f64,
}

impl RidgeFrequencyMap {
    /// Generates a frequency map for a finger whose core region sits at
    /// `core`; subject-level variation comes from `rng`.
    pub fn generate<R: Rng + ?Sized>(core: Point, rng: &mut R) -> Self {
        RidgeFrequencyMap {
            base_period: dist::truncated_normal(rng, MEAN_RIDGE_PERIOD_MM, 0.04, 0.34, 0.60),
            core,
            core_tightening: dist::truncated_normal(rng, 0.10, 0.03, 0.0, 0.2),
            core_sigma: dist::truncated_normal(rng, 5.0, 0.8, 3.0, 8.0),
            edge_coarsening: dist::truncated_normal(rng, 0.004, 0.001, 0.0, 0.01),
        }
    }

    /// The finger's base ridge period in millimetres.
    pub fn base_period_mm(&self) -> f64 {
        self.base_period
    }

    /// Local ridge period (mm) at a point.
    pub fn period_at(&self, p: Point) -> f64 {
        let d_core = p.distance(&self.core);
        let tighten = self.core_tightening * (-(d_core / self.core_sigma).powi(2)).exp();
        let d_centre = p.distance(&Point::ORIGIN);
        let coarsen = self.edge_coarsening * d_centre;
        self.base_period * (1.0 - tighten + coarsen)
    }

    /// Local ridge frequency (ridges per mm) at a point.
    pub fn frequency_at(&self, p: Point) -> f64 {
        1.0 / self.period_at(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::rng::SeedTree;

    fn map(seed: u64) -> RidgeFrequencyMap {
        let mut rng = SeedTree::new(seed).rng();
        RidgeFrequencyMap::generate(Point::new(0.0, 1.5), &mut rng)
    }

    #[test]
    fn period_is_tighter_at_core_than_at_edge() {
        let m = map(1);
        let at_core = m.period_at(Point::new(0.0, 1.5));
        let at_edge = m.period_at(Point::new(8.0, -10.0));
        assert!(at_core < at_edge, "core {at_core} vs edge {at_edge}");
    }

    #[test]
    fn period_stays_in_anatomical_range() {
        for seed in 0..20 {
            let m = map(seed);
            for (x, y) in [(0.0, 0.0), (0.0, 1.5), (9.0, 12.0), (-9.0, -12.0)] {
                let p = m.period_at(Point::new(x, y));
                assert!(
                    (0.25..0.8).contains(&p),
                    "seed {seed}: period {p} at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn frequency_is_reciprocal_of_period() {
        let m = map(3);
        let p = Point::new(2.0, -4.0);
        assert!((m.frequency_at(p) * m.period_at(p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subjects_differ_in_base_period() {
        assert_ne!(map(1).base_period_mm(), map(2).base_period_mm());
    }
}
