//! Tuning parameters for the candidate index.

use fp_telemetry::{FingerprintChain, Fingerprinted};
use serde::{Deserialize, Serialize};

/// Tuning parameters for [`CandidateIndex`](crate::CandidateIndex).
///
/// The defaults are tuned on the study cohort: shortlist recall stays above
/// 0.98 from hundreds to tens of thousands of gallery subjects while
/// re-ranking only a small, bounded slice of the gallery — including the
/// hostile card-scan probe device, whose impressions carry ~2.5x more
/// (mostly spurious) minutiae than their live-scan gallery mates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Number of shortlisted candidates re-ranked exactly per search.
    /// `shortlist >= gallery size` degenerates to brute force (useful for
    /// exactness tests).
    pub shortlist: usize,
    /// Cylinder codes are kept only for this many minutiae per template
    /// (the most reliable ones). Caps the quadratic cylinder-pair cost and
    /// sheds the least trustworthy minutiae first.
    pub max_cylinders: usize,
    /// Local-similarity-sort depth: how many of the strongest per-cylinder
    /// agreements are averaged into the code-channel score. Small enough
    /// that spurious extra minutiae cannot dilute a genuine overlap, large
    /// enough that one lucky cylinder cannot carry an impostor.
    pub lss_depth: usize,
    /// Distance-bin width (mm) of the geometric hash. Chosen near the
    /// matcher's own distance tolerance so a genuine pair lands at most one
    /// bin away from its mate.
    pub distance_bin: f64,
    /// Number of angular bins per relative angle (full circle).
    pub angle_bins: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            shortlist: 48,
            max_cylinders: 24,
            lss_depth: 12,
            distance_bin: 0.5,
            angle_bins: 16,
        }
    }
}

/// A structurally invalid [`IndexConfig`], rejected before any index is
/// built from it.
///
/// Validation happens at index construction
/// ([`CandidateIndex::try_with_config`](crate::CandidateIndex::try_with_config))
/// and when `fp-serve` adopts a wire config at enroll time, so an invalid
/// config surfaces as a typed error at the boundary instead of silently
/// changing scoring semantics deep in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexConfigError {
    /// `lss_depth == 0`. The local-similarity-sort average is over the
    /// strongest `max(1, min(len_p, len_g, lss_depth))` cylinder
    /// agreements, so depth 0 would be silently clamped to 1 — reject it
    /// outright rather than let a config mean something other than what
    /// it says.
    ZeroLssDepth,
}

impl std::fmt::Display for IndexConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexConfigError::ZeroLssDepth => write!(
                f,
                "lss_depth must be >= 1 (depth 0 would be silently clamped to 1)"
            ),
        }
    }
}

impl std::error::Error for IndexConfigError {}

impl IndexConfig {
    /// Checks structural validity. See [`IndexConfigError`] for the rules.
    pub fn validate(&self) -> Result<(), IndexConfigError> {
        if self.lss_depth == 0 {
            return Err(IndexConfigError::ZeroLssDepth);
        }
        Ok(())
    }

    /// A config whose shortlist is scaled to the gallery: a fixed small
    /// budget for modest galleries, growing sub-linearly (~N/10, capped) for
    /// large ones so the re-rank stage stays a vanishing fraction of brute
    /// force.
    pub fn scaled(gallery_len: usize) -> IndexConfig {
        IndexConfig {
            shortlist: (gallery_len / 10).clamp(48, 128),
            ..IndexConfig::default()
        }
    }

    /// Overrides the shortlist budget.
    pub fn with_shortlist(mut self, shortlist: usize) -> IndexConfig {
        self.shortlist = shortlist;
        self
    }

    /// The base RUNFP chain every per-search fingerprint of a run starts
    /// from: `seed` plus this config, folded in declaration order. Two
    /// runs differing in any behavior-relevant parameter diverge before
    /// the first candidate is folded.
    pub fn fingerprint_base(&self, seed: u64) -> FingerprintChain {
        let mut chain = FingerprintChain::new(seed);
        chain.fold(self);
        chain
    }
}

impl Fingerprinted for IndexConfig {
    /// Folds every behavior-relevant field in declaration order. All five
    /// parameters change scores or shortlists, so all five are folded;
    /// `distance_bin` goes in as raw `f64` bits.
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(self.shortlist as u64);
        chain.fold_u64(self.max_cylinders as u64);
        chain.fold_u64(self.lss_depth as u64);
        chain.fold_f64(self.distance_bin);
        chain.fold_u64(self.angle_bins as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_shortlist_is_clamped() {
        assert_eq!(IndexConfig::scaled(100).shortlist, 48);
        assert_eq!(IndexConfig::scaled(1_000).shortlist, 100);
        assert_eq!(IndexConfig::scaled(1_000_000).shortlist, 128);
    }

    #[test]
    fn with_shortlist_overrides() {
        assert_eq!(IndexConfig::default().with_shortlist(7).shortlist, 7);
    }

    #[test]
    fn zero_lss_depth_is_a_typed_error() {
        let bad = IndexConfig {
            lss_depth: 0,
            ..IndexConfig::default()
        };
        assert_eq!(bad.validate(), Err(IndexConfigError::ZeroLssDepth));
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("lss_depth"));
        assert_eq!(IndexConfig::default().validate(), Ok(()));
    }
}
