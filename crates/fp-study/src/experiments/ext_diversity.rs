//! **Extension: diverse matchers** (paper §V, future work).
//!
//! The paper asks whether *matcher* diversity can offset *sensor*
//! diversity. We run the algorithmically independent Hough baseline next to
//! the pair-table matcher and evaluate the classical fixed fusion rules on
//! the same comparison pairs (the impostor sampling is seed-deterministic,
//! so the two matrices are pairable cell-wise).

use fp_core::ids::DeviceId;
use fp_match::fusion::FusionRule;
use fp_match::{HoughMatcher, MccMatcher};
use fp_stats::roc::ScoreSet;
use serde_json::json;

use crate::report::Report;
use crate::scores::{ScoreMatrix, StudyData};

/// Pools scores into (same-device, cross-device) sets.
fn pooled(scores: &ScoreMatrix) -> (ScoreSet, ScoreSet) {
    (
        ScoreSet::new(scores.dmg(), scores.dmi()),
        ScoreSet::new(scores.ddmg(), scores.ddmi()),
    )
}

/// Pools two matchers' matrices through a fusion rule.
fn pooled_fused(a: &ScoreMatrix, b: &ScoreMatrix, rule: FusionRule) -> (ScoreSet, ScoreSet) {
    let fuse = |xs: &[f64], ys: &[f64]| -> Vec<f64> {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| {
                rule.combine(fp_core::MatchScore::new(x), fp_core::MatchScore::new(y))
                    .value()
            })
            .collect()
    };
    let mut same_g = Vec::new();
    let mut same_i = Vec::new();
    let mut cross_g = Vec::new();
    let mut cross_i = Vec::new();
    for g in 0..5u8 {
        for p in 0..5u8 {
            let (gd, pd) = (DeviceId(g), DeviceId(p));
            let fused_g = fuse(&a.genuine_values(gd, pd), &b.genuine_values(gd, pd));
            let fused_i = fuse(a.impostor_cell(gd, pd), b.impostor_cell(gd, pd));
            if g == p {
                if g != 4 {
                    same_g.extend(fused_g);
                }
                same_i.extend(fused_i);
            } else {
                cross_g.extend(fused_g);
                cross_i.extend(fused_i);
            }
        }
    }
    (
        ScoreSet::new(same_g, same_i),
        ScoreSet::new(cross_g, cross_i),
    )
}

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let hough = ScoreMatrix::compute(&data.dataset, &HoughMatcher::default());
    let mcc = ScoreMatrix::compute(&data.dataset, &MccMatcher::default());

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let (same, cross) = pooled(&data.scores);
    rows.push(("pair-table".into(), same.eer().0, cross.eer().0));
    let (same, cross) = pooled(&hough);
    rows.push(("hough".into(), same.eer().0, cross.eer().0));
    let (same, cross) = pooled(&mcc);
    rows.push(("mcc".into(), same.eer().0, cross.eer().0));
    for rule in FusionRule::ALL {
        let (same, cross) = pooled_fused(&data.scores, &hough, rule);
        rows.push((
            format!("fused({})", rule.label()),
            same.eer().0,
            cross.eer().0,
        ));
    }

    let mut body = format!(
        "{:<18}{:>18}{:>18}\n",
        "matcher", "EER same-device", "EER cross-device"
    );
    for (name, eer_same, eer_cross) in &rows {
        body.push_str(&format!("{name:<18}{eer_same:>18.4}{eer_cross:>18.4}\n"));
    }
    let best_cross = rows
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite EER"))
        .expect("non-empty");
    body.push_str(&format!(
        "\nbest cross-device EER: {} ({:.4})\n\
         cross-device error exceeds same-device error for every single matcher —\n\
         fusion narrows but does not close the interoperability gap\n",
        best_cross.0, best_cross.2
    ));

    Report::new(
        "ext-diversity",
        "Diverse matchers and score fusion (paper §V future work)",
        body,
        json!({
            "rows": rows
                .iter()
                .map(|(n, s, c)| json!({"matcher": n, "eer_same": s, "eer_cross": c}))
                .collect::<Vec<_>>(),
            "best_cross_matcher": best_cross.0,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn all_matchers_and_rules_are_reported() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 7);
    }

    #[test]
    fn eers_are_rates() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            for key in ["eer_same", "eer_cross"] {
                let v = row[key].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&v), "{key} = {v}");
            }
        }
    }

    #[test]
    fn cross_device_is_not_easier_than_same_device() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            let same = row["eer_same"].as_f64().unwrap();
            let cross = row["eer_cross"].as_f64().unwrap();
            assert!(
                cross >= same - 0.02,
                "{}: cross {cross} much better than same {same}",
                row["matcher"]
            );
        }
    }
}
