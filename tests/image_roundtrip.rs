//! End-to-end raster pipeline validation: synthesize an image from a master
//! print, run the full extraction chain, and verify that what comes out
//! still *identifies the finger* — extracted templates must match their own
//! master far better than a different finger's.

use fingerprint_interop::prelude::*;
use fp_core::geometry::Rect;
use fp_core::ids::Digit;
use fp_core::rng::SeedTree;
use fp_image::binarize::adaptive_binarize;
use fp_image::enhance::gabor_enhance;
use fp_image::extract::{extract_minutiae, ExtractConfig};
use fp_image::morphology::clean_skeleton;
use fp_image::orientation::estimate_orientation;
use fp_image::render::{render_master, RenderConfig};
use fp_image::segment::segment;
use fp_image::thin::zhang_suen;
use fp_synth::master::MasterPrint;

const WINDOW_W: f64 = 16.0;
const WINDOW_H: f64 = 20.0;

fn window() -> Rect {
    Rect::centred(Point::ORIGIN, WINDOW_W, WINDOW_H).expect("valid window")
}

fn extract(master: &MasterPrint, seed: u64) -> Template {
    let config = RenderConfig {
        iterations: 4,
        ..RenderConfig::default()
    };
    let image = render_master(master, window(), &config, &SeedTree::new(seed));
    let block = 16;
    let field = estimate_orientation(&image, block);
    let mask = segment(&image, block, 0.25).eroded();
    let enhanced = gabor_enhance(&image, &field, &mask, 9.0);
    let binary = adaptive_binarize(&enhanced, &mask, 6);
    let skeleton = clean_skeleton(&zhang_suen(&binary), 5, 6);
    extract_minutiae(&skeleton, &mask, window(), &ExtractConfig::default())
        .expect("extraction yields a valid template")
}

/// Two independent renders of the same finger (different render noise)
/// must match each other far better than a render of a different finger —
/// the image-domain analogue of a genuine vs impostor comparison. (Matching
/// an extracted template against the *master* template is not meaningful:
/// master minutia polarity is a synthesis convention, while extracted
/// polarity is determined by ridge geometry.)
#[test]
fn extracted_template_identifies_its_finger() {
    let matcher = PairTableMatcher::default();
    let mut genuine_wins = 0;
    for seed in 0..3u64 {
        let master = MasterPrint::generate(&SeedTree::new(1000 + seed), Digit::Index, 1.0);
        let other = MasterPrint::generate(&SeedTree::new(2000 + seed), Digit::Index, 1.0);
        let enrolled = extract(&master, 10 + seed);
        let probe = extract(&master, 20 + seed);
        let impostor_probe = extract(&other, 30 + seed);
        assert!(
            enrolled.len() >= 8,
            "seed {seed}: only {} minutiae",
            enrolled.len()
        );
        let genuine = matcher.compare(&enrolled, &probe).value();
        let impostor = matcher.compare(&enrolled, &impostor_probe).value();
        eprintln!(
            "seed {seed}: enrolled {} / probe {} minutiae, genuine {genuine:.1}, impostor {impostor:.1}",
            enrolled.len(),
            probe.len()
        );
        if genuine > impostor + 2.0 {
            genuine_wins += 1;
        }
    }
    assert!(
        genuine_wins >= 2,
        "image-vs-image matching identified the finger in only {genuine_wins}/3 cases"
    );
}

#[test]
fn extraction_count_is_anatomically_plausible() {
    let master = MasterPrint::generate(&SeedTree::new(3000), Digit::Index, 1.0);
    let extracted = extract(&master, 9);
    // ~0.2 minutiae/mm2 over a 13 x 16 mm window is ~42; extraction noise
    // and the pattern's own singular structure add and remove some.
    assert!(
        (8..=160).contains(&extracted.len()),
        "{} minutiae from a {}x{} mm window",
        extracted.len(),
        WINDOW_W,
        WINDOW_H
    );
}

#[test]
fn orientation_estimation_agrees_with_generating_field() {
    let master = MasterPrint::generate(&SeedTree::new(4000), Digit::Index, 1.0);
    let config = RenderConfig::default();
    let image = render_master(&master, window(), &config, &SeedTree::new(4));
    let field = estimate_orientation(&image, 16);
    // Compare estimated orientation with the generating field at interior
    // probes.
    let pitch = 25.4 / 500.0;
    let mut errors = Vec::new();
    for (mx, my) in [
        (-3.0, -3.0),
        (0.0, 0.0),
        (3.0, 3.0),
        (-3.0, 3.0),
        (3.0, -3.0),
    ] {
        let p = Point::new(mx, my);
        let px = ((mx - window().min().x) / pitch) as usize;
        let py = ((my - window().min().y) / pitch) as usize;
        let estimated = field.orientation_at_pixel(px, py);
        let truth = master.field().orientation_at(p);
        errors.push(estimated.separation(truth));
    }
    // Median rather than mean: a probe landing next to a core/delta sees a
    // legitimate quarter-turn within one estimation block.
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let median_err = errors[errors.len() / 2];
    assert!(
        median_err < 0.3,
        "median orientation error {median_err:.2} rad (errors: {errors:?})"
    );
}

#[test]
fn rendering_quality_survives_the_full_chain_deterministically() {
    let master = MasterPrint::generate(&SeedTree::new(5000), Digit::Index, 1.0);
    let a = extract(&master, 1);
    let b = extract(&master, 1);
    assert_eq!(a, b, "image pipeline is not deterministic");
}
