//! Identifier newtypes for subjects, fingers, sessions, and capture devices.
//!
//! These are deliberately small `Copy` types used as keys throughout the
//! study harness; see `fp-study` for how they index score sets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A study participant. The DSN'13 study had 494 of these.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubjectId(pub u32);

impl fmt::Display for SubjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{:04}", self.0)
    }
}

/// Which hand a finger belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Hand {
    /// The left hand.
    Left,
    /// The right hand.
    Right,
}

/// A digit on a hand, thumb through little finger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Digit {
    /// The thumb.
    Thumb,
    /// The index (pointer) finger — the finger the DSN'13 genuine-score
    /// analysis is based on.
    Index,
    /// The middle finger.
    Middle,
    /// The ring finger.
    Ring,
    /// The little finger.
    Little,
}

impl Digit {
    /// All digits in anatomical order.
    pub const ALL: [Digit; 5] = [
        Digit::Thumb,
        Digit::Index,
        Digit::Middle,
        Digit::Ring,
        Digit::Little,
    ];
}

/// A specific finger of a specific hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Finger {
    /// The hand.
    pub hand: Hand,
    /// The digit.
    pub digit: Digit,
}

impl Finger {
    /// The right index finger — the finger used for the paper's genuine
    /// match-score analysis ("the same user's right point fingers").
    pub const RIGHT_INDEX: Finger = Finger {
        hand: Hand::Right,
        digit: Digit::Index,
    };

    /// Creates a finger identifier.
    pub const fn new(hand: Hand, digit: Digit) -> Self {
        Finger { hand, digit }
    }

    /// All ten fingers, left thumb to right little finger.
    pub fn all() -> impl Iterator<Item = Finger> {
        [Hand::Left, Hand::Right].into_iter().flat_map(|hand| {
            Digit::ALL
                .into_iter()
                .map(move |digit| Finger { hand, digit })
        })
    }

    /// Stable small integer encoding in `0..10`, useful for seed derivation.
    pub fn index(&self) -> u64 {
        let h = match self.hand {
            Hand::Left => 0,
            Hand::Right => 5,
        };
        let d = match self.digit {
            Digit::Thumb => 0,
            Digit::Index => 1,
            Digit::Middle => 2,
            Digit::Ring => 3,
            Digit::Little => 4,
        };
        h + d
    }
}

impl fmt::Display for Finger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hand = match self.hand {
            Hand::Left => "L",
            Hand::Right => "R",
        };
        let digit = match self.digit {
            Digit::Thumb => "thumb",
            Digit::Index => "index",
            Digit::Middle => "middle",
            Digit::Ring => "ring",
            Digit::Little => "little",
        };
        write!(f, "{hand}-{digit}")
    }
}

/// A capture session. The study protocol captured two sets per device per
/// participant; we call these sessions 0 and 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SessionId(pub u8);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session{}", self.0)
    }
}

/// A capture device, indexed as in the paper's Table 1: `D0..D3` are optical
/// live-scan sensors, `D4` is the flat-bed-scanned ink ten-print card.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub u8);

impl DeviceId {
    /// Number of devices in the study (D0–D4).
    pub const COUNT: usize = 5;

    /// All device identifiers in paper order.
    pub const ALL: [DeviceId; 5] = [
        DeviceId(0),
        DeviceId(1),
        DeviceId(2),
        DeviceId(3),
        DeviceId(4),
    ];
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finger_indices_are_distinct_and_dense() {
        let mut seen = [false; 10];
        for finger in Finger::all() {
            let i = finger.index() as usize;
            assert!(i < 10);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(SubjectId(7).to_string(), "S0007");
        assert_eq!(Finger::RIGHT_INDEX.to_string(), "R-index");
        assert_eq!(DeviceId(4).to_string(), "D4");
        assert_eq!(SessionId(1).to_string(), "session1");
    }

    #[test]
    fn device_all_matches_count() {
        assert_eq!(DeviceId::ALL.len(), DeviceId::COUNT);
    }

    #[test]
    fn ids_are_ordered_for_map_keys() {
        assert!(SubjectId(1) < SubjectId(2));
        assert!(DeviceId(0) < DeviceId(4));
    }
}
