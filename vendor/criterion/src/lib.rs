//! Offline vendored stand-in for the `criterion` crate.
//!
//! Keeps the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `Bencher::iter`, `black_box`) but
//! replaces the statistical engine with a simple median-of-samples timer
//! that prints one line per benchmark. Good enough to compare runs by hand;
//! no HTML reports, no outlier analysis.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Criterion
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median time per call across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate cost with a single call.
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));

        // Pick iterations per sample targeting ~20ms, capped for slow bodies.
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = samples[samples.len() / 2];
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        result_ns: f64::NAN,
    };
    f(&mut bencher);
    if bencher.result_ns.is_nan() {
        println!("{name:<60} (no measurement: Bencher::iter not called)");
    } else {
        println!("{name:<60} {}", format_ns(bencher.result_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
