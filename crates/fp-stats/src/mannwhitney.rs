//! Mann–Whitney U test (Wilcoxon rank-sum), used by the extension analyses
//! to compare genuine score distributions between acquisition scenarios.

use crate::special;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyTest {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Normal-approximation z-statistic (tie-corrected variance).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Base-10 log of the p-value (accurate in deep tails).
    pub log10_p: f64,
    /// Common-language effect size: P(X > Y) + 0.5·P(X = Y).
    pub effect_size: f64,
}

/// Runs the two-sided Mann–Whitney U test on independent samples `x` and
/// `y`.
///
/// Returns `None` when either sample is empty or all values are identical
/// (zero variance).
pub fn mann_whitney_u(x: &[f64], y: &[f64]) -> Option<MannWhitneyTest> {
    if x.is_empty() || y.is_empty() {
        return None;
    }
    let nx = x.len() as f64;
    let ny = y.len() as f64;

    // Rank the pooled sample with average ranks for ties.
    let mut pooled: Vec<(f64, bool)> = x
        .iter()
        .map(|&v| (v, true))
        .chain(y.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN in test input"));

    let n = pooled.len();
    let mut rank_sum_x = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let count = (j - i + 1) as f64;
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_x += avg_rank;
            }
        }
        if count > 1.0 {
            tie_term += count * (count * count - 1.0);
        }
        i = j + 1;
    }

    let u = rank_sum_x - nx * (nx + 1.0) / 2.0;
    let mean_u = nx * ny / 2.0;
    let nf = n as f64;
    let var_u = nx * ny / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return None;
    }
    let z = (u - mean_u) / var_u.sqrt();
    Some(MannWhitneyTest {
        u,
        z,
        p_value: special::two_sided_p(z),
        log10_p: special::two_sided_log10_p(z),
        effect_size: u / (nx * ny),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_samples_give_extreme_u_and_small_p() {
        let x: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let t = mann_whitney_u(&x, &y).unwrap();
        assert_eq!(t.u, 900.0); // every x beats every y
        assert!(t.p_value < 1e-9);
        assert!((t.effect_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_give_moderate_p() {
        let x: Vec<f64> = (0..50).map(|i| (i * 2) as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| (i * 2 + 1) as f64).collect();
        let t = mann_whitney_u(&x, &y).unwrap();
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
        assert!((t.effect_size - 0.5).abs() < 0.05);
    }

    #[test]
    fn ties_are_handled_with_average_ranks() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [2.0, 2.0, 4.0, 5.0];
        let t = mann_whitney_u(&x, &y).unwrap();
        assert!((0.0..=16.0).contains(&t.u));
        assert!(t.p_value > 0.0 && t.p_value <= 1.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn swapping_samples_negates_z() {
        let x = [1.0, 5.0, 3.0, 8.0];
        let y = [2.0, 9.0, 4.0, 7.0];
        let a = mann_whitney_u(&x, &y).unwrap();
        let b = mann_whitney_u(&y, &x).unwrap();
        assert!((a.z + b.z).abs() < 1e-9);
        assert!((a.effect_size + b.effect_size - 1.0).abs() < 1e-9);
    }
}
