//! **Extension: user habituation** (paper §V, future work).
//!
//! "Do the quality of the images obtained improve when we compare, say, the
//! first sample obtained from a participant with the last one?" The capture
//! protocol models habituation as experience-dependent pressure control, so
//! this report measures quality by protocol position: session 0 vs session
//! 1 per device, and the first device in the protocol vs the last.

use fp_core::ids::DeviceId;
use serde_json::json;

use crate::report::Report;
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let n = data.dataset.len() as f64;
    let mut rows = Vec::new();
    for d in DeviceId::ALL {
        let (mut q0, mut q1) = (0.0, 0.0);
        for s in 0..data.dataset.len() {
            let caps = data.dataset.captures(fp_core::ids::SubjectId(s as u32), d);
            q0 += caps.gallery_quality.value() as f64;
            q1 += caps.probe_quality.value() as f64;
        }
        rows.push((d, q0 / n, q1 / n));
    }

    let mut body = format!(
        "{:<8}{:>20}{:>20}\n",
        "device", "mean NFIQ session 0", "mean NFIQ session 1"
    );
    for (d, q0, q1) in &rows {
        body.push_str(&format!("{d:<8}{q0:>20.3}{q1:>20.3}\n"));
    }
    let first = rows[0].1; // D0 session 0: the subject's very first capture
    let last_live = rows[3].2; // D3 session 1: the last live-scan capture
    body.push_str(&format!(
        "\nfirst capture of the protocol (D0 s0): mean NFIQ {first:.3}\n\
         last live-scan capture (D3 s1):        mean NFIQ {last_live:.3}\n\
         (lower is better; the habituation model pulls presentation pressure\n\
          toward ideal as the subject gains experience, net of device bias)\n",
    ));

    Report::new(
        "ext-habituation",
        "Image quality by protocol position (paper §V future work)",
        body,
        json!({
            "rows": rows
                .iter()
                .map(|(d, q0, q1)| json!({
                    "device": d.to_string(), "session0": q0, "session1": q1
                }))
                .collect::<Vec<_>>(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn all_devices_reported() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn mean_nfiq_is_in_level_range() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            for key in ["session0", "session1"] {
                let v = row[key].as_f64().unwrap();
                assert!((1.0..=5.0).contains(&v), "{key} = {v}");
            }
        }
    }

    #[test]
    fn habituation_does_not_hurt_within_device() {
        // Session 1 benefits from more experience than session 0 on the
        // same device; allow sampling noise but not systematic regression.
        let r = run(testdata::small());
        let rows = r.values["rows"].as_array().unwrap();
        let regression = rows
            .iter()
            .filter(|row| {
                row["session1"].as_f64().unwrap() > row["session0"].as_f64().unwrap() + 0.4
            })
            .count();
        assert!(regression <= 1, "{regression} devices regressed sharply");
    }
}
