#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests.
# Mirrors .github/workflows/ci.yml so CI never surprises you.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline
run cargo test -q --release --offline --workspace
echo "all checks passed"
