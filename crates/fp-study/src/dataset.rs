//! The study dataset: every impression the protocol collects, with quality
//! levels.

use fp_core::ids::{DeviceId, Finger, SessionId, SubjectId};
use fp_core::Matcher;
use fp_quality::{NfiqLevel, QualityAssessor};
use fp_sensor::{CaptureProtocol, Impression};
use fp_synth::population::{Population, PopulationConfig, Subject};
use fp_telemetry::Telemetry;

use crate::config::StudyConfig;
use crate::parallel::parallel_map_metered;

/// One subject's captures on one device: gallery (session 0) and probe
/// (session 1).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCaptures {
    /// The enrollment impression (session 0).
    pub gallery: Impression,
    /// The verification impression (session 1).
    pub probe: Impression,
    /// NFIQ level of the gallery impression.
    pub gallery_quality: NfiqLevel,
    /// NFIQ level of the probe impression.
    pub probe_quality: NfiqLevel,
}

/// The complete captured dataset of a study run.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: StudyConfig,
    population: Population,
    /// `captures[subject][device]`.
    captures: Vec<Vec<DeviceCaptures>>,
}

impl Dataset {
    /// Captures the full study dataset (parallel across subjects;
    /// deterministic in `config.seed`).
    pub fn generate(config: &StudyConfig) -> Dataset {
        Dataset::generate_with(config, &Telemetry::disabled())
    }

    /// [`Dataset::generate`] with telemetry: records cohort-synthesis wall
    /// time, per-device impression counts, acquisition loss tallies and the
    /// capture stage's thread utilization. The generated dataset is
    /// identical to the uninstrumented one.
    pub fn generate_with(config: &StudyConfig, telemetry: &Telemetry) -> Dataset {
        let population = {
            let _span =
                telemetry.span_with("population", &[("subjects", config.subjects.to_string())]);
            Population::generate(&PopulationConfig::new(config.seed, config.subjects))
        };
        let protocol = CaptureProtocol::with_telemetry(telemetry);
        let assessor = QualityAssessor::default();
        let captures = parallel_map_metered(population.len(), telemetry, "dataset.capture", |i| {
            let subject = &population.subjects()[i];
            let _span = telemetry.span_with("dataset.subject", &[("subject", i.to_string())]);
            DeviceId::ALL
                .iter()
                .map(|&device| {
                    let gallery =
                        protocol.capture(subject, Finger::RIGHT_INDEX, device, SessionId(0));
                    let probe =
                        protocol.capture(subject, Finger::RIGHT_INDEX, device, SessionId(1));
                    let gallery_quality = assessor.assess(&gallery);
                    let probe_quality = assessor.assess(&probe);
                    DeviceCaptures {
                        gallery,
                        probe,
                        gallery_quality,
                        probe_quality,
                    }
                })
                .collect()
        });
        Dataset {
            config: *config,
            population,
            captures,
        }
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The generated cohort.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.captures.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.captures.is_empty()
    }

    /// The captures of `subject` on `device`.
    ///
    /// # Panics
    ///
    /// Panics when the subject or device index is out of range.
    pub fn captures(&self, subject: SubjectId, device: DeviceId) -> &DeviceCaptures {
        &self.captures[subject.0 as usize][device.0 as usize]
    }

    /// Iterates `(subject, device, captures)` over the dataset.
    pub fn iter(&self) -> impl Iterator<Item = (SubjectId, DeviceId, &DeviceCaptures)> {
        self.captures.iter().enumerate().flat_map(|(s, row)| {
            row.iter()
                .enumerate()
                .map(move |(d, c)| (SubjectId(s as u32), DeviceId(d as u8), c))
        })
    }

    /// The subject record behind an id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn subject(&self, id: SubjectId) -> &Subject {
        &self.population.subjects()[id.0 as usize]
    }

    /// Convenience: the calibrated genuine match score of one subject for a
    /// (gallery device, probe device) pair.
    ///
    /// # Panics
    ///
    /// Panics when the subject or device index is out of range.
    pub fn genuine_score<M: Matcher>(
        &self,
        matcher: &M,
        subject: SubjectId,
        gallery_device: DeviceId,
        probe_device: DeviceId,
    ) -> fp_core::MatchScore {
        let gallery = &self.captures(subject, gallery_device).gallery;
        let probe = &self.captures(subject, probe_device).probe;
        self.config
            .calibration
            .apply(matcher.compare(gallery.template(), probe.template()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_match::PairTableMatcher;

    fn tiny() -> Dataset {
        Dataset::generate(&StudyConfig::builder().subjects(6).seed(99).build())
    }

    #[test]
    fn dataset_has_all_cells() {
        let d = tiny();
        assert_eq!(d.len(), 6);
        for s in 0..6u32 {
            for dev in DeviceId::ALL {
                let c = d.captures(SubjectId(s), dev);
                assert_eq!(c.gallery.device(), dev);
                assert_eq!(c.probe.session(), SessionId(1));
            }
        }
        assert_eq!(d.iter().count(), 30);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        for (s, dev, c) in a.iter() {
            assert_eq!(c, b.captures(s, dev));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&StudyConfig::builder().subjects(3).seed(1).build());
        let b = Dataset::generate(&StudyConfig::builder().subjects(3).seed(2).build());
        assert_ne!(
            a.captures(SubjectId(0), DeviceId(0)).gallery,
            b.captures(SubjectId(0), DeviceId(0)).gallery
        );
    }

    #[test]
    fn genuine_score_is_higher_same_device_on_average() {
        let d = Dataset::generate(&StudyConfig::builder().subjects(10).seed(5).build());
        let matcher = PairTableMatcher::default();
        let mut same = 0.0;
        let mut cross = 0.0;
        for s in 0..10u32 {
            same += d
                .genuine_score(&matcher, SubjectId(s), DeviceId(0), DeviceId(0))
                .value();
            cross += d
                .genuine_score(&matcher, SubjectId(s), DeviceId(0), DeviceId(4))
                .value();
        }
        assert!(same > cross, "same {same} vs cross {cross}");
    }
}
