//! End-to-end checks of the telemetry wiring: a miniature study must leave
//! sensible traces in every instrument family, and the deterministic
//! sections of the snapshot must be identical across same-seed runs.

use fp_core::ids::DeviceId;
use fp_sensor::DEVICES;
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;
use fp_telemetry::Telemetry;

const SUBJECTS: usize = 6;
const IMPOSTORS: usize = 20;

fn tiny_config() -> StudyConfig {
    StudyConfig::builder()
        .subjects(SUBJECTS)
        .seed(77)
        .impostors_per_cell(IMPOSTORS)
        .build()
}

#[test]
fn study_records_all_instrument_families() {
    let telemetry = Telemetry::enabled();
    let data = StudyData::generate_with(&tiny_config(), &telemetry);
    let snap = telemetry.snapshot();

    // Every (gallery, probe) device cell gets a non-empty duration histogram
    // covering its genuine and impostor score loops.
    for g in 0..DEVICES.len() {
        for p in 0..DEVICES.len() {
            let name = format!("scores.cell.g{g}p{p}");
            let hist = snap
                .durations
                .get(&name)
                .unwrap_or_else(|| panic!("missing duration {name}"));
            assert_eq!(hist.count, 2, "{name}: genuine + impostor passes");
            assert!(hist.sum > 0, "{name} has zero recorded time");
        }
    }

    // Top-level spans.
    for span in ["study.dataset", "study.dataset.population", "study.scores"] {
        assert!(snap.durations.contains_key(span), "missing span {span}");
    }

    // Comparison counters match the study geometry exactly.
    let cells = (DEVICES.len() * DEVICES.len()) as u64;
    assert_eq!(
        snap.counters["scores.comparisons.genuine"],
        cells * SUBJECTS as u64
    );
    assert_eq!(
        snap.counters["scores.comparisons.impostor"],
        cells * IMPOSTORS as u64
    );
    assert_eq!(
        snap.counters["match.pairtable.comparisons"],
        cells * (SUBJECTS + IMPOSTORS) as u64
    );

    // Per-device impression counts: two sessions per device per subject.
    // D4 (ink) runs one extra capture per subject because its session-1
    // sample is a re-digitization of a freshly re-captured session-0 card.
    for device in DeviceId::ALL {
        let per_subject = if device == DeviceId(4) { 3 } else { 2 };
        assert_eq!(
            snap.counters[&format!("sensor.d{}.impressions", device.0)],
            per_subject * SUBJECTS as u64,
            "device {device}"
        );
    }

    // Synthesis work: the protocol regenerates the master per capture.
    assert!(snap.counters["synth.masters"] >= SUBJECTS as u64);
    assert!(snap.values["synth.minutiae_per_master"].count > 0);
    assert!(snap.values["sensor.minutiae_per_impression"].count > 0);
    assert!(snap.values["match.pairtable.table_entries"].count > 0);

    // Stage records exist and their per-thread item counts add up.
    let stage = |name: &str| {
        snap.stages
            .iter()
            .find(|s| s.stage == name)
            .unwrap_or_else(|| panic!("missing stage {name}"))
    };
    assert_eq!(
        stage("dataset.capture")
            .threads
            .iter()
            .map(|t| t.items)
            .sum::<u64>(),
        SUBJECTS as u64
    );
    assert_eq!(stage("scores.prepare").items, SUBJECTS as u64);
    assert_eq!(stage("scores.genuine").items, cells);
    assert_eq!(stage("scores.impostor").items, cells);
    for s in &snap.stages {
        assert!(s.wall_ns > 0, "stage {} has zero wall time", s.stage);
        for t in &s.threads {
            assert!(
                (0.0..=1.5).contains(&t.utilization),
                "stage {} thread utilization {} out of range",
                s.stage,
                t.utilization
            );
        }
    }

    // The data itself is untouched by instrumentation.
    let plain = StudyData::generate(&tiny_config());
    assert_eq!(
        data.scores.genuine_values(DeviceId(0), DeviceId(4)),
        plain.scores.genuine_values(DeviceId(0), DeviceId(4))
    );
}

#[test]
fn deterministic_sections_are_identical_across_same_seed_runs() {
    let run = || {
        let telemetry = Telemetry::enabled();
        let data = StudyData::generate_with(&tiny_config(), &telemetry);
        (telemetry.snapshot(), data)
    };
    let (a, data_a) = run();
    let (b, data_b) = run();

    // Counters and work-size histograms are pure functions of the seed.
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.values, b.values);

    // And the science output is identical too.
    for g in DeviceId::ALL {
        for p in DeviceId::ALL {
            assert_eq!(
                data_a.scores.genuine_values(g, p),
                data_b.scores.genuine_values(g, p)
            );
            assert_eq!(
                data_a.scores.impostor_cell(g, p),
                data_b.scores.impostor_cell(g, p)
            );
        }
    }
}

#[test]
fn study_trace_is_a_well_formed_tree_with_cell_spans() {
    let telemetry = Telemetry::enabled();
    let wall = std::time::Instant::now();
    let _ = StudyData::generate_with(&tiny_config(), &telemetry);
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let trace = telemetry.trace_snapshot();

    assert_eq!(trace.dropped_spans, 0, "tiny study must fit the buffer");
    trace.validate_tree().expect("span tree is well-formed");

    // One span per device-pair cell and per pass, carrying its attributes.
    for g in 0..DEVICES.len() {
        for p in 0..DEVICES.len() {
            let name = format!("scores.cell.g{g}p{p}");
            let cell_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == name).collect();
            assert_eq!(cell_spans.len(), 2, "{name}: genuine + impostor passes");
            for span in cell_spans {
                let attr = |k: &str| {
                    span.attrs
                        .iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.as_str())
                };
                assert_eq!(attr("gallery"), Some(g.to_string().as_str()));
                assert_eq!(attr("probe"), Some(p.to_string().as_str()));
                assert!(matches!(attr("pass"), Some("genuine" | "impostor")));
            }
        }
    }

    // Self-time attribution telescopes: on every thread, self times sum
    // exactly to that thread's top spans (roots, or spans whose parent ran
    // on another thread), and the root spans cover the pipeline's wall
    // clock to within 5%.
    let total_self: u64 = trace.self_times().values().map(|t| t.self_ns).sum();
    let thread_of: std::collections::BTreeMap<u64, u64> =
        trace.spans.iter().map(|s| (s.id, s.thread)).collect();
    let top_ns: u64 = trace
        .spans
        .iter()
        .filter(|s| match s.parent {
            None => true,
            Some(p) => thread_of.get(&p) != Some(&s.thread),
        })
        .map(|s| s.dur_ns)
        .sum();
    assert_eq!(
        total_self, top_ns,
        "self times must telescope to thread tops"
    );
    let root_ns: u64 = trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.dur_ns)
        .sum();
    assert!(
        root_ns as f64 >= wall_ns as f64 * 0.95 && root_ns <= wall_ns,
        "root spans cover {root_ns} ns of {wall_ns} ns wall clock"
    );
}

#[test]
fn trace_structure_is_deterministic_across_same_seed_runs() {
    // Timestamps vary run to run; the *structure* — which spans exist, with
    // which names and attributes — is a pure function of the seed.
    let run = || {
        let telemetry = Telemetry::enabled();
        let _ = StudyData::generate_with(&tiny_config(), &telemetry);
        let mut shape: Vec<(String, Vec<(String, String)>)> = telemetry
            .trace_snapshot()
            .spans
            .into_iter()
            .map(|s| (s.name, s.attrs))
            .collect();
        shape.sort();
        shape
    };
    assert_eq!(run(), run());
}

#[test]
fn summary_renders_from_a_real_run() {
    let telemetry = Telemetry::enabled();
    let _ = StudyData::generate_with(&tiny_config(), &telemetry);
    let summary = fp_telemetry::render_summary(&telemetry.snapshot());
    assert!(summary.contains("telemetry summary"));
    assert!(summary.contains("scores.comparisons.genuine"));
    assert!(summary.contains("util"));
}
