//! Offline vendored stand-in for `serde_derive`.
//!
//! A dependency-free derive (no `syn`/`quote`: the token stream is walked by
//! hand and the generated impl is assembled as a string) targeting the
//! mini-serde `Content` tree. Supported shapes — everything this workspace
//! derives on:
//!
//! - structs with named fields  → JSON object keyed by field name
//! - newtype structs            → transparent wrapper around the inner value
//! - tuple structs              → JSON array
//! - unit structs               → `null`
//! - enums with unit variants   → variant-name string (discriminants like
//!   `Excellent = 1` are accepted and ignored)
//!
//! Unsupported shapes (generics, data-carrying enum variants, `#[serde]`
//! attributes) panic at expansion time with a clear message, which surfaces
//! as a compile error on the deriving item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the supported shapes above.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Shape::Newtype => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        Shape::Unit => "::serde::Content::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the supported shapes above.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         content.field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::Newtype => "::std::result::Result::Ok(Self(\
                           ::serde::Deserialize::from_content(content)?))"
            .to_string(),
        Shape::Tuple(arity) => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                .collect();
            format!(
                "let items = content.tuple({arity})?;\n\
                 ::std::result::Result::Ok(Self({items}))"
            )
        }
        Shape::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "match content.variant()? {{\n\
                     {arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Struct with named fields, in declaration order.
    Named(Vec<String>),
    /// One-field tuple struct.
    Newtype,
    /// Tuple struct with this many fields (≥ 2).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum whose variants are all unit variants.
    UnitEnum(Vec<String>),
}

fn parse(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes, doc comments and visibility up to the keyword.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break false;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break true;
            }
            Some(_) => i += 1,
            None => panic!("mini serde_derive: no struct or enum found"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("mini serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("mini serde_derive: generic types are not supported ({name})");
        }
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let chunks = split_top_level(g.stream());
            if is_enum {
                Shape::UnitEnum(chunks.iter().map(|c| parse_variant(c, &name)).collect())
            } else {
                Shape::Named(chunks.iter().map(|c| parse_named_field(c, &name)).collect())
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            match split_top_level(g.stream()).len() {
                1 => Shape::Newtype,
                n => Shape::Tuple(n),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => Shape::Unit,
        other => panic!("mini serde_derive: unsupported item body for {name}: {other:?}"),
    };

    Item { name, shape }
}

/// Splits a group's tokens on top-level commas. Commas inside nested groups
/// are invisible (groups are single token trees); commas inside generic
/// arguments are skipped by tracking `<`/`>` depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    if chunks.last().map(Vec::is_empty).unwrap_or(false) {
        chunks.pop(); // trailing comma
    }
    chunks
}

/// Extracts the field name from one named-field chunk:
/// `#[attr]* pub(..)? name: Type`.
fn parse_named_field(chunk: &[TokenTree], item: &str) -> String {
    let mut i = skip_attrs_and_vis(chunk);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => {
            let name = id.to_string();
            i += 1;
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => name,
                other => panic!(
                    "mini serde_derive: expected `:` after field `{name}` in {item}, found {other:?}"
                ),
            }
        }
        other => panic!("mini serde_derive: expected field name in {item}, found {other:?}"),
    }
}

/// Extracts the variant name from one enum-variant chunk:
/// `#[attr]* Name (= discriminant)?`. Data-carrying variants are rejected.
fn parse_variant(chunk: &[TokenTree], item: &str) -> String {
    let i = skip_attrs_and_vis(chunk);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("mini serde_derive: expected variant name in {item}, found {other:?}"),
    };
    match chunk.get(i + 1) {
        None => name,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => name, // discriminant
        Some(TokenTree::Group(_)) => {
            panic!("mini serde_derive: data-carrying variant `{name}` in {item} is not supported")
        }
        other => panic!(
            "mini serde_derive: unexpected token after variant `{name}` in {item}: {other:?}"
        ),
    }
}

/// Returns the index after leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}
