//! The `json!` macro: a tt-muncher following serde_json's structure.

/// Builds a [`Value`](crate::Value) from JSON-like syntax, with Rust
/// expressions allowed in value (and array-element) position.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: munch elements into [$($elems),*] -----

    // Done with trailing comma / done without.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };

    // Next element is a composite or keyword literal.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- objects: munch "key": value pairs into $object -----

    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // Next value is a composite or keyword literal.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Missing value for the last entry — report on `:`.
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        ::std::compile_error!("missing value in json! object entry");
    };
    // Missing colon / misplaced comma.
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        ::std::compile_error!("missing `: value` in json! object entry");
    };

    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- entry points -----

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}
