//! # fp-stats
//!
//! Statistics for biometric evaluation, implemented from scratch on `std`:
//!
//! * [`summary`] — descriptive statistics and quantiles,
//! * [`histogram`] — fixed-bin histograms (the paper's Figures 2–5),
//! * [`roc`] — FMR/FNMR curves, thresholds at fixed FMR, EER (Tables 5–6),
//! * [`kendall`] — Kendall's τ-b rank correlation with log-space p-values
//!   (the paper's Table 4 needs p ≈ 1e-242, far below what naive
//!   `erfc` evaluation can produce),
//! * [`special`] — erf/erfc including asymptotic log-tail evaluation,
//! * [`bootstrap`] — percentile bootstrap confidence intervals,
//! * [`mannwhitney`] — Mann–Whitney U test (used by the extension
//!   analyses).
//!
//! ```
//! use fp_stats::roc::ScoreSet;
//!
//! let scores = ScoreSet::new(vec![20.0, 25.0, 9.0], vec![0.5, 1.0, 2.0, 3.0]);
//! let threshold = scores.threshold_at_fmr(0.25);
//! assert!(scores.fmr_at(threshold) <= 0.25);
//! ```

pub mod bootstrap;
pub mod cmc;
pub mod histogram;
pub mod kendall;
pub mod mannwhitney;
pub mod roc;
pub mod special;
pub mod summary;
