//! SFinGe-style fingerprint image synthesis.
//!
//! The renderer follows the AM-FM fingerprint model: ridges are the level
//! sets of a phase field whose gradient magnitude is the local ridge
//! frequency and whose gradient direction is the normal to the ridge flow;
//! minutiae are spiral phase singularities (Larkin & Fletcher). A closed
//! form for a globally consistent phase does not exist around loop/whorl
//! singularities, so — exactly like SFinGe — we start from a locally
//! consistent initial pattern (carrier phase plus one spiral per master
//! minutia) and make it globally coherent by iterating an oriented bandpass
//! (Gabor) filter tuned to the local orientation and frequency.

use fp_core::geometry::{Point, Rect};
use fp_core::rng::SeedTree;
use fp_synth::master::MasterPrint;
use rand::Rng;

use crate::image::GrayImage;

/// Parameters of the renderer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Output resolution in dots per inch.
    pub dpi: f64,
    /// Number of oriented-filter iterations (3–6 is typically enough).
    pub iterations: usize,
    /// Gabor kernel radius in pixels.
    pub kernel_radius: usize,
    /// Amplitude of the initial noise mixed into the carrier.
    pub seed_noise: f32,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            dpi: 500.0,
            iterations: 5,
            kernel_radius: 6,
            seed_noise: 0.4,
        }
    }
}

/// Renders the window `window` (finger-centred mm coordinates) of a master
/// print into a grey-scale image. Ridges are dark (0), valleys/background
/// light (1).
pub fn render_master(
    master: &MasterPrint,
    window: Rect,
    config: &RenderConfig,
    seed: &SeedTree,
) -> GrayImage {
    let pitch = 25.4 / config.dpi;
    let width = ((window.width() / pitch).round() as usize).max(8);
    let height = ((window.height() / pitch).round() as usize).max(8);
    let to_mm = |x: usize, y: usize| -> Point {
        Point::new(
            window.min().x + (x as f64 + 0.5) * pitch,
            window.min().y + (y as f64 + 0.5) * pitch,
        )
    };

    // --- Initial pattern: carrier + minutiae spirals + noise -------------
    let mut rng = seed.rng();
    let mut field = vec![0.0f32; width * height];
    for y in 0..height {
        for x in 0..width {
            let p = to_mm(x, y);
            if !master.region().contains(&p) {
                continue; // background stays 0 (neutral)
            }
            let orientation = master.field().orientation_at(p);
            let period = master.frequency().period_at(p);
            // Carrier: waves along the local normal. Locally consistent,
            // globally incoherent — the iterations fix that.
            let normal = orientation.radians() + std::f64::consts::FRAC_PI_2;
            let u = p.x * normal.cos() + p.y * normal.sin();
            let mut phase = std::f64::consts::TAU * u / period;
            // One spiral per master minutia; sign alternates with kind so
            // endings and bifurcations perturb the ridge count oppositely.
            for (k, m) in master.minutiae().iter().enumerate() {
                let d2 = m.pos.distance_sq(&p);
                if d2 < 16.0 {
                    let spiral = (p.y - m.pos.y).atan2(p.x - m.pos.x);
                    let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                    // Windowed so each spiral only shapes its neighbourhood.
                    let weight = (-d2 / 6.0).exp();
                    phase += sign * spiral * weight;
                }
            }
            let noise = (rng.gen::<f32>() - 0.5) * 2.0 * config.seed_noise;
            field[y * width + x] = phase.cos() as f32 + noise;
        }
    }
    let mut img = GrayImage::from_data(width, height, field).expect("valid dimensions");

    // --- Iterative oriented filtering -------------------------------------
    let r = config.kernel_radius as isize;
    for _ in 0..config.iterations {
        let mut next = vec![0.0f32; width * height];
        for y in 0..height {
            for x in 0..width {
                let p = to_mm(x, y);
                if !master.region().contains(&p) {
                    continue;
                }
                let orientation = master.field().orientation_at(p);
                let period_px = master.frequency().period_at(p) / pitch;
                let (c, s) = (
                    orientation.radians().cos() as f32,
                    orientation.radians().sin() as f32,
                );
                let freq = std::f32::consts::TAU / period_px as f32;
                // Gabor tuned to (orientation, frequency): smooth along the
                // ridge (u), band-pass across it (v).
                let sigma_u = config.kernel_radius as f32 / 1.8;
                let sigma_v = config.kernel_radius as f32 / 2.6;
                let mut acc = 0.0f32;
                let mut norm = 0.0f32;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let u = dx as f32 * c + dy as f32 * s;
                        let v = -(dx as f32) * s + dy as f32 * c;
                        let w = (-(u * u) / (2.0 * sigma_u * sigma_u)
                            - (v * v) / (2.0 * sigma_v * sigma_v))
                            .exp()
                            * (freq * v).cos();
                        acc += w * img.at_clamped(x as isize + dx, y as isize + dy);
                        norm += w.abs();
                    }
                }
                if norm > 1e-6 {
                    // Soft saturation keeps the pattern binary-ish without
                    // hard clipping.
                    next[y * width + x] = (3.0 * acc / norm).tanh();
                }
            }
        }
        img = GrayImage::from_data(width, height, next).expect("valid dimensions");
    }

    // --- Map to ink convention: ridges dark, background white -------------
    let mut out = vec![1.0f32; width * height];
    for y in 0..height {
        for x in 0..width {
            let p = to_mm(x, y);
            if master.region().contains(&p) {
                out[y * width + x] = 0.5 - 0.5 * img.at(x, y);
            }
        }
    }
    GrayImage::from_data(width, height, out).expect("valid dimensions")
}

/// Marks minutiae positions on a rendered image (in place): endings get a
/// 3x3 dark square with a white centre, bifurcations the inverse. For
/// debugging and documentation renders.
pub fn overlay_minutiae(
    img: &mut GrayImage,
    template: &fp_core::template::Template,
    window: Rect,
    dpi: f64,
) {
    let pitch = 25.4 / dpi;
    for m in template.minutiae() {
        let px = ((m.pos.x - window.min().x) / pitch).round() as isize;
        let py = ((m.pos.y - window.min().y) / pitch).round() as isize;
        let (ring, centre) = match m.kind {
            fp_core::minutia::MinutiaKind::RidgeEnding => (0.0f32, 1.0f32),
            fp_core::minutia::MinutiaKind::Bifurcation => (1.0f32, 0.0f32),
        };
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (x, y) = (px + dx, py + dy);
                if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
                    let value = if dx == 0 && dy == 0 { centre } else { ring };
                    img.set(x as usize, y as usize, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::ids::Digit;
    use fp_core::rng::SeedTree;

    fn small_render(seed: u64) -> (MasterPrint, GrayImage) {
        let master = MasterPrint::generate(&SeedTree::new(seed), Digit::Index, 1.0);
        let window = Rect::centred(Point::ORIGIN, 10.0, 12.0).unwrap();
        let config = RenderConfig {
            iterations: 3,
            ..RenderConfig::default()
        };
        let img = render_master(&master, window, &config, &SeedTree::new(seed ^ 0xF00D));
        (master, img)
    }

    #[test]
    fn renders_expected_dimensions() {
        let (_, img) = small_render(1);
        // 10mm at 500 dpi ≈ 197 px, 12mm ≈ 236 px.
        assert!(
            (img.width() as i64 - 197).abs() <= 1,
            "width {}",
            img.width()
        );
        assert!(
            (img.height() as i64 - 236).abs() <= 1,
            "height {}",
            img.height()
        );
    }

    #[test]
    fn ridge_pattern_has_contrast_inside_region() {
        let (_, img) = small_render(2);
        let (_, var) = img.block_stats(img.width() / 2 - 20, img.height() / 2 - 20, 40, 40);
        assert!(var > 0.05, "central variance {var} too low for ridges");
    }

    #[test]
    fn ridge_period_matches_frequency_map() {
        // Count ridge (dark) runs along the central column: the count should
        // roughly match height / period.
        let (master, img) = small_render(3);
        let pitch = 25.4 / 500.0;
        let period_px = master.frequency().period_at(Point::ORIGIN) / pitch;
        let x = img.width() / 2;
        let mut transitions = 0;
        let mut prev_dark = img.at(x, 10) < 0.5;
        for y in 11..img.height() - 10 {
            let dark = img.at(x, y) < 0.5;
            if dark != prev_dark {
                transitions += 1;
                prev_dark = dark;
            }
        }
        let observed_period = 2.0 * (img.height() as f64 - 20.0) / transitions.max(1) as f64;
        assert!(
            observed_period > period_px * 0.5 && observed_period < period_px * 2.0,
            "observed period {observed_period} px, expected ≈ {period_px} px"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let (_, a) = small_render(4);
        let (_, b) = small_render(4);
        assert_eq!(a, b);
    }

    #[test]
    fn overlay_marks_minutiae_pixels() {
        use fp_core::geometry::Direction;
        use fp_core::minutia::{Minutia, MinutiaKind};
        use fp_core::template::Template;
        let mut img = GrayImage::filled(100, 100, 0.5).unwrap();
        let window = Rect::centred(Point::ORIGIN, 5.08, 5.08).unwrap(); // 100 px at 500 dpi
        let t = Template::builder(500.0)
            .capture_window(window)
            .push(Minutia::new(
                Point::ORIGIN,
                Direction::ZERO,
                MinutiaKind::RidgeEnding,
                1.0,
            ))
            .build()
            .unwrap();
        overlay_minutiae(&mut img, &t, window, 500.0);
        // Ending: white centre, dark ring.
        assert_eq!(img.at(50, 50), 1.0);
        assert_eq!(img.at(49, 50), 0.0);
        assert_eq!(img.at(51, 51), 0.0);
    }

    #[test]
    fn background_is_white() {
        // Render a window bigger than the finger pad so the corners fall on
        // background.
        let master = MasterPrint::generate(&SeedTree::new(5), Digit::Index, 1.0);
        let window = Rect::centred(Point::ORIGIN, 30.0, 34.0).unwrap();
        let config = RenderConfig {
            iterations: 1,
            ..RenderConfig::default()
        };
        let img = render_master(&master, window, &config, &SeedTree::new(55));
        assert_eq!(img.at(0, 0), 1.0);
        assert_eq!(img.at(img.width() - 1, img.height() - 1), 1.0);
    }
}
