//! # fp-image
//!
//! The raster image substrate: fingerprint image synthesis and the classic
//! minutiae-extraction pipeline, implemented from scratch.
//!
//! The DSN'13 study worked on raster fingerprint images (Table 1 lists the
//! pixel dimensions of every device); minutiae only exist after an
//! extraction pipeline has run. This crate provides both directions:
//!
//! * **synthesis** ([`render`]): an SFinGe-style iterative oriented-filter
//!   renderer that turns a ridge model (orientation field + frequency map +
//!   master minutiae) into a grey-scale ridge image;
//! * **analysis**: the standard extraction chain —
//!   [`orientation`] estimation via structure tensors, [`segment`]ation,
//!   [`enhance`]ment with oriented Gabor filters, adaptive [`binarize`]
//!   -ation, Zhang–Suen [`thin`]ning, and crossing-number minutiae
//!   [`extract`]ion back to an `fp_core` [`Template`](fp_core::template::Template).
//!
//! The large-scale score study runs on the template-domain fast path (see
//! `DESIGN.md`); this crate exists so the full image pipeline is real,
//! testable, and benchmarked — the `image_pipeline` example and the
//! round-trip integration tests drive a print from ridge model to image and
//! back.

pub mod binarize;
pub mod enhance;
pub mod extract;
pub mod filter;
pub mod image;
pub mod morphology;
pub mod normalize;
pub mod orientation;
pub mod pgm;
pub mod quality_map;
pub mod render;
pub mod segment;
pub mod thin;

pub use image::GrayImage;
