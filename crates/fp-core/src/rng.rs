//! Deterministic random-number utilities.
//!
//! The whole study must be reproducible from a single `u64` seed. To avoid
//! correlated streams we never reuse an RNG across logical entities; instead
//! every (subject, finger, device, session, …) coordinate derives its own
//! independent seed via a SplitMix64-based mixing chain, and each stream is a
//! ChaCha8 generator (fast, high quality, identical output on every
//! platform).
//!
//! ```
//! use fp_core::rng::SeedTree;
//! use rand::Rng;
//!
//! let root = SeedTree::new(42);
//! let mut a = root.child(&[1, 2, 3]).rng();
//! let mut b = root.child(&[1, 2, 4]).rng();
//! let (x, y): (u64, u64) = (a.gen(), b.gen());
//! assert_ne!(x, y); // sibling streams are decorrelated
//! ```

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The stream RNG used throughout the workspace.
pub type StreamRng = ChaCha8Rng;

/// One round of the SplitMix64 output function — a strong 64-bit mixer.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a tag into a seed, producing a new decorrelated seed.
#[inline]
pub fn mix(seed: u64, tag: u64) -> u64 {
    // Two mixing rounds with distinct constants prevent the common
    // "mix(mix(s, a), b) == mix(mix(s, b), a)" collision pattern.
    splitmix64(splitmix64(seed ^ tag.wrapping_mul(0xD6E8_FEB8_6659_FD93)).wrapping_add(tag))
}

/// A node in a deterministic seed-derivation tree.
///
/// Children are addressed by `u64` tag paths; the same path always yields the
/// same seed, different paths yield (with overwhelming probability) unrelated
/// seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Creates the root of a seed tree.
    pub const fn new(seed: u64) -> Self {
        SeedTree { seed }
    }

    /// The raw seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the child node at the given tag path.
    pub fn child(&self, path: &[u64]) -> SeedTree {
        let mut s = self.seed;
        for (depth, &tag) in path.iter().enumerate() {
            // Fold the depth in so that [a, b] != [b, a] and [a] != [a, 0].
            s = mix(s, tag ^ (depth as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            s = mix(s, 0x2545_F491_4F6C_DD1D);
        }
        SeedTree { seed: s }
    }

    /// Creates the deterministic stream RNG for this node.
    pub fn rng(&self) -> StreamRng {
        let mut key = [0u8; 32];
        let mut s = self.seed;
        for chunk in key.chunks_exact_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        StreamRng::from_seed(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_path_same_seed() {
        let root = SeedTree::new(7);
        assert_eq!(root.child(&[1, 2]).seed(), root.child(&[1, 2]).seed());
    }

    #[test]
    fn path_order_matters() {
        let root = SeedTree::new(7);
        assert_ne!(root.child(&[1, 2]).seed(), root.child(&[2, 1]).seed());
    }

    #[test]
    fn trailing_zero_tag_changes_seed() {
        let root = SeedTree::new(7);
        assert_ne!(root.child(&[5]).seed(), root.child(&[5, 0]).seed());
    }

    #[test]
    fn child_seeds_have_no_obvious_collisions() {
        let root = SeedTree::new(123_456_789);
        let mut seen = HashSet::new();
        for a in 0..40u64 {
            for b in 0..40u64 {
                assert!(
                    seen.insert(root.child(&[a, b]).seed()),
                    "collision at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let root = SeedTree::new(99);
        let mut r1 = root.child(&[4]).rng();
        let mut r2 = root.child(&[4]).rng();
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "low diffusion: {:064b}", a ^ b);
    }

    #[test]
    fn sibling_streams_look_independent() {
        let root = SeedTree::new(5);
        let mut a = root.child(&[1]).rng();
        let mut b = root.child(&[2]).rng();
        let matches = (0..1000)
            .filter(|_| a.gen::<bool>() == b.gen::<bool>())
            .count();
        // Binomial(1000, 0.5): 6 sigma is ~95.
        assert!((matches as i64 - 500).abs() < 120, "matches = {matches}");
    }
}
