//! # fp-match
//!
//! From-scratch minutiae matchers standing in for the proprietary Identix
//! BioEngine SDK used in the DSN'13 study.
//!
//! Two independent matcher families are provided:
//!
//! * [`PairTableMatcher`] — the primary matcher, in the **Bozorth3** family:
//!   rotation- and translation-invariant intra-template *pair tables*
//!   (inter-minutia distance plus the two angles each minutia direction makes
//!   with the connecting line), inter-template compatibility association,
//!   rotation-consistency clustering, and greedy extraction of a one-to-one
//!   correspondence set.
//! * [`HoughMatcher`] — a classical generalized-Hough alignment baseline:
//!   vote for the rigid transform, align, pair by nearest neighbour under
//!   tolerance.
//!
//! Raw scores are mapped onto the paper's commercial-matcher scale (impostor
//! scores essentially never above 7, genuine scores mostly well above 10) by
//! [`ScoreCalibration`]; [`fusion`] adds the multi-matcher combination rules
//! used by the paper's "diverse matchers" future-work analysis.
//!
//! ```
//! use fp_core::{Matcher, template::Template};
//! use fp_match::PairTableMatcher;
//!
//! # fn main() -> Result<(), fp_core::Error> {
//! let matcher = PairTableMatcher::default();
//! let empty = Template::builder(500.0).build()?;
//! assert_eq!(matcher.compare(&empty, &empty).value(), 0.0);
//! # Ok(())
//! # }
//! ```

pub mod calibrate;
pub mod fusion;
pub mod hough;
pub mod mcc;
pub mod metrics;
pub mod pairtable;

pub use calibrate::ScoreCalibration;
pub use hough::{HoughConfig, HoughMatcher};
pub use mcc::{MccConfig, MccMatcher, PreparedCylinders};
pub use pairtable::{PairFeature, PairTableConfig, PairTableMatcher, PreparedPairTable};

use fp_core::template::Template;
use fp_core::MatchScore;

/// Matchers that can pre-process a template once and reuse the preparation
/// across many comparisons.
///
/// The study harness compares every gallery template against hundreds of
/// probes; preparing pair tables once per template cuts the dominant
/// quadratic set-up cost out of the inner loop.
pub trait PreparableMatcher: fp_core::Matcher {
    /// The pre-processed form of a template.
    type Prepared: Send + Sync;

    /// Pre-processes a template.
    fn prepare(&self, template: &Template) -> Self::Prepared;

    /// Compares two pre-processed templates; must equal
    /// `self.compare(gallery, probe)` on the originating templates.
    fn compare_prepared(&self, gallery: &Self::Prepared, probe: &Self::Prepared) -> MatchScore;
}
