//! Offline vendored stand-in for the `rand_core` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny subset of `rand_core` 0.6 it actually uses.
//! The trait semantics (including the `seed_from_u64` PCG32 expansion) are
//! kept identical to upstream so that any generator seeded through these
//! traits produces bit-identical streams to the real crates.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically `[u8; N]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance seeded with `seed`.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance seeded from a `u64`, expanding the state with
    /// a PCG32 stream exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let xb = x.to_le_bytes();
            chunk.copy_from_slice(&xb[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy([u8; 32]);

    impl SeedableRng for Dummy {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            Dummy(seed)
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let a = Dummy::seed_from_u64(1).0;
        let b = Dummy::seed_from_u64(1).0;
        let c = Dummy::seed_from_u64(2).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 32]);
    }
}
