//! Test configuration, case errors and the deterministic RNG.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A small deterministic RNG (SplitMix64) seeded from the test name, so
/// every run of a test samples the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply bound (tiny bias is irrelevant for test input
        // generation).
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}
