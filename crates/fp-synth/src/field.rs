//! Ridge orientation fields.
//!
//! Loops, whorls and tented arches use the **Sherlock–Monro zero-pole
//! model**: the orientation at a point `z` in the complex plane is
//!
//! ```text
//! theta(z) = theta_bg + 1/2 * [ sum_cores arg(z - c_i) - sum_deltas arg(z - d_j) ]
//! ```
//!
//! Cores are zeros and deltas are poles of the underlying quadratic
//! differential; the 1/2 factor produces the half-integral Poincaré indices
//! characteristic of fingerprint singularities. Plain arches have no
//! singularities and use a smooth analytic arch flow instead.
//!
//! A low-frequency sinusoidal perturbation de-idealizes the field so no two
//! fingers are exactly alike even within a class.

use rand::Rng;

use fp_core::dist;
use fp_core::geometry::{Orientation, Point};

use crate::pattern::PatternClass;

/// One low-frequency sinusoidal perturbation component of the field.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ripple {
    amplitude: f64,
    fx: f64,
    fy: f64,
    phase: f64,
}

impl Ripple {
    fn eval(&self, p: Point) -> f64 {
        self.amplitude * (self.fx * p.x + self.fy * p.y + self.phase).cos()
    }
}

/// The underlying analytic model of the field.
#[derive(Debug, Clone, PartialEq)]
enum FieldModel {
    /// Smooth singular-point-free arch flow.
    Arch {
        /// Peak ridge slope (radians) at the flanks of the arch.
        amplitude: f64,
        /// Horizontal scale of the flanks (mm).
        width: f64,
        /// Height of the arch crest (mm above pad centre).
        crest_y: f64,
        /// Vertical decay scale (mm).
        sigma: f64,
    },
    /// Sherlock–Monro zero-pole field.
    ZeroPole {
        cores: Vec<Point>,
        deltas: Vec<Point>,
        /// Far-field background orientation (radians).
        background: f64,
    },
}

/// A continuous ridge-flow orientation field over the finger pad.
#[derive(Debug, Clone, PartialEq)]
pub struct OrientationField {
    model: FieldModel,
    ripples: Vec<Ripple>,
}

impl OrientationField {
    /// Builds the orientation field for a pattern class, with per-finger
    /// randomness in singularity placement and perturbation drawn from `rng`.
    pub fn generate<R: Rng + ?Sized>(class: PatternClass, rng: &mut R) -> Self {
        let jitter = |rng: &mut R, sd: f64| dist::normal(rng, 0.0, sd);
        let model = match class {
            PatternClass::Arch => FieldModel::Arch {
                amplitude: dist::truncated_normal(rng, 0.45, 0.08, 0.2, 0.8),
                width: dist::truncated_normal(rng, 6.0, 1.0, 3.5, 9.0),
                crest_y: jitter(rng, 1.5),
                sigma: dist::truncated_normal(rng, 7.0, 1.0, 4.0, 10.0),
            },
            PatternClass::TentedArch => {
                let x = jitter(rng, 0.8);
                FieldModel::ZeroPole {
                    cores: vec![Point::new(x, 0.8 + jitter(rng, 0.7))],
                    deltas: vec![Point::new(x + jitter(rng, 0.5), -4.5 + jitter(rng, 0.8))],
                    background: jitter(rng, 0.05),
                }
            }
            PatternClass::LeftLoop => FieldModel::ZeroPole {
                cores: vec![Point::new(-0.8 + jitter(rng, 0.8), 1.8 + jitter(rng, 0.9))],
                deltas: vec![Point::new(4.5 + jitter(rng, 1.0), -5.5 + jitter(rng, 1.0))],
                background: jitter(rng, 0.05),
            },
            PatternClass::RightLoop => FieldModel::ZeroPole {
                cores: vec![Point::new(0.8 + jitter(rng, 0.8), 1.8 + jitter(rng, 0.9))],
                deltas: vec![Point::new(-4.5 + jitter(rng, 1.0), -5.5 + jitter(rng, 1.0))],
                background: jitter(rng, 0.05),
            },
            PatternClass::Whorl => {
                let spread = 1.0 + jitter(rng, 0.25).abs();
                FieldModel::ZeroPole {
                    cores: vec![
                        Point::new(-spread + jitter(rng, 0.3), 1.5 + jitter(rng, 0.6)),
                        Point::new(spread + jitter(rng, 0.3), 1.2 + jitter(rng, 0.6)),
                    ],
                    deltas: vec![
                        Point::new(-5.0 + jitter(rng, 0.8), -5.5 + jitter(rng, 0.8)),
                        Point::new(5.0 + jitter(rng, 0.8), -5.5 + jitter(rng, 0.8)),
                    ],
                    background: jitter(rng, 0.05),
                }
            }
        };
        let ripples = (0..3)
            .map(|_| Ripple {
                amplitude: dist::truncated_normal(rng, 0.06, 0.02, 0.0, 0.15),
                fx: dist::normal(rng, 0.0, 0.25),
                fy: dist::normal(rng, 0.0, 0.25),
                phase: rng.gen::<f64>() * std::f64::consts::TAU,
            })
            .collect();
        OrientationField { model, ripples }
    }

    /// The ridge-flow orientation at a point of the pad.
    pub fn orientation_at(&self, p: Point) -> Orientation {
        let base = match &self.model {
            FieldModel::Arch {
                amplitude,
                width,
                crest_y,
                sigma,
            } => {
                // Ridges run mostly horizontally; they slope up on the left
                // flank and down on the right, with the effect decaying away
                // from the crest line.
                let lateral = -(p.x / width).tanh();
                let vertical = (-((p.y - crest_y) / sigma).powi(2)).exp();
                amplitude * lateral * vertical
            }
            FieldModel::ZeroPole {
                cores,
                deltas,
                background,
            } => {
                let mut theta = *background;
                for c in cores {
                    theta += 0.5 * (p.y - c.y).atan2(p.x - c.x);
                }
                for d in deltas {
                    theta -= 0.5 * (p.y - d.y).atan2(p.x - d.x);
                }
                theta
            }
        };
        let ripple: f64 = self.ripples.iter().map(|r| r.eval(p)).sum();
        Orientation::from_radians(base + ripple)
    }

    /// The positions of core singular points (empty for plain arches).
    pub fn cores(&self) -> &[Point] {
        match &self.model {
            FieldModel::Arch { .. } => &[],
            FieldModel::ZeroPole { cores, .. } => cores,
        }
    }

    /// The positions of delta singular points (empty for plain arches).
    pub fn deltas(&self) -> &[Point] {
        match &self.model {
            FieldModel::Arch { .. } => &[],
            FieldModel::ZeroPole { deltas, .. } => deltas,
        }
    }

    /// Poincaré index of the field around a closed circular path, in
    /// half-turns. A core contributes +1/2, a delta −1/2; this is the
    /// standard singularity detector used to validate the field.
    pub fn poincare_index(&self, centre: Point, radius: f64, samples: usize) -> f64 {
        assert!(samples >= 8, "need at least 8 samples on the circle");
        let mut total = 0.0;
        let mut prev = self
            .orientation_at(Point::new(centre.x + radius, centre.y))
            .radians();
        for i in 1..=samples {
            let angle = std::f64::consts::TAU * i as f64 / samples as f64;
            let p = Point::new(
                centre.x + radius * angle.cos(),
                centre.y + radius * angle.sin(),
            );
            let cur = self.orientation_at(p).radians();
            let mut delta = cur - prev;
            // Orientations live on [0, pi): unwrap modulo pi.
            while delta > std::f64::consts::FRAC_PI_2 {
                delta -= std::f64::consts::PI;
            }
            while delta < -std::f64::consts::FRAC_PI_2 {
                delta += std::f64::consts::PI;
            }
            total += delta;
            prev = cur;
        }
        total / std::f64::consts::PI
    }
}

/// The type of a detected singular point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingularityKind {
    /// Poincaré index +1/2.
    Core,
    /// Poincaré index −1/2.
    Delta,
}

/// A singular point detected in an orientation field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Singularity {
    /// Estimated position (grid-cell centre).
    pub position: Point,
    /// Core or delta.
    pub kind: SingularityKind,
}

impl OrientationField {
    /// Detects singular points by scanning the Poincaré index over a grid —
    /// the standard detector applied to *any* orientation field, ground
    /// truth or estimated. Grid cells whose index magnitude exceeds 0.25
    /// half-turns are clustered (adjacent detections merge to their
    /// centroid).
    ///
    /// `bounds` limits the scan; `step` is the grid pitch in mm.
    pub fn detect_singularities(
        &self,
        bounds: fp_core::geometry::Rect,
        step: f64,
    ) -> Vec<Singularity> {
        assert!(step > 0.0, "step must be positive");
        let mut raw: Vec<(Point, SingularityKind)> = Vec::new();
        let mut y = bounds.min().y + step / 2.0;
        while y < bounds.max().y {
            let mut x = bounds.min().x + step / 2.0;
            while x < bounds.max().x {
                let p = Point::new(x, y);
                let idx = self.poincare_index(p, step * 0.6, 48);
                if idx > 0.25 {
                    raw.push((p, SingularityKind::Core));
                } else if idx < -0.25 {
                    raw.push((p, SingularityKind::Delta));
                }
                x += step;
            }
            y += step;
        }
        // Cluster adjacent detections of the same kind (within 2 steps).
        let mut clusters: Vec<(Point, SingularityKind, usize)> = Vec::new();
        for (p, kind) in raw {
            if let Some((centre, _, count)) = clusters
                .iter_mut()
                .find(|(c, k, _)| *k == kind && c.distance(&p) < 2.0 * step)
            {
                let n = *count as f64;
                *centre = Point::new(
                    (centre.x * n + p.x) / (n + 1.0),
                    (centre.y * n + p.y) / (n + 1.0),
                );
                *count += 1;
            } else {
                clusters.push((p, kind, 1));
            }
        }
        clusters
            .into_iter()
            .map(|(position, kind, _)| Singularity { position, kind })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::rng::SeedTree;

    fn field(class: PatternClass, seed: u64) -> OrientationField {
        let mut rng = SeedTree::new(seed)
            .child(&[class.core_count() as u64])
            .rng();
        OrientationField::generate(class, &mut rng)
    }

    #[test]
    fn loop_core_has_positive_half_index() {
        for seed in 0..5 {
            let f = field(PatternClass::LeftLoop, seed);
            let core = f.cores()[0];
            let idx = f.poincare_index(core, 1.0, 720);
            assert!((idx - 1.0).abs() < 0.15, "seed {seed}: index {idx}");
        }
    }

    #[test]
    fn loop_delta_has_negative_half_index() {
        for seed in 0..5 {
            let f = field(PatternClass::RightLoop, seed);
            let delta = f.deltas()[0];
            let idx = f.poincare_index(delta, 1.0, 720);
            assert!((idx + 1.0).abs() < 0.15, "seed {seed}: index {idx}");
        }
    }

    #[test]
    fn whorl_has_two_cores_two_deltas() {
        let f = field(PatternClass::Whorl, 3);
        assert_eq!(f.cores().len(), 2);
        assert_eq!(f.deltas().len(), 2);
    }

    #[test]
    fn arch_field_is_singularity_free() {
        let f = field(PatternClass::Arch, 4);
        assert!(f.cores().is_empty());
        assert!(f.deltas().is_empty());
        // Poincaré index around any point should be ~0.
        for (x, y) in [(0.0, 0.0), (2.0, 3.0), (-3.0, -2.0)] {
            let idx = f.poincare_index(Point::new(x, y), 1.5, 720);
            assert!(idx.abs() < 0.1, "index at ({x},{y}) = {idx}");
        }
    }

    #[test]
    fn field_is_smooth_away_from_singularities() {
        let f = field(PatternClass::LeftLoop, 7);
        let p = Point::new(6.0, 6.0);
        let q = Point::new(6.05, 6.0);
        let sep = f.orientation_at(p).separation(f.orientation_at(q));
        assert!(sep < 0.1, "orientation jumped by {sep}");
    }

    #[test]
    fn same_seed_same_field_different_seed_different_field() {
        let a = field(PatternClass::Whorl, 5);
        let b = field(PatternClass::Whorl, 5);
        assert_eq!(a, b);
        let c = field(PatternClass::Whorl, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn detector_finds_the_loop_core_and_delta() {
        use fp_core::geometry::Rect;
        for seed in 0..3 {
            let f = field(PatternClass::LeftLoop, seed);
            let bounds = Rect::centred(Point::new(0.0, -1.0), 22.0, 26.0).unwrap();
            let found = f.detect_singularities(bounds, 1.2);
            let cores: Vec<_> = found
                .iter()
                .filter(|s| s.kind == SingularityKind::Core)
                .collect();
            let deltas: Vec<_> = found
                .iter()
                .filter(|s| s.kind == SingularityKind::Delta)
                .collect();
            assert!(!cores.is_empty(), "seed {seed}: no core found");
            assert!(!deltas.is_empty(), "seed {seed}: no delta found");
            let truth_core = f.cores()[0];
            assert!(
                cores.iter().any(|c| c.position.distance(&truth_core) < 2.5),
                "seed {seed}: detected cores {cores:?} far from truth {truth_core:?}"
            );
        }
    }

    #[test]
    fn detector_is_silent_on_arches() {
        use fp_core::geometry::Rect;
        let f = field(PatternClass::Arch, 5);
        let bounds = Rect::centred(Point::ORIGIN, 18.0, 22.0).unwrap();
        assert!(f.detect_singularities(bounds, 1.2).is_empty());
    }

    #[test]
    fn whorl_has_more_cores_than_loop() {
        use fp_core::geometry::Rect;
        let bounds = Rect::centred(Point::new(0.0, -1.0), 22.0, 26.0).unwrap();
        let whorl = field(PatternClass::Whorl, 8);
        let cores = whorl
            .detect_singularities(bounds, 1.0)
            .into_iter()
            .filter(|s| s.kind == SingularityKind::Core)
            .count();
        assert!(cores >= 1, "whorl cores {cores}");
    }

    #[test]
    fn arch_flanks_slope_toward_the_crest() {
        let f = OrientationField {
            model: FieldModel::Arch {
                amplitude: 0.5,
                width: 6.0,
                crest_y: 0.0,
                sigma: 7.0,
            },
            ripples: Vec::new(),
        };
        // Left flank slopes up (positive orientation), right flank down.
        let left = f.orientation_at(Point::new(-6.0, 0.0)).radians();
        let right = f.orientation_at(Point::new(6.0, 0.0)).radians();
        assert!(left > 0.05 && left < std::f64::consts::FRAC_PI_2);
        assert!(right > std::f64::consts::FRAC_PI_2, "right = {right}");
    }
}
