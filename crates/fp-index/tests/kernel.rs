//! Stage-1 kernel equivalence: the cache-blocked SoA arena kernel must be
//! **byte-identical** to the scalar reference path, not merely close.
//!
//! * Over random packed code sets (random widths, cylinder counts,
//!   sparsity, `lss_depth`), `CodeArena::score_into` must produce bitwise
//!   the same per-entry scores and exactly the same `hamming_ops` count as
//!   the entry-at-a-time scalar reference (`similarity_counted`), which in
//!   turn must equal its scratch-reusing variant.
//! * Mixed-width code sets (templates prepared under different MCC grids)
//!   must follow `hamming`'s excess-word tail rule in both kernels.
//! * On real extracted templates, the enrolled index's blocked scores must
//!   be bitwise reproducible from freshly extracted codes — pinning the
//!   arena packing itself, not just the arithmetic.
//! * `lss_depth == 0` is rejected at config validation with a typed error
//!   (regression: it used to be silently clamped to 1 deep in the kernel).

use fp_core::geometry::{Direction, Point};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{
    CandidateIndex, CodeArena, CylinderCodes, IndexConfig, IndexConfigError, Stage1Scratch,
};
use fp_match::{MccMatcher, PairTableMatcher};
use proptest::prelude::*;
use rand::Rng;

/// A deterministic synthetic template with `n` well-spread minutiae.
fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0xF1]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            MinutiaKind::RidgeEnding,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

/// Builds a code set of `cylinders` cylinders x `words_per` words, drawing
/// words from `pool` (cycling); cylinders at `i % zero_every == 0` are
/// forced all-zero so the mass-0 skip rule is exercised on every case.
fn draw_codes(
    pool: &[u64],
    cursor: &mut usize,
    cylinders: usize,
    words_per: usize,
    zero_every: usize,
) -> CylinderCodes {
    let mut words = Vec::with_capacity(cylinders * words_per);
    let mut ones = Vec::with_capacity(cylinders);
    for i in 0..cylinders {
        let mut set = 0u32;
        for _ in 0..words_per {
            let word = if i % zero_every == 0 {
                0
            } else {
                let w = pool[*cursor % pool.len()];
                *cursor += 1;
                w
            };
            set += word.count_ones();
            words.push(word);
        }
        ones.push(set);
    }
    CylinderCodes::from_raw(words, ones, words_per)
}

/// Scores every arena entry twice — blocked kernel and scalar reference —
/// and asserts bitwise score identity plus exact op-count identity.
fn assert_kernels_agree(
    arena: &CodeArena,
    probe: &CylinderCodes,
    lss_depth: usize,
) -> Result<(), TestCaseError> {
    let mut scratch = Stage1Scratch::new();
    let mut blocked = vec![0.0f64; arena.len()];
    let mut reference = vec![0.0f64; arena.len()];
    let ops_blocked = arena.score_into(probe, lss_depth, &mut scratch, &mut blocked);
    let ops_reference = arena.score_into_reference(probe, lss_depth, &mut scratch, &mut reference);
    prop_assert_eq!(ops_blocked, ops_reference);
    for (i, (b, r)) in blocked.iter().zip(&reference).enumerate() {
        prop_assert_eq!(
            b.to_bits(),
            r.to_bits(),
            "entry {} diverged: blocked {} vs reference {}",
            i,
            b,
            r
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar ≡ blocked over random code sets, widths 1..=9 (exercising
    /// every fixed-lane specialization plus the runtime-width fallback),
    /// random cylinder counts (including empty entries and an empty
    /// probe), random sparsity, and random `lss_depth`.
    #[test]
    fn blocked_kernel_is_byte_identical_to_scalar(
        words_per in 1usize..=9,
        entry_cyls in prop::collection::vec(0usize..10, 1..7),
        probe_cyls in 0usize..10,
        lss_depth in 1usize..20,
        pool in prop::collection::vec(0u64..u64::MAX, 64),
        zero_every in 2usize..5,
    ) {
        let mut cursor = 0usize;
        let mut arena = CodeArena::new();
        let mut entries = Vec::new();
        for &cyls in &entry_cyls {
            let codes = draw_codes(&pool, &mut cursor, cyls, words_per, zero_every);
            arena.push(&codes);
            entries.push(codes);
        }
        let probe = draw_codes(&pool, &mut cursor, probe_cyls, words_per, zero_every);

        assert_kernels_agree(&arena, &probe, lss_depth)?;

        // The reference driver itself must equal the historical per-entry
        // API (allocating and scratch-reusing variants both).
        let mut scratch = Stage1Scratch::new();
        let mut via_arena = vec![0.0f64; arena.len()];
        let mut total_ops = 0u64;
        let ops = arena.score_into(&probe, lss_depth, &mut scratch, &mut via_arena);
        for (entry, &score) in entries.iter().zip(&via_arena) {
            let (s_alloc, ops_alloc) = probe.similarity_counted(entry, lss_depth);
            let (s_scratch, ops_scratch) =
                probe.similarity_counted_scratch(entry, lss_depth, &mut scratch);
            prop_assert_eq!(s_alloc.to_bits(), score.to_bits());
            prop_assert_eq!(s_scratch.to_bits(), score.to_bits());
            prop_assert_eq!(ops_alloc, ops_scratch);
            total_ops += ops_alloc;
        }
        prop_assert_eq!(ops, total_ops, "hamming_ops metering must agree exactly");
    }

    /// Mixed widths: gallery packed under one MCC width, probe under
    /// another. Both kernels must apply the excess-word tail rule and
    /// charge `max(width_p, width_g)` ops per unskipped pair.
    #[test]
    fn mixed_width_codes_agree_between_kernels(
        probe_width in 1usize..=6,
        gallery_width in 1usize..=6,
        entry_cyls in prop::collection::vec(1usize..8, 1..5),
        probe_cyls in 1usize..8,
        lss_depth in 1usize..16,
        pool in prop::collection::vec(0u64..u64::MAX, 64),
        zero_every in 2usize..5,
    ) {
        let mut cursor = 0usize;
        let mut arena = CodeArena::new();
        for &cyls in &entry_cyls {
            arena.push(&draw_codes(&pool, &mut cursor, cyls, gallery_width, zero_every));
        }
        let probe = draw_codes(&pool, &mut cursor, probe_cyls, probe_width, zero_every);
        assert_kernels_agree(&arena, &probe, lss_depth)?;
    }

    /// The `hamming` tail rule itself: excess words of the longer side
    /// count every set bit (an absent word reads as all-zero), and the
    /// distance is symmetric.
    #[test]
    fn hamming_tail_counts_excess_set_bits(
        a in prop::collection::vec(0u64..u64::MAX, 0..7),
        b in prop::collection::vec(0u64..u64::MAX, 0..7),
    ) {
        let common = a.len().min(b.len());
        let expected: u32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum::<u32>()
            + a[common..].iter().map(|w| w.count_ones()).sum::<u32>()
            + b[common..].iter().map(|w| w.count_ones()).sum::<u32>();
        prop_assert_eq!(fp_index::signature::hamming(&a, &b), expected);
        prop_assert_eq!(
            fp_index::signature::hamming(&a, &b),
            fp_index::signature::hamming(&b, &a)
        );
    }

    /// Real extracted templates end to end: the enrolled index's blocked
    /// stage-1 scores must be bitwise reproducible from freshly extracted
    /// cylinder codes — this pins the arena *packing* (enroll-time
    /// `push` order and layout), not just the scoring arithmetic.
    #[test]
    fn enrolled_index_scores_match_fresh_extraction(
        gallery_seed in 0u64..500,
        n in 3usize..9,
        probe_pick in 0usize..9,
    ) {
        let config = IndexConfig::default();
        let templates: Vec<Template> = (0..n)
            .map(|i| synthetic_template(gallery_seed * 1_000 + i as u64, 14 + (i * 7) % 16))
            .collect();
        let mut index = CandidateIndex::with_config(PairTableMatcher::default(), config);
        index.enroll_all(&templates);
        let probe = synthetic_template(gallery_seed ^ 0x5EED, 14 + probe_pick);

        let (blocked, ops_blocked) = index.stage1_cylinder_scores(&probe);
        let (reference, ops_reference) = index.stage1_cylinder_scores_reference(&probe);
        prop_assert_eq!(ops_blocked, ops_reference);
        prop_assert_eq!(blocked.len(), n);

        let mcc = MccMatcher::default();
        let probe_codes = CylinderCodes::extract(&mcc, &probe, config.max_cylinders);
        let mut expected_ops = 0u64;
        for (i, template) in templates.iter().enumerate() {
            let entry_codes = CylinderCodes::extract(&mcc, template, config.max_cylinders);
            let (expected, ops) = probe_codes.similarity_counted(&entry_codes, config.lss_depth);
            prop_assert_eq!(blocked[i].to_bits(), expected.to_bits());
            prop_assert_eq!(reference[i].to_bits(), expected.to_bits());
            expected_ops += ops;
        }
        prop_assert_eq!(ops_blocked, expected_ops);
    }
}

#[test]
fn zero_lss_depth_is_rejected_at_construction() {
    let bad = IndexConfig {
        lss_depth: 0,
        ..IndexConfig::default()
    };
    assert_eq!(bad.validate(), Err(IndexConfigError::ZeroLssDepth));
    let err = match CandidateIndex::try_with_config(PairTableMatcher::default(), bad) {
        Ok(_) => panic!("lss_depth == 0 must be rejected"),
        Err(err) => err,
    };
    assert_eq!(err, IndexConfigError::ZeroLssDepth);
    assert!(err.to_string().contains("lss_depth"));
}

#[test]
#[should_panic(expected = "invalid IndexConfig")]
fn with_config_panics_on_zero_lss_depth() {
    let bad = IndexConfig {
        lss_depth: 0,
        ..IndexConfig::default()
    };
    let _ = CandidateIndex::with_config(PairTableMatcher::default(), bad);
}
