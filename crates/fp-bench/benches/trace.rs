//! Distributed-tracing overhead: the per-request cost of carrying a wire
//! v4 trace context (paid by every sampled cross-process RPC) and the
//! per-drain cost of merging a shard's span records into the coordinator's
//! snapshot. Both sit on paths whose budget is owned elsewhere — the RPC
//! hot path and the trace-collection epilogue — so they live in the
//! committed baseline next to the `wire_*` groups they tax.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::synthetic_gallery;
use fp_serve::{decode_frame, encode_frame, Frame, TraceContext};
use fp_telemetry::{SpanRecord, TraceSnapshot, LOCAL_PID, REMOTE_PARENT_ATTR};

/// A traced stage-1 request: what every sampled RPC pays on the wire.
fn traced_stage1() -> Frame {
    let (_, probe) = synthetic_gallery(1);
    Frame::StageOne {
        probe,
        trace: Some(TraceContext {
            trace_id: 0x5EED_1234_ABCD_0042,
            parent_span_id: 0x0000_7777_0000_0001,
            sampled: true,
        }),
    }
}

/// One shard's drain worth of span records: a `server.request` root with a
/// remote-parent attribute plus its `server.queue_wait` child, repeated —
/// the exact shape `merge_remote` re-parents and re-lanes.
fn remote_spans(requests: u64) -> Vec<SpanRecord> {
    let mut spans = Vec::with_capacity(2 * requests as usize);
    for i in 0..requests {
        spans.push(SpanRecord {
            id: 2 * i + 1,
            parent: None,
            name: "server.request".to_string(),
            pid: LOCAL_PID,
            thread: i % 4,
            start_ns: 1_000 * i,
            dur_ns: 800,
            attrs: vec![
                ("trace_id".to_string(), "42".to_string()),
                (REMOTE_PARENT_ATTR.to_string(), (100 + i).to_string()),
            ],
        });
        spans.push(SpanRecord {
            id: 2 * i + 2,
            parent: Some(2 * i + 1),
            name: "server.queue_wait".to_string(),
            pid: LOCAL_PID,
            thread: i % 4,
            start_ns: 1_000 * i,
            dur_ns: 90,
            attrs: Vec::new(),
        });
    }
    spans
}

/// The local spans the drain merges into: one rpc span per request, ids
/// matching the remote-parent attributes above.
fn local_snapshot(requests: u64) -> TraceSnapshot {
    TraceSnapshot {
        spans: (0..requests)
            .map(|i| SpanRecord {
                id: 100 + i,
                parent: None,
                name: "serve.rpc".to_string(),
                pid: LOCAL_PID,
                thread: i % 4,
                start_ns: 1_000 * i,
                dur_ns: 1_200,
                attrs: Vec::new(),
            })
            .collect(),
        events: Vec::new(),
        dropped_spans: 0,
        dropped_events: 0,
    }
}

fn trace_benches(c: &mut Criterion) {
    let frame = traced_stage1();
    let bytes = encode_frame(&frame);
    let mut group = c.benchmark_group("serve");
    group.bench_function("trace_context_encode_decode", |b| {
        b.iter(|| {
            let encoded = encode_frame(black_box(&frame));
            black_box(decode_frame(black_box(&encoded)).expect("valid frame"))
        })
    });
    group.finish();
    assert!(bytes.len() > 18, "traced frame carries the context section");

    const REQUESTS: u64 = 200;
    let base = local_snapshot(REQUESTS);
    let drained = remote_spans(REQUESTS);
    let mut group = c.benchmark_group("trace");
    group.bench_function("merge_remote_spans", |b| {
        b.iter(|| {
            let mut merged = base.clone();
            let n = merged.merge_remote(black_box(0), black_box(drained.clone()), 12_345, 0);
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, trace_benches);
criterion_main!(benches);
