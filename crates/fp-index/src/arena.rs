//! Structure-of-arrays code arena: the cache-blocked stage-1 kernel.
//!
//! The scalar stage-1 path scored one gallery entry at a time through a
//! per-entry [`CylinderCodes`] box — every entry a separate heap
//! allocation, every cylinder fetched through slice dispatch, and a fresh
//! `Vec` of local bests allocated per entry per probe. At 10k-gallery
//! scale the search spends its time in allocator traffic and cache misses
//! instead of popcounts.
//!
//! [`CodeArena`] restructures the gallery side as one structure of arrays,
//! packed at enroll time:
//!
//! * `words`  — every entry's cylinder words, entry-major then
//!   cylinder-major, one contiguous little-endian `u64` slab;
//! * `ones`   — the per-cylinder set-bit counts, in the same order;
//! * `spans`  — per-entry `(word_off, ones_off, cylinders, words_per)`,
//!   so entries extracted under different MCC widths coexist.
//!
//! Scoring a probe against the whole gallery walks the slab once, in
//! blocks of entries sized to fit [`BLOCK_BYTES`] of packed words
//! (≈ half an L1d), so the probe's own codes and the current gallery block
//! stay cache-resident while the hardware prefetcher streams the slab.
//! The block boundary is a pure scheduling boundary: per-entry scores are
//! pure functions of (probe, entry), so blocking cannot change a byte of
//! the result — the same invariant that makes sharded search exact
//! (shard.rs).
//!
//! Inside a block, the common case — probe and entry packed at the same
//! width — dispatches to a width-specialized kernel
//! ([`best_rows_fixed`]): the XOR+popcount reduction runs over a fixed
//! `[u64; W]` lane array, fully unrolled by the compiler. That lane loop
//! is the single seam where `std::simd` (or a `target_feature` AVX-512
//! `VPOPCNTQ` path) drops in later without touching any surrounding
//! logic. Mismatched widths fall back to the same excess-word-tail
//! semantics as [`crate::signature::hamming`].
//!
//! **Byte identity, argued once:** for one (probe, entry) pair both
//! kernels visit probe cylinders in index order, reduce over gallery
//! cylinders in index order with the identical skip rule (combined
//! set-bit mass zero ⇒ no ops, no compare), compute the identical
//! `1 - hamming/mass` expression (u32 adds are associative, so lane
//! order cannot change `hamming`), clamp the identical depth, sort the
//! identically-ordered bests with the identical comparator, and sum the
//! identical prefix left to right. Every float op therefore executes in
//! the same order on the same operands. `tests/kernel.rs` pins this with
//! a proptest equivalence suite over random code sets, widths and
//! depths; `study check-kernel` re-proves it on every CI run against the
//! enrolled index.

use crate::signature::{
    hamming, reference_similarity, sort_bests_desc, CodeView, CylinderCodes, Stage1Scratch,
};

/// Running max of `1 - distance/mass` over one probe cylinder's row,
/// updated with almost no float ops: alongside the f64 `best` it tracks
/// the winning `(distance, mass)` pair, and a candidate only reaches the
/// float path when its **exact rational** `d/m` is strictly below the
/// incumbent's (integer cross-multiplication). That filter is lossless:
/// `d/m >= d_b/m_b` exactly implies `fl(d/m) >= fl(d_b/m_b)` (correctly
/// rounded division is monotone) implies `fl(1 - fl(d/m)) <= fl(1 -
/// fl(d_b/m_b)) = best` (rounded subtraction is antitone), so the skipped
/// candidate could never have won the original `sim > best` compare. The
/// float compare is kept on the survivors, so the stored `best` is
/// bit-for-bit the value the reference kernel computes. The initial
/// sentinel `(d, m) = (1, 1)` *is* `best = 0.0` (`1 - 1/1`), making the
/// first filter test `d < m` — exactly `sim > 0.0` for these small
/// integers.
#[derive(Clone, Copy)]
struct RowBest {
    best: f64,
    d: u64,
    m: u64,
}

impl RowBest {
    #[inline(always)]
    fn new() -> RowBest {
        RowBest {
            best: 0.0,
            d: 1,
            m: 1,
        }
    }

    #[inline(always)]
    fn offer(&mut self, distance: u32, mass: u32) {
        if u64::from(distance) * self.m < self.d * u64::from(mass) {
            let sim = 1.0 - f64::from(distance) / f64::from(mass);
            if sim > self.best {
                self.best = sim;
                self.d = u64::from(distance);
                self.m = u64::from(mass);
            }
        }
    }
}

/// Packed-word budget per scoring block: 32 KiB of gallery words, so a
/// block plus the probe's own codes (≤ `max_cylinders * words_per * 8`
/// bytes, ~1 KiB at the defaults) fits comfortably in L1d.
pub const BLOCK_BYTES: usize = 32 * 1024;

/// Where one entry's codes live inside the arena.
#[derive(Debug, Clone, Copy)]
struct EntrySpan {
    word_off: usize,
    ones_off: usize,
    cylinders: usize,
    words_per: usize,
}

/// One contiguous structure-of-arrays slab of every enrolled entry's
/// packed cylinder codes, plus the blocked stage-1 scoring kernel over it.
#[derive(Debug, Clone, Default)]
pub struct CodeArena {
    words: Vec<u64>,
    ones: Vec<u32>,
    spans: Vec<EntrySpan>,
}

impl CodeArena {
    /// An empty arena.
    pub fn new() -> CodeArena {
        CodeArena::default()
    }

    /// Number of packed entries.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no entries are packed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Bytes of packed cylinder words (the slab the kernel streams).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The packed word slab, entry-major then cylinder-major — the raw
    /// persistence view `fp-store` serializes as little-endian `u64`s.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// The per-cylinder set-bit counts, in slab order.
    pub fn raw_ones(&self) -> &[u32] {
        &self.ones
    }

    /// Per-entry `(cylinders, words_per)` in entry order. The word and
    /// ones offsets are *not* part of the persistence surface: entries are
    /// packed back-to-back, so offsets are the running sums of these two
    /// quantities and [`from_raw_parts`](Self::from_raw_parts) recomputes
    /// them — a segment cannot claim overlapping or out-of-order spans.
    pub fn raw_spans(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.spans
            .iter()
            .map(|s| (s.cylinders as u32, s.words_per as u32))
    }

    /// Rebuilds an arena from its raw parts (the inverse of the `raw_*`
    /// accessors), recomputing cumulative offsets and validating the
    /// invariants both scoring kernels rely on before constructing
    /// anything: the spans must tile `words` and `ones` exactly (no gap,
    /// no overhang, no overflow), and every `ones` count must equal its
    /// cylinder's actual popcount (the mass-zero skip rule reads it as
    /// truth). Violations come back as a typed description, never a panic.
    pub fn from_raw_parts(
        words: Vec<u64>,
        ones: Vec<u32>,
        spans: &[(u32, u32)],
    ) -> Result<CodeArena, String> {
        let mut word_off = 0usize;
        let mut ones_off = 0usize;
        let mut built = Vec::with_capacity(spans.len());
        for (at, &(cylinders, words_per)) in spans.iter().enumerate() {
            let (cylinders, words_per) = (cylinders as usize, words_per as usize);
            let entry_words = cylinders
                .checked_mul(words_per)
                .ok_or_else(|| format!("span {at} overflows the word count"))?;
            built.push(EntrySpan {
                word_off,
                ones_off,
                cylinders,
                words_per,
            });
            word_off = word_off
                .checked_add(entry_words)
                .ok_or_else(|| format!("span {at} overflows the slab"))?;
            ones_off = ones_off
                .checked_add(cylinders)
                .ok_or_else(|| format!("span {at} overflows the ones array"))?;
        }
        if word_off != words.len() {
            return Err(format!(
                "spans cover {word_off} words but the slab holds {}",
                words.len()
            ));
        }
        if ones_off != ones.len() {
            return Err(format!(
                "spans cover {ones_off} cylinders but ones holds {}",
                ones.len()
            ));
        }
        for span in &built {
            for c in 0..span.cylinders {
                let base = span.word_off + c * span.words_per;
                let actual: u32 = words[base..base + span.words_per]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum();
                if ones[span.ones_off + c] != actual {
                    return Err(format!(
                        "ones[{}] is {} but its cylinder popcount is {actual}",
                        span.ones_off + c,
                        ones[span.ones_off + c]
                    ));
                }
            }
        }
        Ok(CodeArena {
            words,
            ones,
            spans: built,
        })
    }

    /// Appends one entry's codes to the slab. Entries keep their append
    /// order: entry `i` here is gallery entry `i` of the owning index.
    pub fn push(&mut self, codes: &CylinderCodes) {
        let view = codes.view();
        self.spans.push(EntrySpan {
            word_off: self.words.len(),
            ones_off: self.ones.len(),
            cylinders: view.len(),
            words_per: view.words_per(),
        });
        self.words.extend_from_slice(view.words);
        self.ones.extend_from_slice(view.ones);
    }

    /// A borrowed view of entry `i`'s codes.
    pub fn entry(&self, i: usize) -> CodeView<'_> {
        let span = self.spans[i];
        CodeView {
            words: &self.words[span.word_off..span.word_off + span.cylinders * span.words_per],
            ones: &self.ones[span.ones_off..span.ones_off + span.cylinders],
            words_per: span.words_per,
        }
    }

    /// The blocked kernel: local-similarity-sort scores of `probe` against
    /// **every** packed entry, written to `out[i]` (which must hold
    /// exactly [`len`](Self::len) slots). Returns the packed-`u64` Hamming
    /// word comparisons performed — the exact quantity
    /// `index.search.hamming_ops` meters, byte-identical to summing the
    /// scalar reference over every entry.
    pub fn score_into(
        &self,
        probe: &CylinderCodes,
        lss_depth: usize,
        scratch: &mut Stage1Scratch,
        out: &mut [f64],
    ) -> u64 {
        assert_eq!(out.len(), self.spans.len(), "out must cover every entry");
        let pv = probe.view();
        if pv.is_empty() {
            out.fill(0.0);
            return 0;
        }
        let mut word_ops = 0u64;
        let mut begin = 0usize;
        while begin < self.spans.len() {
            // Grow the block until the next entry's words would overflow
            // the cache budget (always at least one entry per block).
            let mut end = begin;
            let mut block_bytes = 0usize;
            while end < self.spans.len() {
                let span = &self.spans[end];
                let entry_bytes = span.cylinders * span.words_per * std::mem::size_of::<u64>();
                if end > begin && block_bytes + entry_bytes > BLOCK_BYTES {
                    break;
                }
                block_bytes += entry_bytes;
                end += 1;
            }
            for (i, slot) in out.iter_mut().enumerate().take(end).skip(begin) {
                *slot = self.score_entry(&pv, i, lss_depth, scratch, &mut word_ops);
            }
            begin = end;
        }
        word_ops
    }

    /// The scalar reference over the same arena: entry-at-a-time
    /// [`reference_similarity`], sharing one scratch (so reference and
    /// blocked kernels are benchmarked on equal allocator footing).
    /// `study check-kernel` and the proptest equivalence suite hold
    /// [`score_into`](Self::score_into) byte-identical to this.
    pub fn score_into_reference(
        &self,
        probe: &CylinderCodes,
        lss_depth: usize,
        scratch: &mut Stage1Scratch,
        out: &mut [f64],
    ) -> u64 {
        assert_eq!(out.len(), self.spans.len(), "out must cover every entry");
        let pv = probe.view();
        let mut word_ops = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let (score, ops) = reference_similarity(&pv, &self.entry(i), lss_depth, scratch);
            *slot = score;
            word_ops += ops;
        }
        word_ops
    }

    /// Scores one entry: dispatch to the width-specialized lane kernel
    /// when probe and entry share a width, otherwise the mixed-width tail
    /// path.
    fn score_entry(
        &self,
        probe: &CodeView<'_>,
        i: usize,
        lss_depth: usize,
        scratch: &mut Stage1Scratch,
        word_ops: &mut u64,
    ) -> f64 {
        let span = self.spans[i];
        if span.cylinders == 0 {
            return 0.0;
        }
        let gw = &self.words[span.word_off..span.word_off + span.cylinders * span.words_per];
        let go = &self.ones[span.ones_off..span.ones_off + span.cylinders];
        let bests = &mut scratch.bests;
        bests.clear();
        if span.words_per == probe.words_per && span.words_per > 0 {
            // Width-specialized lanes for every width the default MCC
            // grids produce (8x8x5 cells => 5 words); rare widths take the
            // runtime-width equal path, still tail-free.
            match span.words_per {
                1 => best_rows_fixed::<1>(probe, gw, go, bests, word_ops),
                2 => best_rows_fixed::<2>(probe, gw, go, bests, word_ops),
                3 => best_rows_fixed::<3>(probe, gw, go, bests, word_ops),
                4 => best_rows_fixed::<4>(probe, gw, go, bests, word_ops),
                5 => best_rows_fixed::<5>(probe, gw, go, bests, word_ops),
                6 => best_rows_fixed::<6>(probe, gw, go, bests, word_ops),
                7 => best_rows_fixed::<7>(probe, gw, go, bests, word_ops),
                8 => best_rows_fixed::<8>(probe, gw, go, bests, word_ops),
                w => best_rows_equal(probe, gw, go, w, bests, word_ops),
            }
        } else {
            best_rows_mixed(probe, gw, go, span.words_per, bests, word_ops);
        }
        let depth = probe.len().min(span.cylinders).min(lss_depth).max(1);
        sort_bests_desc(bests);
        bests[..depth].iter().sum::<f64>() / depth as f64
    }
}

/// Equal-width rows with the width a compile-time constant: dispatches
/// the unrolled lane body to a hardware-`popcnt` compilation when the CPU
/// has the instruction (the build baseline is plain x86-64, where
/// `count_ones()` otherwise lowers to a ~12-op bit-twiddling sequence per
/// word — the single largest cost in the whole kernel). Population count
/// is an exact integer op, so both compilations are bit-identical; other
/// architectures take the portable body, where `count_ones()` already
/// lowers well (e.g. AArch64 `CNT`).
fn best_rows_fixed<const W: usize>(
    probe: &CodeView<'_>,
    gallery_words: &[u64],
    gallery_ones: &[u32],
    bests: &mut Vec<f64>,
    word_ops: &mut u64,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: the `popcnt` target feature was just runtime-verified.
        unsafe { best_rows_fixed_popcnt::<W>(probe, gallery_words, gallery_ones, bests, word_ops) }
        return;
    }
    best_rows_fixed_body::<W>(probe, gallery_words, gallery_ones, bests, word_ops)
}

/// [`best_rows_fixed_body`] compiled with the `popcnt` instruction
/// available, so every `count_ones()` in the inlined lane loop lowers to
/// one `POPCNT`.
///
/// # Safety
///
/// Callers must have verified the CPU supports `popcnt`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn best_rows_fixed_popcnt<const W: usize>(
    probe: &CodeView<'_>,
    gallery_words: &[u64],
    gallery_ones: &[u32],
    bests: &mut Vec<f64>,
    word_ops: &mut u64,
) {
    best_rows_fixed_body::<W>(probe, gallery_words, gallery_ones, bests, word_ops)
}

/// The XOR + popcount reduction over `[u64; W]` lane arrays, fully
/// unrolled. **This loop is the `std::simd` seam** — swap the
/// `for k in 0..W` body for a `Simd<u64, W>` XOR and a vectorized
/// popcount and nothing outside this function changes (u32 lane adds are
/// associative, so the reduction order is free).
#[inline(always)]
fn best_rows_fixed_body<const W: usize>(
    probe: &CodeView<'_>,
    gallery_words: &[u64],
    gallery_ones: &[u32],
    bests: &mut Vec<f64>,
    word_ops: &mut u64,
) {
    for (pw, &po) in probe.words.chunks_exact(W).zip(probe.ones) {
        let pw: &[u64; W] = pw.try_into().expect("probe chunk is W words");
        let mut row = RowBest::new();
        for (gw, &go) in gallery_words.chunks_exact(W).zip(gallery_ones) {
            let mass = po + go;
            if mass == 0 {
                continue;
            }
            *word_ops += W as u64;
            let gw: &[u64; W] = gw.try_into().expect("gallery chunk is W words");
            let mut distance = 0u32;
            for k in 0..W {
                distance += (pw[k] ^ gw[k]).count_ones();
            }
            row.offer(distance, mass);
        }
        bests.push(row.best);
    }
}

/// Equal-width rows with a runtime width (widths > 8, which no shipping
/// MCC grid produces but `from_raw` permits).
fn best_rows_equal(
    probe: &CodeView<'_>,
    gallery_words: &[u64],
    gallery_ones: &[u32],
    width: usize,
    bests: &mut Vec<f64>,
    word_ops: &mut u64,
) {
    for (pw, &po) in probe.words.chunks_exact(width).zip(probe.ones) {
        let mut row = RowBest::new();
        for (gw, &go) in gallery_words.chunks_exact(width).zip(gallery_ones) {
            let mass = po + go;
            if mass == 0 {
                continue;
            }
            *word_ops += width as u64;
            row.offer(hamming(pw, gw), mass);
        }
        bests.push(row.best);
    }
}

/// Mixed-width rows: probe and entry were packed under different MCC
/// grids. Per pair, the excess words of the wider side count every set
/// bit ([`hamming`]'s tail rule) and the op meter charges the wider
/// width — exactly the scalar reference semantics.
fn best_rows_mixed(
    probe: &CodeView<'_>,
    gallery_words: &[u64],
    gallery_ones: &[u32],
    gallery_width: usize,
    bests: &mut Vec<f64>,
    word_ops: &mut u64,
) {
    let charged = probe.words_per.max(gallery_width) as u64;
    for i in 0..probe.len() {
        let (pw, po) = probe.cylinder(i);
        let mut row = RowBest::new();
        for (j, &go) in gallery_ones.iter().enumerate() {
            let mass = po + go;
            if mass == 0 {
                continue;
            }
            *word_ops += charged;
            let gw = &gallery_words[j * gallery_width..(j + 1) * gallery_width];
            row.offer(hamming(pw, gw), mass);
        }
        bests.push(row.best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Codes with explicit raw words (ones derived), one cylinder per row.
    fn raw_codes(rows: &[&[u64]], words_per: usize) -> CylinderCodes {
        let mut words = Vec::new();
        let mut ones = Vec::new();
        for row in rows {
            assert_eq!(row.len(), words_per);
            words.extend_from_slice(row);
            ones.push(row.iter().map(|w| w.count_ones()).sum());
        }
        CylinderCodes::from_raw(words, ones, words_per)
    }

    #[test]
    fn arena_scores_match_reference_on_handmade_codes() {
        let a = raw_codes(&[&[0b1011, 0x55], &[0xFF00, 0x0F]], 2);
        let b = raw_codes(&[&[0b1001, 0x54], &[0, 0]], 2);
        let probe = raw_codes(&[&[0b1111, 0xAA], &[0, 0]], 2);
        let mut arena = CodeArena::new();
        arena.push(&a);
        arena.push(&b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.packed_bytes(), 2 * 2 * 2 * 8);

        let mut scratch = Stage1Scratch::new();
        let mut blocked = vec![0.0; 2];
        let mut reference = vec![0.0; 2];
        let ops_b = arena.score_into(&probe, 2, &mut scratch, &mut blocked);
        let ops_r = arena.score_into_reference(&probe, 2, &mut scratch, &mut reference);
        assert_eq!(blocked, reference);
        assert_eq!(ops_b, ops_r);
        // Entry b's second cylinder and the probe's second cylinder are
        // both all-zero: that one pair has mass 0 and must be skipped
        // unpriced; every other pair (7 of 8) charges words_per = 2.
        assert_eq!(ops_b, 7 * 2);
    }

    #[test]
    fn empty_probe_and_empty_entries_score_zero() {
        let empty = CylinderCodes::from_raw(Vec::new(), Vec::new(), 0);
        let some = raw_codes(&[&[1, 2, 3]], 3);
        let mut arena = CodeArena::new();
        arena.push(&empty);
        arena.push(&some);

        let mut scratch = Stage1Scratch::new();
        let mut out = vec![9.0; 2];
        assert_eq!(arena.score_into(&empty, 4, &mut scratch, &mut out), 0);
        assert_eq!(out, vec![0.0, 0.0]);

        let mut out = vec![9.0; 2];
        let ops = arena.score_into(&some, 4, &mut scratch, &mut out);
        assert_eq!(out[0], 0.0, "empty entry scores zero");
        assert_eq!(out[1], 1.0, "self-similarity is one");
        assert_eq!(ops, 3);
    }

    #[test]
    fn mixed_width_entries_use_the_tail_rule() {
        // Gallery packed at width 1, probe at width 2: the probe's excess
        // word counts all its set bits against every gallery cylinder.
        let gallery = raw_codes(&[&[0b1011]], 1);
        let probe = raw_codes(&[&[0b1011, 0xF0]], 2);
        let mut arena = CodeArena::new();
        arena.push(&gallery);

        let mut scratch = Stage1Scratch::new();
        let mut out = vec![0.0; 1];
        let ops = arena.score_into(&probe, 1, &mut scratch, &mut out);
        assert_eq!(ops, 2, "mixed pairs charge the wider width");
        let mass = 3.0 + 4.0 + 3.0; // probe ones + gallery ones
        assert_eq!(out[0], 1.0 - 4.0 / mass);
        let mut reference = vec![0.0; 1];
        let ops_r = arena.score_into_reference(&probe, 1, &mut scratch, &mut reference);
        assert_eq!(out, reference);
        assert_eq!(ops, ops_r);
    }

    #[test]
    fn raw_parts_round_trip_and_reject_hostile_shapes() {
        let a = raw_codes(&[&[0b1011, 0x55], &[0xFF00, 0x0F]], 2);
        let b = raw_codes(&[&[!0u64], &[0], &[0xF0F0]], 1);
        let mut arena = CodeArena::new();
        arena.push(&a);
        arena.push(&b);

        let spans: Vec<(u32, u32)> = arena.raw_spans().collect();
        assert_eq!(spans, vec![(2, 2), (3, 1)]);
        let rebuilt = CodeArena::from_raw_parts(
            arena.raw_words().to_vec(),
            arena.raw_ones().to_vec(),
            &spans,
        )
        .unwrap();
        assert_eq!(rebuilt.raw_words(), arena.raw_words());
        assert_eq!(rebuilt.raw_ones(), arena.raw_ones());
        let probe = raw_codes(&[&[0b1111, 0xAA]], 2);
        let mut scratch = Stage1Scratch::new();
        let (mut out_a, mut out_b) = (vec![0.0; 2], vec![0.0; 2]);
        let ops_a = arena.score_into(&probe, 2, &mut scratch, &mut out_a);
        let ops_b = rebuilt.score_into(&probe, 2, &mut scratch, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(ops_a, ops_b);

        // Hostile shapes: spans that under- or over-cover the slab, wrong
        // popcounts, and multiplications that overflow all come back as
        // errors, never panics.
        let words = arena.raw_words().to_vec();
        let ones = arena.raw_ones().to_vec();
        assert!(CodeArena::from_raw_parts(words.clone(), ones.clone(), &[(2, 2)]).is_err());
        assert!(
            CodeArena::from_raw_parts(words.clone(), ones.clone(), &[(2, 2), (3, 1), (1, 1)])
                .is_err()
        );
        let mut bad_ones = ones.clone();
        bad_ones[0] ^= 1;
        assert!(CodeArena::from_raw_parts(words.clone(), bad_ones, &spans).is_err());
        assert!(
            CodeArena::from_raw_parts(words, ones, &[(u32::MAX, u32::MAX), (u32::MAX, 2)]).is_err()
        );
        assert!(CodeArena::from_raw_parts(Vec::new(), Vec::new(), &[]).is_ok());
    }

    /// Fowler–Noll–Vo 1a over a byte stream — a stable digest for the
    /// golden-layout test below, independent of everything else in the
    /// workspace.
    fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// **Golden layout pin.** `fp-store` serializes the arena's raw parts
    /// verbatim (words as little-endian `u64`s), so any change to how
    /// [`CylinderCodes::extract`] binarizes or how [`CodeArena::push`]
    /// packs — bit order within a word, cylinder order, words-per-cylinder,
    /// the mean-threshold tie rule, the reliability-ranked minutia cut —
    /// silently invalidates every already-written segment. This test pins
    /// the exact packed bytes for a fixed template; if it fails, DO NOT
    /// update the constants in place: bump `fp-store`'s `SEGMENT_VERSION`
    /// first so old segments are rejected as unsupported instead of being
    /// decoded under the new layout, then re-pin.
    #[test]
    fn packed_layout_is_pinned_for_persistence() {
        use fp_core::geometry::{Direction, Point};
        use fp_core::minutia::{Minutia, MinutiaKind};
        use fp_core::rng::SeedTree;
        use fp_core::template::Template;
        use fp_match::MccMatcher;
        use rand::Rng;

        let mut rng = SeedTree::new(0x90_1D).child(&[0x60]).rng();
        let mut minutiae = Vec::new();
        while minutiae.len() < 30 {
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae
                .iter()
                .any(|m: &Minutia| m.pos.distance(&pos) < 1.4)
            {
                continue;
            }
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                if rng.gen::<bool>() {
                    MinutiaKind::RidgeEnding
                } else {
                    MinutiaKind::Bifurcation
                },
                rng.gen::<f64>(),
            ));
        }
        let template = Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .unwrap();

        let codes = CylinderCodes::extract(&MccMatcher::default(), &template, 24);
        let mut arena = CodeArena::new();
        arena.push(&codes);

        let spans: Vec<(u32, u32)> = arena.raw_spans().collect();
        assert_eq!(spans, vec![(GOLDEN_CYLINDERS, GOLDEN_WORDS_PER)]);
        assert_eq!(
            fnv1a(arena.raw_words().iter().flat_map(|w| w.to_le_bytes())),
            GOLDEN_WORDS_FNV,
            "packed word bytes changed — bump the fp-store segment version"
        );
        assert_eq!(
            fnv1a(arena.raw_ones().iter().flat_map(|o| o.to_le_bytes())),
            GOLDEN_ONES_FNV,
            "popcount bytes changed — bump the fp-store segment version"
        );
        assert_eq!(&arena.raw_words()[..4], GOLDEN_FIRST_WORDS);
    }

    const GOLDEN_CYLINDERS: u32 = 22;
    const GOLDEN_WORDS_PER: u32 = 5;
    const GOLDEN_WORDS_FNV: u64 = 0x3e57_7bf4_5f22_a40b;
    const GOLDEN_ONES_FNV: u64 = 0x7b39_0d84_d8e2_f892;
    const GOLDEN_FIRST_WORDS: &[u64] = &[
        943_200_256,
        247_256_852_256_768,
        105_968_666_935_296,
        137_975_824_384,
    ];

    #[test]
    fn blocks_split_large_arenas_without_changing_scores() {
        // Enough width-3 entries that the 32 KiB block budget forces
        // several blocks: 8 cylinders x 3 words x 8 B = 192 B per entry,
        // so 600 entries span > 3 blocks.
        let mut arena = CodeArena::new();
        let mut entries = Vec::new();
        for e in 0..600u64 {
            let rows: Vec<Vec<u64>> = (0..8)
                .map(|c| {
                    (0..3)
                        .map(|w| (e + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ (c * 31 + w)))
                        .collect()
                })
                .collect();
            let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
            entries.push(raw_codes(&refs, 3));
        }
        for codes in &entries {
            arena.push(codes);
        }
        assert!(arena.packed_bytes() > 3 * BLOCK_BYTES);

        let probe = entries[17].clone();
        let mut scratch = Stage1Scratch::new();
        let mut blocked = vec![0.0; arena.len()];
        let mut reference = vec![0.0; arena.len()];
        let ops_b = arena.score_into(&probe, 5, &mut scratch, &mut blocked);
        let ops_r = arena.score_into_reference(&probe, 5, &mut scratch, &mut reference);
        assert_eq!(ops_b, ops_r);
        assert_eq!(blocked, reference);
        assert_eq!(blocked[17], 1.0);
    }
}
