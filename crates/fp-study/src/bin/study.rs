//! The study driver: regenerates every table and figure of Lugini et al.
//! (DSN 2013) on the synthetic substrate.
//!
//! ```sh
//! study all                         # every experiment at the default scale
//! study table5 --subjects 494      # one experiment at paper scale
//! study all --json results.json    # machine-readable output
//! study devices                    # print the device table (paper Table 1)
//! study verify --subjects 150      # check the paper's findings hold
//! study render --seed 7 --json out.pgm   # render a synthetic print (PGM)
//! ```

use std::process::ExitCode;

use fp_sensor::DEVICES;
use fp_study::config::StudyConfig;
use fp_study::experiments;
use fp_study::scores::StudyData;

struct Args {
    experiment: String,
    subjects: Option<usize>,
    seed: Option<u64>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().unwrap_or_else(|| "all".to_string());
    let mut parsed = Args {
        experiment,
        subjects: None,
        seed: None,
        json: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--subjects" => {
                let v = args.next().ok_or("--subjects needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --subjects: {v}"))?;
                if n < 2 {
                    return Err(format!(
                        "--subjects must be at least 2 (genuine and impostor pairs both need subjects), got {n}"
                    ));
                }
                parsed.subjects = Some(n);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = Some(v.parse().map_err(|_| format!("bad --seed: {v}"))?);
            }
            "--json" => {
                parsed.json = Some(args.next().ok_or("--json needs a path")?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(parsed)
}

fn print_devices() {
    println!("devices (paper Table 1):");
    println!(
        "{:<6}{:<42}{:>8}{:>12}{:>14}",
        "id", "model", "dpi", "image px", "capture mm"
    );
    for d in &DEVICES {
        println!(
            "{:<6}{:<42}{:>8}{:>12}{:>14}",
            d.id.to_string(),
            d.model,
            d.resolution_dpi,
            format!("{}x{}", d.image_px.0, d.image_px.1),
            format!("{}x{}", d.capture_mm.0, d.capture_mm.1),
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: study <all|devices|{}> [--subjects N] [--seed S] [--json PATH]",
                experiments::ALL_IDS.join("|"));
            return ExitCode::FAILURE;
        }
    };

    if args.experiment == "devices" {
        print_devices();
        return ExitCode::SUCCESS;
    }

    if args.experiment == "render" {
        // Render one synthetic fingerprint with its master minutiae marked,
        // to the path given via --json (reused as the output path).
        let seed = args.seed.unwrap_or(7);
        let path = args.json.clone().unwrap_or_else(|| "fingerprint.pgm".to_string());
        let master = fp_synth::master::MasterPrint::generate(
            &fp_core::rng::SeedTree::new(seed),
            fp_core::ids::Digit::Index,
            1.0,
        );
        let window =
            fp_core::geometry::Rect::centred(fp_core::geometry::Point::ORIGIN, 18.0, 22.0)
                .expect("valid window");
        let config = fp_image::render::RenderConfig::default();
        eprintln!(
            "rendering {} print (seed {seed}) at 500 dpi ...",
            master.class()
        );
        let mut image = fp_image::render::render_master(
            &master,
            window,
            &config,
            &fp_core::rng::SeedTree::new(seed ^ 0x9E37),
        );
        let template = fp_core::template::Template::builder(500.0)
            .capture_window(window)
            .extend(
                master
                    .minutiae()
                    .iter()
                    .filter(|m| window.contains(&m.pos))
                    .copied(),
            )
            .build()
            .expect("valid template");
        fp_image::render::overlay_minutiae(&mut image, &template, window, 500.0);
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fp_image::pgm::write_pgm(&image, file) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path}: {}x{} px, {} master minutiae marked",
            image.width(),
            image.height(),
            template.len()
        );
        return ExitCode::SUCCESS;
    }

    if args.experiment == "verify" {
        let mut builder = StudyConfig::builder();
        if let Some(s) = args.subjects {
            builder = builder.subjects(s);
        }
        if let Some(s) = args.seed {
            builder = builder.seed(s);
        }
        let config = builder.build();
        eprintln!(
            "verifying paper findings on {} subjects (seed {}) ...",
            config.subjects, config.seed
        );
        let data = StudyData::generate(&config);
        let findings = fp_study::findings::check_all(&data);
        let (report, all_hold) = fp_study::findings::render(&findings);
        println!("{report}");
        if let Some(path) = args.json {
            let payload = serde_json::json!({"config": config, "findings": findings});
            if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&payload).expect("serializable")) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return if all_hold {
            println!("all findings hold");
            ExitCode::SUCCESS
        } else {
            println!("SOME FINDINGS FAILED (small cohorts are noisy; try --subjects 150+)");
            ExitCode::FAILURE
        };
    }

    let mut builder = StudyConfig::builder();
    if let Some(s) = args.subjects {
        builder = builder.subjects(s);
    }
    if let Some(s) = args.seed {
        builder = builder.seed(s);
    }
    let config = builder.build();
    eprintln!(
        "generating study data: {} subjects, {} impostor pairs per cell, seed {} ...",
        config.subjects, config.impostors_per_cell, config.seed
    );
    let start = std::time::Instant::now();
    let data = StudyData::generate(&config);
    eprintln!("score matrices ready in {:.1?}", start.elapsed());

    let reports = if args.experiment == "all" {
        experiments::run_all(&data)
    } else {
        match experiments::run(&args.experiment, &data) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown experiment `{}` (known: all, devices, {})",
                    args.experiment,
                    experiments::ALL_IDS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        println!("{}", report.render());
    }

    if let Some(path) = args.json {
        let payload = serde_json::json!({
            "config": config,
            "reports": reports,
        });
        match std::fs::write(&path, serde_json::to_string_pretty(&payload).expect("serializable")) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
