//! Per-stage thread statistics for instrumented `parallel_map` runs.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::Telemetry;

/// One worker thread's share of a parallel stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Worker index within the stage.
    pub thread: usize,
    /// Items this worker processed.
    pub items: u64,
    /// Time spent inside the work closure, in nanoseconds.
    pub busy_ns: u64,
    /// `busy_ns` over the stage's wall time: 1.0 means the worker never
    /// waited on the work queue.
    pub utilization: f64,
}

/// A parallel stage: wall time plus each worker's items and busy time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (e.g. `"scores.genuine"`).
    pub stage: String,
    /// Total items processed across workers.
    pub items: u64,
    /// Stage wall time in nanoseconds.
    pub wall_ns: u64,
    /// Per-worker statistics, in worker order.
    pub threads: Vec<ThreadStats>,
}

impl StageStats {
    /// Mean worker utilization (0.0 for a stage with no workers).
    pub fn mean_utilization(&self) -> f64 {
        if self.threads.is_empty() {
            return 0.0;
        }
        self.threads.iter().map(|t| t.utilization).sum::<f64>() / self.threads.len() as f64
    }
}

/// Collects one stage's statistics; workers record through
/// [`StageRecorder::worker`], and [`StageRecorder::finish`] files the stage
/// into the telemetry registry.
#[derive(Debug)]
pub struct StageRecorder {
    telemetry: Telemetry,
    stage: String,
    start: Instant,
}

/// One worker's accumulator; cheap plain fields, merged at `finish`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    items: u64,
    busy: Duration,
}

impl WorkerStats {
    /// Records one processed item and the time it took.
    #[inline]
    pub fn record(&mut self, elapsed: Duration) {
        self.items += 1;
        self.busy += elapsed;
    }
}

impl StageRecorder {
    /// Starts recording a named stage; inert when `telemetry` is disabled.
    pub fn start(telemetry: &Telemetry, stage: &str) -> StageRecorder {
        StageRecorder {
            telemetry: telemetry.clone(),
            stage: stage.to_string(),
            start: Instant::now(),
        }
    }

    /// Whether workers should bother timing their items.
    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Completes the stage with each worker's accumulated stats.
    pub fn finish(self, workers: Vec<WorkerStats>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let wall = self.start.elapsed();
        let wall_ns = wall.as_nanos().min(u64::MAX as u128) as u64;
        let threads: Vec<ThreadStats> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let busy_ns = w.busy.as_nanos().min(u64::MAX as u128) as u64;
                ThreadStats {
                    thread: i,
                    items: w.items,
                    busy_ns,
                    utilization: if wall_ns == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / wall_ns as f64
                    },
                }
            })
            .collect();
        self.telemetry.push_stage(StageStats {
            stage: self.stage,
            items: workers.iter().map(|w| w.items).sum(),
            wall_ns,
            threads,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_stage_lands_in_snapshot() {
        let t = Telemetry::enabled();
        let recorder = StageRecorder::start(&t, "demo");
        let mut w0 = WorkerStats::default();
        let mut w1 = WorkerStats::default();
        w0.record(Duration::from_micros(10));
        w0.record(Duration::from_micros(20));
        w1.record(Duration::from_micros(5));
        recorder.finish(vec![w0, w1]);

        let stages = t.snapshot().stages;
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "demo");
        assert_eq!(stages[0].items, 3);
        assert_eq!(stages[0].threads.len(), 2);
        assert_eq!(stages[0].threads[0].items, 2);
        assert!(stages[0].threads[0].utilization >= 0.0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let t = Telemetry::disabled();
        let recorder = StageRecorder::start(&t, "demo");
        assert!(!recorder.is_enabled());
        recorder.finish(vec![WorkerStats::default()]);
        assert!(t.snapshot().stages.is_empty());
    }
}
