//! Tail-latency exemplars: one structured record per slow search.
//!
//! Aggregate histograms say *that* the p99 moved; an exemplar says *why*:
//! which shard was slow, whether the time went to queue wait or work,
//! whether the request was retried or shed. The coordinator offers every
//! completed search to a [`SlowLog`]; searches whose end-to-end latency
//! exceeds the threshold keep their full per-shard breakdown as one JSONL
//! line (`study load --slowlog PATH`).
//!
//! # Threshold
//!
//! An explicit nanosecond threshold can be configured; the default is the
//! **running p99** of the end-to-end latencies observed so far, read from
//! the same [`HistogramSnapshot`] machinery the rest of the harness uses.
//! The first [`SlowLog::WARMUP`] searches never emit (a p99 estimated from
//! a handful of samples is the sample max — see `fp_telemetry::hist` — so
//! every early search would "exceed" it); after warm-up a search is an
//! exemplar iff `total_ns > threshold`. The log is capacity-bounded:
//! once full, new exemplars are counted as dropped, never blocking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fp_telemetry::DurationHistogram;

/// Default exemplar capacity: enough for any check gate or load run while
/// bounding memory on a pathological configuration (threshold 0).
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 4096;

/// Per-shard timing breakdown of one search, as observed by the
/// coordinator (round-trip times, bytes) and echoed by the shard
/// ([`crate::wire::ServerTiming`] queue-wait/work split).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBreakdown {
    /// Shard index in the coordinator's round-robin mapping.
    pub shard: usize,
    /// Stage-1 round trip (ns), as timed by the coordinator.
    pub stage1_ns: u64,
    /// Re-rank round trip (ns); 0 when the shard's slice was empty.
    pub rerank_ns: u64,
    /// Admission-to-dispatch wait in the shard's worker pool (ns), summed
    /// over the search's RPCs. Only present on traced (v4, sampled) runs.
    pub queue_wait_ns: u64,
    /// Shard-side compute time (ns), summed over the search's RPCs.
    pub work_ns: u64,
    /// Wire bytes written to this shard for this search.
    pub bytes_tx: u64,
    /// Wire bytes read from this shard for this search.
    pub bytes_rx: u64,
    /// Whether any RPC fell back to the retrying path.
    pub retried: bool,
    /// Whether any attempt was shed by the shard's admission control.
    pub shed: bool,
}

/// One retained exemplar: a search that exceeded the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowLogEntry {
    /// 1-based sequence number of the search (coordinator search counter).
    pub seq: u64,
    /// End-to-end latency of the search (ns).
    pub total_ns: u64,
    /// The threshold the search exceeded (ns) — the running p99 at the
    /// time, or the configured explicit threshold.
    pub threshold_ns: u64,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardBreakdown>,
}

impl SlowLogEntry {
    /// The shard that contributed the most round-trip time (stage-1 plus
    /// re-rank), if any — "which shard made this search slow".
    pub fn slowest_shard(&self) -> Option<usize> {
        self.shards
            .iter()
            .max_by_key(|b| b.stage1_ns + b.rerank_ns)
            .map(|b| b.shard)
    }

    /// The exemplar as one JSON object (one JSONL line when joined with
    /// newlines).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "seq": self.seq,
            "total_ns": self.total_ns,
            "threshold_ns": self.threshold_ns,
            "slowest_shard": self.slowest_shard(),
            "shards": self.shards.iter().map(|b| serde_json::json!({
                "shard": b.shard,
                "stage1_ns": b.stage1_ns,
                "rerank_ns": b.rerank_ns,
                "queue_wait_ns": b.queue_wait_ns,
                "work_ns": b.work_ns,
                "bytes_tx": b.bytes_tx,
                "bytes_rx": b.bytes_rx,
                "retried": b.retried,
                "shed": b.shed,
            })).collect::<Vec<_>>(),
        })
    }
}

/// The tail-latency exemplar log. Thread-safe; `observe` is called by
/// every search, exemplars are kept under a mutex the hot path only takes
/// for a push.
#[derive(Debug)]
pub struct SlowLog {
    /// Explicit threshold (ns); `None` uses the running p99.
    threshold_ns: Option<u64>,
    capacity: usize,
    /// End-to-end search latencies; its snapshot's p99 is the default
    /// threshold. Registered as `serve.search.e2e` when built from a live
    /// telemetry handle, private otherwise.
    e2e: DurationHistogram,
    entries: Mutex<Vec<SlowLogEntry>>,
    dropped: AtomicU64,
}

impl SlowLog {
    /// Searches observed before the running-p99 threshold arms. Chosen so
    /// the p99 estimate has left the near-empty regime (where it equals
    /// the sample max) well behind.
    pub const WARMUP: u64 = 32;

    /// A log using the running p99 of observed latencies as threshold.
    ///
    /// A disabled telemetry handle's histograms are inert, which would
    /// leave the threshold unarmed forever — so the log falls back to a
    /// private live handle when given one; the histogram is then only
    /// visible through the log itself.
    pub fn running_p99(telemetry: &fp_telemetry::Telemetry) -> SlowLog {
        let host = if telemetry.is_enabled() {
            telemetry.clone()
        } else {
            fp_telemetry::Telemetry::enabled()
        };
        SlowLog {
            threshold_ns: None,
            capacity: DEFAULT_SLOWLOG_CAPACITY,
            e2e: host.duration("serve.search.e2e"),
            entries: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A log with a fixed nanosecond threshold (no warm-up: the first slow
    /// search is already an exemplar).
    pub fn with_threshold_ns(telemetry: &fp_telemetry::Telemetry, threshold_ns: u64) -> SlowLog {
        SlowLog {
            threshold_ns: Some(threshold_ns),
            ..SlowLog::running_p99(telemetry)
        }
    }

    /// Overrides the exemplar capacity (clamped to at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> SlowLog {
        self.capacity = capacity.max(1);
        self
    }

    /// Offers one completed search. Records the latency, then keeps the
    /// full breakdown iff it exceeded the threshold in force.
    pub fn observe(&self, seq: u64, total_ns: u64, shards: Vec<ShardBreakdown>) {
        self.e2e.record(std::time::Duration::from_nanos(total_ns));
        let threshold_ns = match self.threshold_ns {
            Some(t) => t,
            None => {
                let snapshot = self.e2e.snapshot();
                if snapshot.count <= Self::WARMUP {
                    return;
                }
                snapshot.p99
            }
        };
        if total_ns <= threshold_ns {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        entries.push(SlowLogEntry {
            seq,
            total_ns,
            threshold_ns,
            shards,
        });
    }

    /// Exemplars retained so far, in observation order.
    pub fn entries(&self) -> Vec<SlowLogEntry> {
        self.entries.lock().expect("slow log poisoned").clone()
    }

    /// Exemplars that arrived after the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The whole log as JSONL (one exemplar per line), ready for
    /// `--slowlog PATH`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.entries.lock().expect("slow log poisoned").iter() {
            out.push_str(&entry.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_telemetry::Telemetry;

    fn breakdown(shard: usize, stage1_ns: u64) -> ShardBreakdown {
        ShardBreakdown {
            shard,
            stage1_ns,
            ..ShardBreakdown::default()
        }
    }

    #[test]
    fn explicit_threshold_keeps_only_exceeding_searches() {
        let log = SlowLog::with_threshold_ns(&Telemetry::disabled(), 1_000);
        log.observe(1, 500, vec![breakdown(0, 400)]);
        log.observe(2, 1_500, vec![breakdown(0, 200), breakdown(1, 1_200)]);
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, 2);
        assert_eq!(entries[0].threshold_ns, 1_000);
        assert_eq!(entries[0].slowest_shard(), Some(1));
    }

    #[test]
    fn running_p99_threshold_stays_quiet_through_warmup() {
        let log = SlowLog::running_p99(&Telemetry::disabled());
        // Every warm-up sample is a new max; none may become an exemplar.
        for i in 0..SlowLog::WARMUP {
            log.observe(i + 1, (i + 1) * 1_000, vec![]);
        }
        assert!(log.entries().is_empty());
        // Far beyond the observed range: exceeds any p99 estimate.
        log.observe(
            SlowLog::WARMUP + 1,
            10_000_000,
            vec![breakdown(0, 9_000_000)],
        );
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].threshold_ns < 10_000_000);
    }

    #[test]
    fn capacity_bounds_the_log_and_counts_drops() {
        let log = SlowLog::with_threshold_ns(&Telemetry::disabled(), 0).with_capacity(2);
        for seq in 1..=5 {
            log.observe(seq, 100, vec![]);
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn jsonl_round_trips_per_shard_fields() {
        let log = SlowLog::with_threshold_ns(&Telemetry::disabled(), 10);
        log.observe(
            7,
            99,
            vec![ShardBreakdown {
                shard: 1,
                stage1_ns: 40,
                rerank_ns: 30,
                queue_wait_ns: 5,
                work_ns: 60,
                bytes_tx: 123,
                bytes_rx: 456,
                retried: true,
                shed: false,
            }],
        );
        let jsonl = log.to_jsonl();
        let line: serde_json::Value =
            serde_json::from_str(jsonl.lines().next().expect("one line")).expect("valid json");
        assert_eq!(line["seq"], 7);
        assert_eq!(line["slowest_shard"], 1);
        assert_eq!(line["shards"][0]["queue_wait_ns"], 5);
        assert_eq!(line["shards"][0]["retried"], true);
        assert_eq!(line["shards"][0]["bytes_rx"], 456);
    }
}
