//! The scenario that motivates the paper (its §I): the US-VISIT border
//! program enrolls travellers on a fixed 500 dpi optical scanner, but
//! verification happens years later on whatever hardware the port of entry
//! runs — newer optical units, rugged handhelds, even a *different sensing
//! technology*. The enrolled gallery stays in operational use throughout.
//!
//! This example plays that story out:
//!
//! 1. enroll a cohort on D0 (the big optical platen);
//! 2. verify the same travellers on every study device plus a hypothetical
//!    **capacitive solid-state sensor** built on the public `Device` API
//!    (the paper's intro describes the optical / solid-state / ultrasound
//!    taxonomy; the study itself only fielded optical units);
//! 3. compare two operating policies: one global threshold calibrated on
//!    D0-only data, vs per-device thresholds calibrated per fleet member.
//!
//! ```sh
//! cargo run --release --example us_visit -- 60
//! ```

use fingerprint_interop::prelude::*;
use fp_sensor::device::NoiseProfile;
use fp_sensor::{Acquisition, CaptureProtocol, DistortionSignature, SensingTechnology};
use fp_stats::roc::ScoreSet;
use fp_synth::population::{Population, PopulationConfig};

/// A hypothetical swipe sensor: same silicon as the touch variant, but the
/// image is reconstructed from swipe slices, adding per-capture stitching
/// artifacts (see `SensingTechnology::CapacitiveSwipe`).
fn swipe_sensor() -> Device {
    Device {
        model: "hypothetical swipe sensor",
        technology: SensingTechnology::CapacitiveSwipe,
        ..capacitive_sensor()
    }
}

/// A hypothetical capacitive solid-state verification sensor: small silicon
/// die, sharp electrical imaging (low jitter), no optics (no radial term),
/// but a thermal-expansion scale error and strong edge falloff.
fn capacitive_sensor() -> Device {
    Device {
        id: DeviceId(3), // reuse an id slot; the registry is not consulted
        model: "hypothetical capacitive sensor",
        technology: SensingTechnology::CapacitiveTouch,
        resolution_dpi: 500.0,
        image_px: (400, 400),
        capture_mm: (20.3, 20.3), // a 0.8" silicon die
        distortion: DistortionSignature {
            scale: 1.015, // thermal calibration drift
            k_radial: 0.0,
            shear_x: 0.002,
            shear_y: -0.002,
            wave_amp: 0.03,
            wave_freq: 0.9,
            wave_phase: 2.0,
            roll_stretch: 0.0,
        },
        noise: NoiseProfile {
            position_jitter: 0.06,
            direction_kappa: 110.0,
            base_dropout: 0.05,
            spurious_rate: 0.004,
            quality_bias: 0.15,
            vignette_band_mm: 2.5,
        },
    }
}

fn main() {
    let subjects = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60usize);
    eprintln!("simulating US-VISIT style deployment with {subjects} travellers ...");

    let pop = Population::generate(&PopulationConfig::new(20_040_105, subjects)); // program start date
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();
    let calibration = fp_match::ScoreCalibration::default();
    let capacitive = capacitive_sensor();

    // Enrollment: everyone on D0, session 0.
    let galleries: Vec<_> = pop
        .subjects()
        .iter()
        .map(|s| protocol.capture(s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0)))
        .collect();

    // Verification fleets: the four study live-scan devices + capacitive.
    let fleet: Vec<(String, Vec<Impression>)> = {
        let mut fleet = Vec::new();
        for d in [DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)] {
            let probes = pop
                .subjects()
                .iter()
                .map(|s| protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(1)))
                .collect();
            fleet.push((fp_sensor::Device::by_id(d).model.to_string(), probes));
        }
        // The capacitive sensor is not part of the study protocol; capture
        // directly through the acquisition engine.
        let probes = pop
            .subjects()
            .iter()
            .map(|s| {
                Acquisition.capture(
                    &s.master_print(Finger::RIGHT_INDEX),
                    &s.skin(),
                    &capacitive,
                    s.id(),
                    Finger::RIGHT_INDEX,
                    SessionId(1),
                    0.5,
                    &s.seed().child(&[0xCA, 9]),
                )
            })
            .collect();
        fleet.push(("hypothetical capacitive sensor".to_string(), probes));
        let swipe = swipe_sensor();
        let probes = pop
            .subjects()
            .iter()
            .map(|s| {
                Acquisition.capture(
                    &s.master_print(Finger::RIGHT_INDEX),
                    &s.skin(),
                    &swipe,
                    s.id(),
                    Finger::RIGHT_INDEX,
                    SessionId(1),
                    0.5,
                    &s.seed().child(&[0xCA, 10]),
                )
            })
            .collect();
        fleet.push(("hypothetical swipe sensor".to_string(), probes));
        fleet
    };

    // Scores per fleet member: genuine = traveller vs own gallery; impostor =
    // traveller vs the next traveller's gallery.
    let score = |gallery: &Impression, probe: &Impression| -> f64 {
        calibration
            .apply(matcher.compare(gallery.template(), probe.template()))
            .value()
    };
    let per_device: Vec<(String, Vec<f64>, Vec<f64>)> = fleet
        .iter()
        .map(|(name, probes)| {
            let genuine: Vec<f64> = (0..subjects)
                .map(|i| score(&galleries[i], &probes[i]))
                .collect();
            // Ten impostor galleries per traveller give the threshold
            // search enough tail resolution.
            let impostor: Vec<f64> = (0..subjects)
                .flat_map(|i| {
                    (1..=10)
                        .map(move |k| (i, (i + k) % subjects))
                        .filter(|(i, j)| i != j)
                })
                .map(|(i, j)| score(&galleries[j], &probes[i]))
                .collect();
            (name.clone(), genuine, impostor)
        })
        .collect();

    // Policy A: one global threshold, calibrated on D0 verification data only
    // (what a naive deployment does — tune on the enrollment hardware).
    let d0_set = ScoreSet::new(per_device[0].1.clone(), per_device[0].2.clone());
    let global_t = d0_set.threshold_at_fmr(0.005);

    println!(
        "\npolicy A: one global threshold ({global_t:.1}), calibrated on the enrollment sensor:\n"
    );
    println!("{:<42}{:>10}{:>10}", "verification sensor", "FNMR", "FMR");
    for (name, genuine, impostor) in &per_device {
        let fnmr = genuine.iter().filter(|&&s| s < global_t).count() as f64 / subjects as f64;
        let fmr =
            impostor.iter().filter(|&&s| s >= global_t).count() as f64 / impostor.len() as f64;
        println!("{name:<42}{fnmr:>10.3}{fmr:>10.3}");
    }

    println!(
        "\npolicy B: per-sensor thresholds (each calibrated to FMR <= 0.5% on its own data):\n"
    );
    println!(
        "{:<42}{:>12}{:>10}",
        "verification sensor", "threshold", "FNMR"
    );
    for (name, genuine, impostor) in &per_device {
        let set = ScoreSet::new(genuine.clone(), impostor.clone());
        let t = set.threshold_at_fmr(0.005);
        let fnmr = genuine.iter().filter(|&&s| s < t).count() as f64 / subjects as f64;
        println!("{name:<42}{t:>12.1}{fnmr:>10.3}");
    }

    println!(
        "\nthe paper's architectural advice falls out of the numbers: a threshold\n\
         tuned on the enrollment sensor silently over- or under-rejects on every\n\
         other fleet member; device-aware calibration (policy B, or the score\n\
         normalization in `study ext-normalization`) recovers much of the gap."
    );
}
