//! The gallery manifest: which segments are live and which entries are
//! dead.
//!
//! LSM-flavored lifecycle: segments are immutable, so mutation is
//! manifest-only. Deleting an entry appends a tombstone `(segment seq,
//! entry index)`; re-enrollment writes a *new* segment; `compact` merges
//! the survivors into one fresh segment and resets the tombstone set.
//! The manifest is rewritten atomically (`MANIFEST.tmp` + rename) so a
//! crash mid-update leaves either the old or the new view, never a torn
//! one.
//!
//! # Layout (version 1, all little-endian)
//!
//! ```text
//! magic b"FPSTMAN\0" | version u16 | reserved u16 | next_seq u32
//! segment_count u32 | tombstone_count u32
//! segments:   segment_count x { seq u32, entry_count u32 }  (seq ascending)
//! tombstones: tombstone_count x { seq u32, index u32 }      (sorted, unique)
//! crc32 over everything above
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::fmt::{crc32, Dec, Enc};

/// Manifest file magic.
pub const MANIFEST_MAGIC: &[u8; 8] = b"FPSTMAN\0";
/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;
/// Manifest file name inside a gallery directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

const WHAT: &str = "manifest";

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        what: WHAT,
        detail: detail.into(),
    }
}

/// Validates a manifest image end to end (framing, CRC, ascending seqs,
/// in-range tombstones). The public fsck surface for the corruption
/// test-suite — hostile bytes must produce a typed error, never a panic.
pub fn check_manifest(bytes: &[u8]) -> Result<(), StoreError> {
    Manifest::decode(bytes).map(|_| ())
}

/// One live segment as the manifest records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct SegmentMeta {
    /// Monotonic segment sequence number (also its file name).
    pub seq: u32,
    /// Entries packed in the segment (live and tombstoned alike).
    pub entry_count: u32,
}

/// The mutable root of a gallery directory.
#[derive(Debug, Clone, Default)]
pub(crate) struct Manifest {
    /// Next segment sequence number to hand out.
    pub(crate) next_seq: u32,
    /// Live segments, seq ascending.
    pub(crate) segments: Vec<SegmentMeta>,
    /// Dead entries as `(segment seq, entry index)`. A `BTreeSet` keeps
    /// them sorted and unique, which the wire layout requires.
    pub(crate) tombstones: BTreeSet<(u32, u32)>,
}

impl Manifest {
    /// File name for segment `seq` inside the gallery directory.
    pub(crate) fn segment_file(seq: u32) -> String {
        format!("seg-{seq:08}.fpseg")
    }

    pub(crate) fn segment_path(dir: &Path, seq: u32) -> PathBuf {
        dir.join(Manifest::segment_file(seq))
    }

    /// Live entries: total packed minus tombstoned.
    pub(crate) fn live_len(&self) -> usize {
        let total: u64 = self.segments.iter().map(|s| s.entry_count as u64).sum();
        total as usize - self.tombstones.len()
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        for b in MANIFEST_MAGIC {
            enc.u8(*b);
        }
        enc.u16(MANIFEST_VERSION);
        enc.u16(0); // reserved
        enc.u32(self.next_seq);
        enc.u32(self.segments.len() as u32);
        enc.u32(self.tombstones.len() as u32);
        for seg in &self.segments {
            enc.u32(seg.seq);
            enc.u32(seg.entry_count);
        }
        for &(seq, index) in &self.tombstones {
            enc.u32(seq);
            enc.u32(index);
        }
        let mut out = enc.into_bytes();
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Truncated {
                what: WHAT,
                context: "header",
            });
        }
        if &bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic { what: WHAT });
        }
        if bytes.len() < 8 + 2 + 2 + 4 + 4 + 4 + 4 {
            return Err(StoreError::Truncated {
                what: WHAT,
                context: "header",
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        // Version before CRC: an unsupported version should say so even
        // though its checksum (computed by a future layout) may differ.
        let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion {
                what: WHAT,
                version,
            });
        }
        if crc32(body) != stored {
            return Err(StoreError::CrcMismatch {
                what: WHAT,
                section: "body",
            });
        }

        let mut dec = Dec::new(&body[10..], WHAT);
        let _reserved = dec.u16("header")?;
        let next_seq = dec.u32("header")?;
        let segment_count = dec.u32("header")? as u64;
        let tombstone_count = dec.u32("header")? as u64;
        let segment_count = dec.checked_count(segment_count, 8, "segments")?;
        let mut segments = Vec::with_capacity(segment_count);
        let mut prev_seq: Option<u32> = None;
        for _ in 0..segment_count {
            let seq = dec.u32("segments")?;
            let entry_count = dec.u32("segments")?;
            if let Some(prev) = prev_seq {
                if seq <= prev {
                    return Err(corrupt(format!(
                        "segment seqs not strictly ascending ({prev} then {seq})"
                    )));
                }
            }
            if seq >= next_seq {
                return Err(corrupt(format!("segment seq {seq} >= next_seq {next_seq}")));
            }
            prev_seq = Some(seq);
            segments.push(SegmentMeta { seq, entry_count });
        }
        let tombstone_count = dec.checked_count(tombstone_count, 8, "tombstones")?;
        let mut tombstones = BTreeSet::new();
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..tombstone_count {
            let seq = dec.u32("tombstones")?;
            let index = dec.u32("tombstones")?;
            let stone = (seq, index);
            if let Some(p) = prev {
                if stone <= p {
                    return Err(corrupt(format!(
                        "tombstones not strictly ascending ({p:?} then {stone:?})"
                    )));
                }
            }
            let Some(seg) = segments.iter().find(|s| s.seq == seq) else {
                return Err(corrupt(format!(
                    "tombstone references unknown segment {seq}"
                )));
            };
            if index >= seg.entry_count {
                return Err(corrupt(format!(
                    "tombstone index {index} out of range for segment {seq} ({} entries)",
                    seg.entry_count
                )));
            }
            prev = Some(stone);
            tombstones.insert(stone);
        }
        dec.finish("tombstones")?;

        Ok(Manifest {
            next_seq,
            segments,
            tombstones,
        })
    }

    /// Loads `dir/MANIFEST`.
    pub(crate) fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let bytes = fs::read(dir.join(MANIFEST_NAME))?;
        Manifest::decode(&bytes)
    }

    /// Atomically replaces `dir/MANIFEST` (write tmp, rename over).
    pub(crate) fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            next_seq: 7,
            segments: vec![
                SegmentMeta {
                    seq: 2,
                    entry_count: 40,
                },
                SegmentMeta {
                    seq: 5,
                    entry_count: 12,
                },
            ],
            tombstones: [(2, 0), (2, 39), (5, 3)].into_iter().collect(),
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.next_seq, m.next_seq);
        assert_eq!(decoded.segments, m.segments);
        assert_eq!(decoded.tombstones, m.tombstones);
        assert_eq!(decoded.live_len(), 40 + 12 - 3);
    }

    #[test]
    fn rejects_flips_truncation_and_hostile_references() {
        let bytes = sample().encode();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                Manifest::decode(&bad).is_err(),
                "flip at {at} must not decode"
            );
        }
        for len in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..len]).is_err());
        }

        // Structurally valid encodings with hostile semantics.
        let mut m = sample();
        m.next_seq = 3; // seq 5 >= next_seq
        assert!(matches!(
            Manifest::decode(&m.encode()),
            Err(StoreError::Corrupt {
                what: "manifest",
                ..
            })
        ));

        let mut m = sample();
        m.tombstones.insert((9, 0)); // unknown segment
        assert!(Manifest::decode(&m.encode()).is_err());

        let mut m = sample();
        m.tombstones.insert((5, 12)); // index == entry_count
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn save_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("fp-store-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists());
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded.segments, m.segments);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
