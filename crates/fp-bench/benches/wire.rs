//! fp-serve wire-format throughput: encode and decode cost of the frames
//! that dominate a cross-process 1:N search. `StageOneOk` carries one score
//! pair per gallery entry (the per-probe hot path), `EnrollBatch` carries
//! whole templates (the build path), `RerankOk` a shortlist of candidates.
//! These costs bound how much of the in-process shard speedup survives the
//! hop onto a socket, so they sit in the committed baseline next to the
//! `shard_search_*` groups they tax.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::synthetic_gallery;
use fp_index::{IndexConfig, StageOneScores};
use fp_serve::{decode_frame, encode_frame, Frame};

fn stage1_frame(entries: usize) -> Frame {
    // Deterministic, irregular score patterns — no RNG needed for a size
    // benchmark, only non-trivial f64 bit patterns.
    Frame::StageOneOk {
        scores: StageOneScores {
            vote_scores: (0..entries).map(|i| (i as f64) * 0.37 + 0.11).collect(),
            cyl_scores: (0..entries).map(|i| 1.0 / (1.0 + i as f64)).collect(),
            bucket_hits: 0x5EED_1234,
            hamming_word_ops: 0xABCD_9876,
        },
        timing: None,
    }
}

fn enroll_frame(templates: usize) -> Frame {
    let (gallery, _) = synthetic_gallery(templates);
    Frame::EnrollBatch {
        config: IndexConfig::default(),
        templates: gallery,
        trace: None,
    }
}

fn rerank_ok_frame(entries: usize) -> Frame {
    Frame::RerankOk {
        candidates: (0..entries)
            .map(|i| fp_index::Candidate {
                id: i as u32,
                score: fp_core::MatchScore::new(1.0 / (1.0 + i as f64)),
            })
            .collect(),
        timing: None,
    }
}

fn wire_benches(c: &mut Criterion) {
    for (name, frame) in [
        ("stage1_ok_2000", stage1_frame(2_000)),
        ("enroll_64", enroll_frame(64)),
        ("rerank_ok_48", rerank_ok_frame(48)),
    ] {
        let bytes = encode_frame(&frame);
        let group_name = format!("wire_{name}");
        let mut group = c.benchmark_group(&group_name);
        group.bench_function("encode", |b| {
            b.iter(|| black_box(encode_frame(black_box(&frame))))
        });
        group.bench_function("decode", |b| {
            b.iter(|| black_box(decode_frame(black_box(&bytes)).expect("valid frame")))
        });
        group.finish();
    }
}

criterion_group!(benches, wire_benches);
criterion_main!(benches);
