//! Sharded 1:N search latency: the same gallery served by a `ShardedIndex`
//! at increasing shard counts, against the single-shard baseline. Sharded
//! results are byte-identical to unsharded (pinned by fp-index's proptest
//! suite); these benches measure only the wall-clock effect of fanning
//! stage 1 and stage 2 out across shard threads. On a single-core host the
//! ladder is expected to be flat-to-slightly-slower (thread overhead, no
//! parallelism); the speedup materializes with cores >= shards.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::synthetic_gallery;
use fp_index::{IndexConfig, ShardedIndex};
use fp_match::PairTableMatcher;

fn shard_benches(c: &mut Criterion) {
    for (gallery_size, shard_counts, samples) in [
        (2_000usize, &[1usize, 2, 4, 8][..], 20),
        (10_000, &[1, 8][..], 10),
    ] {
        let (gallery, probe) = synthetic_gallery(gallery_size);
        let group_name = format!("shard_search_{gallery_size}");
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(samples);
        for &shards in shard_counts {
            let mut index = ShardedIndex::with_config(
                PairTableMatcher::default(),
                IndexConfig::scaled(gallery.len()),
                shards,
            );
            index.enroll_all(&gallery);
            group.bench_function(format!("s{shards}"), |b| {
                b.iter(|| black_box(index.search(black_box(&probe))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, shard_benches);
criterion_main!(benches);
