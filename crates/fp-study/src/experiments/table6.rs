//! **Table 6** — the FNMR matrix at fixed FMR = 0.1% restricted to
//! good-quality captures (NFIQ < 3 on both sides).
//!
//! Two notes on fidelity to the paper:
//!
//! * The paper's caption says "NFIQ quality below 3" while its prose says
//!   "quality four or less" — we follow the caption (both the gallery and
//!   probe impressions must be NFIQ 1 or 2) since the caption matches the
//!   table's improved rates.
//! * The paper observes that, under the quality restriction, the intra- vs
//!   inter-device differences "appear unpredictable" — the quality gate
//!   removes most of the FNMR mass, so the residual cells are dominated by
//!   sampling noise. Our reproduction reports the same instability via the
//!   per-cell sample sizes.

use fp_core::ids::DeviceId;
use fp_stats::roc::ScoreSet;
use serde_json::json;

use crate::report::{render_device_matrix, Report};
use crate::scores::StudyData;

/// FNMR at `fmr` per cell, restricted to genuine pairs with both sides at
/// NFIQ 1–2; also returns the per-cell restricted sample size.
pub fn restricted_fnmr_matrix(data: &StudyData, fmr: f64) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
    let mut rates = vec![vec![0.0; 5]; 5];
    let mut counts = vec![vec![0usize; 5]; 5];
    for g in 0..5u8 {
        for p in 0..5u8 {
            let genuine: Vec<f64> = data
                .scores
                .genuine_cell(DeviceId(g), DeviceId(p))
                .iter()
                .filter(|s| s.gallery_quality.value() < 3 && s.probe_quality.value() < 3)
                .map(|s| s.score)
                .collect();
            counts[g as usize][p as usize] = genuine.len();
            let set = ScoreSet::new(
                genuine,
                data.scores.impostor_cell(DeviceId(g), DeviceId(p)).to_vec(),
            );
            rates[g as usize][p as usize] = set.fnmr_at_fmr(fmr);
        }
    }
    (rates, counts)
}

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let fmr = data.dataset.config().table6_fmr;
    let (restricted, counts) = restricted_fnmr_matrix(data, fmr);
    let unrestricted = super::table5::fnmr_matrix(data, fmr);

    let mut body = render_device_matrix(
        &format!(
            "FNMR at FMR = {:.3}% restricted to NFIQ < 3 on both sides:",
            fmr * 100.0
        ),
        |g, p| format!("{:.2e}", restricted[g][p]),
    );
    body.push_str(&render_device_matrix(
        "\nrestricted genuine sample size per cell:",
        |g, p| counts[g][p].to_string(),
    ));

    // How much of the FNMR mass does the quality gate remove?
    let mean = |m: &Vec<Vec<f64>>| m.iter().flatten().sum::<f64>() / 25.0;
    let mean_restricted = mean(&restricted);
    let mean_unrestricted = mean(&unrestricted);
    body.push_str(&format!(
        "\nmean FNMR over all cells: unrestricted {mean_unrestricted:.2e} vs NFIQ<3 {mean_restricted:.2e}\n\
         paper: quality gating improves every cell and scrambles the intra/inter ordering\n",
    ));

    Report::new(
        "table6",
        "Quality-restricted FNMR matrix (paper Table 6)",
        body,
        json!({
            "fmr": fmr,
            "fnmr_restricted": restricted,
            "sample_sizes": counts,
            "mean_restricted": mean_restricted,
            "mean_unrestricted_at_same_fmr": mean_unrestricted,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn quality_gate_does_not_worsen_mean_fnmr() {
        let r = run(testdata::small());
        let restricted = r.values["mean_restricted"].as_f64().unwrap();
        let unrestricted = r.values["mean_unrestricted_at_same_fmr"].as_f64().unwrap();
        assert!(
            restricted <= unrestricted + 0.05,
            "gating made FNMR worse: {unrestricted} -> {restricted}"
        );
    }

    #[test]
    fn sample_sizes_never_exceed_cohort() {
        let data = testdata::small();
        let r = run(data);
        for row in r.values["sample_sizes"].as_array().unwrap() {
            for cell in row.as_array().unwrap() {
                assert!(cell.as_u64().unwrap() as usize <= data.dataset.len());
            }
        }
    }

    #[test]
    fn restriction_keeps_only_good_quality_pairs() {
        let data = testdata::small();
        let (_, counts) = restricted_fnmr_matrix(data, 1e-3);
        let full = data.dataset.len();
        // At least one cell must actually be restricted (< full cohort) for
        // the experiment to be meaningful; D4 cells skew to poor quality.
        assert!(
            counts.iter().flatten().any(|&c| c < full),
            "quality gate never filtered anything"
        );
    }
}
